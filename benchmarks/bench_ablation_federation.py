"""Ablation — client-side endpoint selection over heterogeneous sites.

The paper's §6 HEP case study drives two endpoints "provisioning
heterogeneous resources" simultaneously, and §1 names multi-level
function scheduling as a research direction this platform enables.
This ablation compares federation policies on a deliberately *unequal*
pair of endpoints (1 worker vs 4 workers): round-robin halves the work
regardless of capacity and is held back by the small site; least-loaded
tracks queue depth and shifts work to the big site.
"""

from __future__ import annotations

import time

from benchmarks.harness import ExperimentReport, quick_mode
from repro import EndpointConfig, LocalDeployment
from repro.federation import (
    FederatedExecutor,
    LeastLoadedEndpoints,
    RandomEndpoints,
    RoundRobinEndpoints,
)
from repro.workloads import make_sleep_function

TASK_DURATION = 0.05


def run_policy(policy_factory, tasks: int) -> tuple[float, dict[str, int]]:
    with LocalDeployment(seed=2) as dep:
        client = dep.client()
        small = dep.create_endpoint(
            "small-site", nodes=1, config=EndpointConfig(workers_per_node=1)
        )
        big = dep.create_endpoint(
            "big-site", nodes=1, config=EndpointConfig(workers_per_node=4)
        )
        fid = client.register_function(make_sleep_function(TASK_DURATION),
                                       public=True)
        executor = FederatedExecutor(client, [small, big],
                                     policy=policy_factory())
        start = time.perf_counter()
        # Pace submissions near the federation's aggregate service rate so
        # queue depth reflects each site's drain rate (a closed-loop client).
        interval = TASK_DURATION / 6.0
        futures = []
        for _ in range(tasks):
            futures.append(executor.submit(fid))
            time.sleep(interval)
        for future in futures:
            future.result(timeout=120)
        elapsed = time.perf_counter() - start
        share = {
            "small": executor.submissions[small],
            "big": executor.submissions[big],
        }
        return elapsed, share


def test_ablation_federation_policies(benchmark):
    tasks = 20 if quick_mode() else 60

    def sweep():
        return {
            "round_robin": run_policy(RoundRobinEndpoints, tasks),
            "random": run_policy(lambda: RandomEndpoints(seed=4), tasks),
            "least_loaded": run_policy(LeastLoadedEndpoints, tasks),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "ablation_federation",
        f"{tasks} x {TASK_DURATION * 1000:.0f} ms tasks over a 1-worker and a "
        "4-worker endpoint",
    )
    rows = [
        [policy, elapsed, share["small"], share["big"]]
        for policy, (elapsed, share) in results.items()
    ]
    report.rows(["policy", "completion (s)", "to small", "to big"], rows)
    report.note("least-loaded shifts work toward the larger site; uniform "
                "policies are limited by the 1-worker endpoint")
    report.finish()

    rr_time, rr_share = results["round_robin"]
    ll_time, ll_share = results["least_loaded"]
    # least-loaded sends the majority of the work to the big site...
    assert ll_share["big"] > ll_share["small"]
    # ...and beats capacity-blind round-robin on makespan.
    assert ll_time < rr_time
    # round-robin is exactly even by construction
    assert abs(rr_share["small"] - rr_share["big"]) <= 1
