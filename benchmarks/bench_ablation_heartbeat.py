"""Ablation — heartbeat period vs failure-recovery latency.

funcX detects component loss through periodic heartbeats (§4.1/§4.3);
the detection delay is ``period × grace``.  This ablation reruns the
figure-7 manager-failure scenario across heartbeat periods and reports
the worst-case task latency and the backlog each setting allows to build
up — quantifying the trade-off between control-plane chatter (fast
heartbeats) and recovery time (slow heartbeats).
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport
from repro.sim import FailureSchedule, SimFabric
from repro.sim.platform import THETA
from repro.workloads.generators import uniform_rate_arrivals

HEARTBEAT_PERIODS = [0.1, 0.25, 0.5, 1.0, 2.0]
GRACE = 3


def run(period: float):
    fab = SimFabric(
        THETA, managers=2, workers_per_manager=4, prefetch=4,
        heartbeat_period=period, heartbeat_grace=GRACE, seed=3,
    )
    # Arrival rate below the surviving manager's capacity: the latency
    # spike is then *only* the lost tasks waiting out the detection delay.
    fab.submit_stream(uniform_rate_arrivals(rate=30, total=600, duration=0.1))
    fab.apply_failures(FailureSchedule(manager_failures=((2.0, 6.0, 0),)))
    report = fab.run()
    assert report.tasks_completed == 600
    t, latency = report.latency_timeline(bin_width=0.5)
    baseline = latency[t < 2.0].mean()
    worst = latency[t > 2.0].max()
    return baseline, worst, report.reexecutions


def test_ablation_heartbeat_period(benchmark):
    def sweep():
        return {p: run(p) for p in HEARTBEAT_PERIODS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "ablation_heartbeat",
        f"Figure-7 scenario vs heartbeat period (grace={GRACE}; detection "
        "delay = period x grace)",
    )
    rows = []
    for period, (baseline, worst, reexec) in results.items():
        rows.append([
            f"{period:g}s", f"{period * GRACE:g}s",
            baseline * 1000, worst * 1000, reexec,
        ])
    report.rows(
        ["hb period", "detection", "baseline lat (ms)", "worst lat (ms)",
         "re-executed"],
        rows,
    )
    report.note("tasks lost with the failed manager wait out the full "
                "detection delay before re-execution; the paper's quick "
                "(sub-second) recovery implies sub-second heartbeats")
    report.finish()

    worst = {p: results[p][1] for p in HEARTBEAT_PERIODS}
    # Worst-case latency grows monotonically with the detection delay.
    ordered = [worst[p] for p in HEARTBEAT_PERIODS]
    assert all(a <= b * 1.05 for a, b in zip(ordered, ordered[1:]))
    # And the spread is material: 2 s heartbeats at least triple the spike
    # of 0.1 s heartbeats.
    assert worst[2.0] > 3 * worst[0.1]
    # No setting loses tasks (asserted inside run()).
