"""Ablation — manager-selection policy (randomized vs round-robin vs
first-fit vs resource-aware).

The paper's agent uses a *greedy randomized* policy and notes the router
is modular (§4.5); §8 proposes resource-aware scheduling as future work.
This ablation exercises every registered policy two ways:

1. **placement under light load** — tasks trickle in one at a time, so
   every manager always has capacity and the policy alone decides
   placement.  Randomized/round-robin/resource-aware spread the work;
   first-fit concentrates everything on the first manager.
2. **saturated completion time** — a burst far exceeding capacity, where
   work-conserving policies converge (all complete the burst at worker
   throughput).
"""

from __future__ import annotations

import time

from benchmarks.harness import ExperimentReport, quick_mode
from repro import EndpointConfig, LocalDeployment
from repro.workloads import make_sleep_function

POLICIES = ["randomized", "round_robin", "first_fit", "resource_aware"]
NODES = 3
WORKERS = 2


def run_policy(policy: str, trickle: int, burst: int) -> dict:
    config = EndpointConfig(
        workers_per_node=WORKERS,
        heartbeat_period=0.1,
        scheduler_policy=policy,
        prefetch_capacity=0,
        seed=13,
    )
    with LocalDeployment() as dep:
        client = dep.client()
        ep_id = dep.create_endpoint("ablate-ep", nodes=NODES, config=config)
        endpoint = dep.endpoint(ep_id)
        fid = client.register_function(make_sleep_function(0.02), public=True)

        # Phase 1: light sequential load — placement is the policy's choice.
        for _ in range(trickle):
            client.submit(fid, ep_id).result(timeout=60)
        spread = sorted(
            (m.tasks_completed for m in endpoint.managers.values()), reverse=True
        )

        # Phase 2: saturating burst — completion time.
        start = time.perf_counter()
        futures = [client.submit(fid, ep_id) for _ in range(burst)]
        for future in futures:
            future.result(timeout=120)
        elapsed = time.perf_counter() - start
        return {"spread": spread, "burst_time": elapsed}


def test_ablation_scheduling_policies(benchmark):
    trickle = 12 if quick_mode() else 30
    burst = 24 if quick_mode() else 60

    def sweep():
        return {p: run_policy(p, trickle, burst) for p in POLICIES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "ablation_scheduling",
        f"Policies on {NODES} managers x {WORKERS} workers: light-load "
        f"placement ({trickle} tasks) and saturated burst ({burst} tasks)",
    )
    rows = []
    for policy, data in results.items():
        spread = data["spread"]
        concentration = spread[0] / max(1, sum(spread))
        rows.append([policy, str(spread), f"{concentration:.2f}",
                     data["burst_time"]])
    report.rows(
        ["policy", "light-load tasks/manager", "top-mgr share", "burst (s)"],
        rows,
    )
    report.note("first_fit routes every light-load task to one manager; the "
                "paper's randomized policy (and the §8 resource-aware "
                "extension) spread the work")
    report.finish()

    # first-fit concentrates: the top manager takes (almost) everything.
    ff = results["first_fit"]["spread"]
    assert ff[0] >= 0.9 * trickle
    # spreading policies give every manager work...
    for policy in ("randomized", "round_robin", "resource_aware"):
        assert min(results[policy]["spread"]) > 0, policy
    # ...and round-robin is near-perfectly balanced (sequential light load
    # gives resource-aware no load signal to beat random ties with).
    rr = results["round_robin"]["spread"]
    assert rr[0] - rr[-1] <= 2
    # all policies remain work-conserving under saturation.
    times = [results[p]["burst_time"] for p in POLICIES]
    assert max(times) < 5 * min(times)
