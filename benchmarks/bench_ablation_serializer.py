"""Ablation — serialization-facade method ordering (§4.6).

The paper sorts serialization methods "by speed and applies them in
order successively".  This ablation measures the facade's default
ordering against pickle-only configurations on representative payloads,
and per-method costs for function bodies.  The measured result is more
nuanced than "fastest first": pickle actually wins on raw speed once
JSON pays its exact round-trip check, and source-shipping is ~30x
slower than code-pickle — the default ordering trades single-digit
microseconds for wire interoperability (JSON) and Python-version
portability (source text vs marshal bytecode).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import ExperimentReport
from repro.serialize import FuncXSerializer
from repro.serialize.methods import (
    CodePickleMethod,
    JsonMethod,
    PickleMethod,
    SourceCodeMethod,
)

SMALL_JSON = {"task": "stills-process", "frame": 17, "roi": [0, 0, 128, 128]}
LARGE_JSON = {"rows": [[float(i), i * 2.5] for i in range(500)]}
BINARY_PAYLOAD = {"weights": b"\x00\x7f" * 4096, "epoch": 3}


def science_function(frame_path, threshold=0.5):
    import math

    return math.floor(threshold * len(frame_path))


@pytest.mark.parametrize(
    "label,payload",
    [("small-json", SMALL_JSON), ("large-json", LARGE_JSON), ("binary", BINARY_PAYLOAD)],
)
@pytest.mark.parametrize(
    "config",
    ["facade-default", "pickle-only"],
)
def test_ablation_serializer_data(benchmark, label, payload, config):
    if config == "facade-default":
        serializer = FuncXSerializer()
    else:
        serializer = FuncXSerializer(data_methods=[PickleMethod()])

    def round_trip():
        return serializer.deserialize(serializer.serialize(payload))

    result = benchmark(round_trip)
    assert result == payload


def test_ablation_serializer_functions(benchmark):
    facade = FuncXSerializer()

    def round_trip():
        return facade.deserialize(facade.serialize(science_function))

    func = benchmark(round_trip)
    assert func("abcd", threshold=1.0) == 4


def test_ablation_report(benchmark):
    """Summarize per-method costs into the results file (single pass)."""
    import time

    report = ExperimentReport(
        "ablation_serializer", "Per-method serialize+deserialize cost (µs)"
    )
    methods = {
        "json": JsonMethod(),
        "pickle": PickleMethod(),
    }

    def measure():
        rows = []
        for label, payload in [("small-json", SMALL_JSON), ("large-json", LARGE_JSON)]:
            for name, method in methods.items():
                start = time.perf_counter()
                n = 2000
                for _ in range(n):
                    method.deserialize(method.serialize(payload))
                per_call = (time.perf_counter() - start) / n * 1e6
                rows.append([label, name, per_call])
        for name, method in (
            ("source", SourceCodeMethod()),
            ("code-pickle", CodePickleMethod()),
        ):
            start = time.perf_counter()
            n = 500
            for _ in range(n):
                method.deserialize(method.serialize(science_function))
            per_call = (time.perf_counter() - start) / n * 1e6
            rows.append(["function", name, per_call])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report.rows(["payload", "method", "µs/round-trip"], rows)
    report.note("measured trade-off: with the exact round-trip check, pickle "
                "beats JSON on raw speed; JSON stays first for wire "
                "interoperability and because deserializing it cannot execute "
                "code. Source-shipping costs ~30x code-pickle at registration "
                "time but survives Python-version skew (marshal does not).")
    report.finish()

    data = {(r[0], r[1]): r[2] for r in rows}
    # Document the real costs: both data methods are single-digit-to-tens
    # of µs on control-plane payloads — negligible against ~ms dispatch.
    assert data[("small-json", "json")] < 100
    assert data[("small-json", "pickle")] < 100
    # Registration-time source shipping is the slow path, not execution.
    assert data[("function", "source")] > data[("function", "code-pickle")]
