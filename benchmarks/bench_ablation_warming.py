"""Ablation — container warm-pool TTL (§4.7's 5-10 minute warming).

Sweeps the warm TTL over a bursty container-demand trace (bursts of
requests separated by idle gaps, like the event-driven science loads in
§6) and reports the cold-start count and total cold-start seconds paid.
Expected: TTL 0 (warming off) pays a cold start per request; TTLs longer
than the inter-burst gap eliminate nearly all repeat cold starts —
exactly why the paper keeps containers warm on HPC, where a cold start
costs ~10 s (Table 2).
"""

from __future__ import annotations

import random

from benchmarks.harness import ExperimentReport
from repro.containers import ContainerRuntime, ContainerSpec, ContainerTechnology, WarmPool

TTLS = [0.0, 30.0, 120.0, 300.0, 600.0]
BURSTS = 40
REQUESTS_PER_BURST = 4
GAP_MEAN = 90.0       # seconds between bursts (inside a 120 s TTL most times)


def demand_trace(seed: int = 5) -> list[float]:
    """Arrival times of container requests: bursts with idle gaps."""
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(BURSTS):
        for i in range(REQUESTS_PER_BURST):
            times.append(t + i * 0.5)
        t += rng.expovariate(1.0 / GAP_MEAN)
    return times


def run_ttl(ttl: float) -> tuple[int, float]:
    """(cold starts, total cold seconds) over the trace."""
    pool = WarmPool(ttl=ttl, capacity=8)
    runtime = ContainerRuntime(system="theta", seed=9)
    spec = ContainerSpec(image="sci", technology=ContainerTechnology.SINGULARITY)
    cold_starts, cold_seconds = 0, 0.0
    for now in demand_trace():
        instance = pool.acquire(spec.key, now)
        if instance is None:
            instance = runtime.instantiate(spec, now=now)
            cold_starts += 1
            cold_seconds += instance.cold_start_time
        # each request holds the container briefly, then releases it warm
        pool.release(instance, now + 1.0)
    return cold_starts, cold_seconds


def test_ablation_warm_pool_ttl(benchmark):
    def sweep():
        return {ttl: run_ttl(ttl) for ttl in TTLS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    total_requests = BURSTS * REQUESTS_PER_BURST
    report = ExperimentReport(
        "ablation_warming",
        f"Warm-pool TTL sweep over {total_requests} bursty container requests "
        "(Theta/Singularity cold starts)",
    )
    rows = [
        [f"{ttl:.0f}s" if ttl else "off", cold, seconds,
         f"{100 * (1 - cold / total_requests):.0f}%"]
        for ttl, (cold, seconds) in results.items()
    ]
    report.rows(["warm TTL", "cold starts", "cold seconds", "hit rate"], rows)
    report.note("paper keeps containers warm 5-10 min; each avoided cold "
                "start saves ~10.4 s on Theta (Table 2)")
    report.finish()

    colds = {ttl: results[ttl][0] for ttl in TTLS}
    # warming off pays a cold start per request
    assert colds[0.0] == total_requests
    # longer TTLs monotonically reduce cold starts
    assert colds[0.0] >= colds[30.0] >= colds[120.0] >= colds[300.0] >= colds[600.0]
    # the paper's 5-10 min window eliminates the overwhelming majority
    assert colds[300.0] < 0.35 * total_requests
