"""Backpressure gate: overload must plateau in flight, not grow.

Drives a live deployment through a sustained 10:1 (120 tasks against a
credit window of 12) producer/consumer mismatch and
samples the forwarder's open-lease population while the burst drains.
Three things must hold for the credit loop to count as working:

* **bounded** — the sampled in-flight peak never exceeds the advertised
  credit window (no-unbounded-memory: the only place the mismatch may
  accumulate is the bounded, observable service-side queue, whose high
  watermark is reported alongside);
* **plateau** — the in-flight population in the second half of the run
  is no higher than in the first half (it plateaus at the window instead
  of growing with offered load);
* **sustained** — throttling costs capacity, not throughput: the run
  sustains a healthy fraction of the ideal ``workers / task_duration``
  rate while credit-stalling the excess.

Artifacts: ``BENCH_backpressure.json`` at the repo root and the usual
``benchmarks/results`` text report.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.harness import ExperimentReport, quick_mode
from repro.perf import measure_backpressure

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_backpressure.json"

TASKS = 120
TASKS_QUICK = 60
WORKERS = 2
PREFETCH = 2
TASK_DURATION = 0.02

#: Gate thresholds.
MIN_THROUGHPUT_FRACTION = 0.3   # of the ideal workers/duration rate
MIN_SHED_FRACTION = 0.5         # of the burst must hit the service queue


def test_backpressure_gate():
    quick = quick_mode()
    tasks = TASKS_QUICK if quick else TASKS
    result = measure_backpressure(
        tasks=tasks, workers=WORKERS, prefetch=PREFETCH,
        task_duration=TASK_DURATION)

    window = result["window"]
    ideal = result["ideal_tasks_per_second"]
    RESULT_JSON.write_text(json.dumps({
        **result,
        "gates": {
            "max_peak_in_flight": window,
            "min_tasks_per_second": MIN_THROUGHPUT_FRACTION * ideal,
            "min_queue_high_watermark": int(MIN_SHED_FRACTION * tasks),
        },
        "quick": quick,
    }, indent=2, sort_keys=True) + "\n")

    report = ExperimentReport(
        "backpressure",
        f"{tasks}-task burst vs credit window {window} "
        f"({result['mismatch']:.0f}:1 mismatch)",
    )
    report.rows(
        ["metric", "value"],
        [["window", window],
         ["peak in-flight", result["peak_in_flight"]],
         ["first/second half peak",
          f"{result['first_half_peak']}/{result['second_half_peak']}"],
         ["queue high watermark", result["queue_high_watermark"]],
         ["credit stalls", result["credit_stalls"]],
         ["tasks/s", f"{result['tasks_per_second']:.1f}"],
         ["ideal tasks/s", f"{ideal:.1f}"]],
    )
    report.note("in-flight sampled from the forwarder's open-lease table "
                "while the burst drains; the mismatch sheds into the "
                "service queue instead of growing the in-flight population")
    report.finish()

    assert result["peak_in_flight"] <= window, (
        f"in-flight peaked at {result['peak_in_flight']} — the credit "
        f"window ({window}) did not bound the pipeline"
    )
    assert result["second_half_peak"] <= result["first_half_peak"], (
        f"in-flight grew across the run "
        f"({result['first_half_peak']} -> {result['second_half_peak']}) — "
        "not a plateau"
    )
    assert result["queue_high_watermark"] >= MIN_SHED_FRACTION * tasks, (
        f"only {result['queue_high_watermark']} of {tasks} tasks were shed "
        "into the service queue — where did the rest go?"
    )
    assert result["credit_stalls"] > 0, \
        "overload never hit the credit limit — the mismatch was not exercised"
    assert result["tasks_per_second"] >= MIN_THROUGHPUT_FRACTION * ideal, (
        f"sustained only {result['tasks_per_second']:.1f} tasks/s against an "
        f"ideal {ideal:.1f} — backpressure is costing throughput"
    )
