"""End-to-end throughput gate: batching must beat per-message dispatch.

Drives a full live deployment (service → forwarder → agent → manager →
worker) over a channel with 1 ms injected one-way latency and a serial
per-transfer occupancy, comparing the batched, event-driven fabric
against the per-message, polling one it replaced:

* **throughput** — a wave of trivial tasks; individual sends serialize
  on the occupied link while a coalesced batch envelope pays the
  transfer cost once, so batching must deliver ≥2x tasks/s;
* **latency** — sequential single-task round trips; the per-message
  fabric's fixed 2 ms poll interval quantizes p50, the wakeup-driven
  fabric must shave at least one poll quantum off it.

Artifacts: ``BENCH_e2e_throughput.json`` at the repo root and the usual
``benchmarks/results`` text report.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.harness import ExperimentReport, quick_mode
from repro.perf import LEGACY_POLL_INTERVAL, compare_modes

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_e2e_throughput.json"

#: Interleaved A/B pairs; best-of per mode filters scheduler noise.
PAIRS = 3
PAIRS_QUICK = 2
TASKS = 128
TASKS_QUICK = 64
SAMPLES = 30
SAMPLES_QUICK = 15

#: One-way service↔endpoint latency (s) — the "1 ms injected latency"
#: operating point of the gate.
CHANNEL_LATENCY = 0.001
#: Serial per-transfer link occupancy (s): what coalescing amortizes.
TRANSFER_COST = 0.001

#: Gate thresholds.
MIN_SPEEDUP = 2.0
MIN_P50_IMPROVEMENT = LEGACY_POLL_INTERVAL  # shave ≥ one poll quantum


def test_e2e_throughput_gate():
    quick = quick_mode()
    comparison = compare_modes(
        tasks=TASKS_QUICK if quick else TASKS,
        samples=SAMPLES_QUICK if quick else SAMPLES,
        latency=CHANNEL_LATENCY,
        transfer_cost=TRANSFER_COST,
        pairs=PAIRS_QUICK if quick else PAIRS,
    )
    speedup = comparison["speedup"]
    p50_gain = comparison["p50_improvement_s"]

    RESULT_JSON.write_text(json.dumps({
        **comparison,
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_p50_improvement_s": MIN_P50_IMPROVEMENT,
        },
        "quick": quick,
    }, indent=2, sort_keys=True) + "\n")

    throughput = comparison["throughput"]
    latency = comparison["latency"]
    report = ExperimentReport(
        "e2e_throughput",
        "batched vs per-message dispatch at 1 ms channel latency",
    )
    report.rows(
        ["mode", "tasks/s", "wave (s)", "p50 (ms)", "p99 (ms)"],
        [[mode,
          throughput[mode]["tasks_per_second"],
          throughput[mode]["seconds"],
          latency[mode]["p50_s"] * 1e3,
          latency[mode]["p99_s"] * 1e3]
         for mode in ("per-message", "batched")],
    )
    report.line("")
    report.line(f"throughput speedup: {speedup:.2f}x (gate: >={MIN_SPEEDUP:.1f}x)")
    report.line(f"p50 improvement: {p50_gain * 1e3:.2f} ms "
                f"(gate: >= one {LEGACY_POLL_INTERVAL * 1e3:.0f} ms poll quantum)")
    report.note("interleaved A/B waves, best-of per mode; per-message sends "
                "serialize on the occupied link while one batch envelope "
                "pays the transfer cost once")
    report.finish()

    assert speedup >= MIN_SPEEDUP, (
        f"batching delivers only {speedup:.2f}x tasks/s "
        f"({throughput['batched']['tasks_per_second']:.0f} vs "
        f"{throughput['per-message']['tasks_per_second']:.0f})"
    )
    assert p50_gain >= MIN_P50_IMPROVEMENT, (
        f"event-driven p50 ({latency['batched']['p50_s'] * 1e3:.2f} ms) is "
        f"still quantized by the poll interval — only "
        f"{p50_gain * 1e3:.2f} ms better than polling "
        f"({latency['per-message']['p50_s'] * 1e3:.2f} ms)"
    )
