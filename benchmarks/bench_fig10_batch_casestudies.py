"""Figure 10 — effect of batch size (1–1024) on the science case studies.

Paper protocol (§5.5.4): for a subset of the case studies (functions of
~0.5 s to ~1 min), submit batches of increasing size to one container
and report average latency per request (batch completion time / batch
size).  Finding: batching slashes per-request latency for the shortest
functions, with diminishing returns at large batch sizes; long-running
functions barely benefit.

Reproduction: the live fabric runs real sleep-based stand-ins whose
durations are the case-study means *scaled down 100x* (XPCS's 50 s
becomes 0.5 s) so the sweep completes in bench time, over a channel
with injected client↔site latency (the paper's per-request overhead is
a WAN round trip to the cloud service, not a local function call); the
overhead being amortized (round trips, dispatch, worker messaging) is
the real thing, so the crossover shape is preserved.
"""

from __future__ import annotations

import time

from benchmarks.harness import ExperimentReport, quick_mode
from repro import EndpointConfig, LocalDeployment
from repro.fabric import DeploymentTimings
from repro.workloads import CASE_STUDIES

SCALE = 0.01
BATCH_SIZES = [1, 4, 16, 64, 256]
CASES = ["metadata", "ml_inference", "ssx", "xpcs"]  # the paper's subset

#: One-way service↔endpoint latency (s): a scaled-down stand-in for the
#: paper's client→cloud→HPC round trip that each unbatched request pays.
WAN_LATENCY = 0.005
WAN_TRANSFER_COST = 0.001


def make_case_sleeper(duration: float):
    def case_fn(_x: int) -> float:
        import time

        time.sleep(duration)
        return duration

    case_fn.__name__ = f"case_{duration:g}"
    return case_fn


def measure_case(duration: float, batch_sizes: list[int]) -> dict[int, float]:
    """Average latency per request (ms) for each batch size."""
    out = {}
    timings = DeploymentTimings(
        service_endpoint_latency=WAN_LATENCY,
        service_endpoint_transfer_cost=WAN_TRANSFER_COST,
    )
    with LocalDeployment(timings=timings) as dep:
        client = dep.client()
        ep = dep.create_endpoint(
            "fig10-ep", nodes=1,
            config=EndpointConfig(workers_per_node=1, heartbeat_period=0.2),
        )
        fid = client.register_function(make_case_sleeper(duration), public=True)
        for batch in batch_sizes:
            start = time.perf_counter()
            result = client.map(fid, range(batch), ep, batch_size=batch)
            assert result.wait(timeout=300)
            elapsed = time.perf_counter() - start
            out[batch] = elapsed / batch * 1000.0
    return out


def test_fig10_batching_case_studies(benchmark):
    batch_sizes = [1, 16, 256] if quick_mode() else BATCH_SIZES

    def sweep():
        rows = {}
        for case in CASES:
            mean_duration = CASE_STUDIES[case].median * SCALE
            rows[case] = (mean_duration, measure_case(mean_duration, batch_sizes))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "fig10_batch_casestudies",
        f"Average latency per request vs batch size (ms; durations x{SCALE:g})",
    )
    table = []
    for case, (duration, per_batch) in results.items():
        table.append([case, f"{duration * 1000:.0f}ms"]
                     + [per_batch[b] for b in batch_sizes])
    report.rows(["case study", "fn time"] + [f"B={b}" for b in batch_sizes], table)
    report.note("paper: batching dramatically reduces per-request latency for "
                "the shortest functions; little effect for long functions; "
                "diminishing returns beyond tens-to-hundreds per batch")
    report.finish()

    # Short functions gain a lot...
    fast = results["ml_inference"][1]
    assert fast[batch_sizes[0]] > 3 * fast[batch_sizes[-1]]
    # ...long functions barely move (latency dominated by execution).
    slow_duration_ms = results["xpcs"][0] * 1000
    slow = results["xpcs"][1]
    assert slow[batch_sizes[-1]] > 0.8 * slow_duration_ms
    assert slow[batch_sizes[0]] < 2.0 * slow[batch_sizes[-1]]
