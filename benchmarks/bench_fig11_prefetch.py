"""Figure 11 — effect of opportunistic prefetching.

Paper protocol (§5.5.5): no-op and 1/10/100 ms sleep functions, 10,000
concurrent requests on 4 Theta nodes × 64 containers, sweeping the
per-node prefetch count 1→512.  Finding: completion time drops
dramatically as prefetch grows, with diminishing benefit beyond ~64
(≈ the container count per node).

Reproduction: the simulated fabric in ``advertise_idle=False`` mode —
each advertisement cycle requests exactly the prefetch count, so the
x-axis controls how much work a manager pulls ahead of its workers and
small prefetch counts leave workers idle between round trips.
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport, quick_mode
from repro.sim import SimFabric
from repro.sim.platform import THETA

TASKS = 10_000
NODES = 4
PREFETCH_COUNTS = [1, 2, 4, 16, 64, 128, 512]
DURATIONS = [(0.0, "no-op"), (0.001, "1ms"), (0.01, "10ms"), (0.1, "100ms")]


def run(prefetch: int, duration: float) -> float:
    fab = SimFabric(
        THETA, managers=NODES, workers_per_manager=64, prefetch=prefetch,
        advertise_idle=False, seed=4,
    )
    fab.submit_batch(TASKS, duration=duration)
    result = fab.run()
    assert result.tasks_completed == TASKS
    return result.completion_time


def test_fig11_prefetching(benchmark):
    prefetch_counts = [1, 16, 64, 512] if quick_mode() else PREFETCH_COUNTS

    def sweep():
        return {
            label: {p: run(p, duration) for p in prefetch_counts}
            for duration, label in DURATIONS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "fig11_prefetch",
        f"Completion time of {TASKS:,} requests vs per-node prefetch count (s)",
    )
    rows = [
        [label] + [results[label][p] for p in prefetch_counts]
        for _, label in DURATIONS
    ]
    report.rows(["function"] + [f"P={p}" for p in prefetch_counts], rows)
    report.note("paper: completion decreases dramatically with prefetch; "
                "benefit diminishes beyond ~64 (containers per node)")
    report.finish()

    for _, label in DURATIONS:
        series = results[label]
        # completion time decreases dramatically with prefetch count
        assert series[1] > 10 * series[64]
        # monotone improvement up to 64
        ordered = [series[p] for p in prefetch_counts if p <= 64]
        assert all(a >= b for a, b in zip(ordered, ordered[1:]))
        # diminishing returns past 64 (the per-node container count)
        assert abs(series[prefetch_counts[-1]] - series[64]) / series[64] < 0.40
