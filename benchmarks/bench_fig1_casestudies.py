"""Figure 1 — latency distributions of the six science case studies.

Paper protocol: "Distribution of latencies for 100 function calls, for
each of the six case studies."  We draw 100 durations per calibrated
case-study model and report the distribution statistics the figure's
box plots encode.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import ExperimentReport
from repro.workloads import CASE_STUDIES


def sample_all(n: int = 100, seed: int = 1) -> dict[str, np.ndarray]:
    return {
        name: study.sample_many(n, seed=seed + i)
        for i, (name, study) in enumerate(sorted(CASE_STUDIES.items()))
    }


def test_fig1_case_study_distributions(benchmark):
    samples = benchmark.pedantic(sample_all, rounds=3, iterations=1)

    report = ExperimentReport(
        "fig1_casestudies", "Latency distribution of 100 calls per case study (s)"
    )
    rows = []
    for name, values in samples.items():
        study = CASE_STUDIES[name]
        rows.append([
            name,
            float(np.min(values)),
            float(np.percentile(values, 25)),
            float(np.median(values)),
            float(np.percentile(values, 75)),
            float(np.max(values)),
            f"[{study.low:g}, {study.high:g}]",
        ])
    report.rows(
        ["case study", "min", "p25", "median", "p75", "max", "paper range"], rows
    )
    report.note(
        "paper-quoted durations: metadata 3ms-15s; MNIST inference ~0.1s; "
        "SSX 1-2s; neuro/HEP seconds; XPCS ~50s"
    )
    report.finish()

    # Shape assertions: orderings the paper's figure shows.
    medians = {k: float(np.median(v)) for k, v in samples.items()}
    assert medians["xpcs"] > medians["ssx"] > medians["ml_inference"]
    assert medians["metadata"] < 2.0
