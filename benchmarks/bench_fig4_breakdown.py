"""Figure 4 — funcX warm-path latency breakdown (ts, tf, te, tw).

Paper instrumentation: ts = web-service time (authenticate, store task,
queue it); tf = forwarder time (read from store, forward, write result);
te = endpoint time excluding execution; tw = function execution.

Reproduction: the live stack stamps every task at each hop
(``Task.state_times``); we run a stream of warm echo invocations and
report the mean per-stage time.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import ExperimentReport, quick_mode
from repro import DeploymentTimings, EndpointConfig, LocalDeployment
from repro.workloads import echo

SERVICE_OVERHEAD_S = 0.030  # the ts model used by the Table 1 bench


def measure_breakdown(samples: int) -> dict[str, np.ndarray]:
    timings = DeploymentTimings(
        service_endpoint_latency=0.002,
        manager_latency=0.0005,
        service_overhead=SERVICE_OVERHEAD_S,
    )
    stages: dict[str, list[float]] = {"ts": [], "tf": [], "te": [], "tw": []}
    with LocalDeployment(timings=timings, seed=4) as dep:
        client = dep.client()
        ep = dep.create_endpoint(
            "fig4-ep", nodes=1,
            config=EndpointConfig(workers_per_node=2, heartbeat_period=0.1),
        )
        fid = client.register_function(echo, public=True)
        client.wait_for(client.run(fid, ep, "hello-world"), timeout=30)  # warm-up
        for _ in range(samples):
            task_id = client.run(fid, ep, "hello-world")
            client.get_result(task_id, timeout=30)
            breakdown = dep.service.task_by_id(task_id).breakdown()
            for stage in stages:
                stages[stage].append(breakdown.get(stage, 0.0))
    return {k: np.array(v) for k, v in stages.items()}


def test_fig4_latency_breakdown(benchmark):
    samples = 40 if quick_mode() else 200
    stages = benchmark.pedantic(measure_breakdown, args=(samples,), rounds=1,
                                iterations=1)

    report = ExperimentReport(
        "fig4_breakdown", "Warm-path latency breakdown per stage (ms)"
    )
    rows = []
    total = 0.0
    for stage, label in [
        ("ts", "web service (auth/store/queue)"),
        ("tf", "forwarder"),
        ("te", "endpoint (queue/dispatch)"),
        ("tw", "function execution"),
    ]:
        mean_ms = float(stages[stage].mean() * 1000)
        total += mean_ms
        rows.append([stage, label, mean_ms, float(stages[stage].std() * 1000)])
    report.rows(["stage", "component", "mean", "std"], rows)
    report.line(f"total in-fabric latency: {total:.1f} ms "
                f"(client WAN of 2x18.2 ms excluded, as in figure 4)")
    report.note("paper finding: tw is small; ts (auth) and te (queuing/"
                "dispatch) dominate — verify the same ordering below")
    report.finish()

    ts = stages["ts"].mean()
    tf = stages["tf"].mean()
    te = stages["te"].mean()
    tw = stages["tw"].mean()
    # The paper's finding: execution is fast relative to system latency,
    # and ts dominates due to authentication/store work.
    assert tw < 0.25 * (ts + tf + te)
    assert ts == max(ts, tf, tw)
