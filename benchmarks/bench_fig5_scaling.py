"""Figure 5 — strong and weak scaling of the funcX agent on Theta & Cori,
plus the §5.2.3 maximum-throughput numbers.

Paper protocol: functions of three durations (0 s "no-op", 1 s "sleep",
60 s "stress") are submitted as one concurrent batch while the container
count grows.  Strong scaling fixes 100,000 total invocations; weak
scaling fixes 10 invocations per container (1.3M tasks at 131,072
containers on Cori).

Reproduction: the discrete-event fabric drives the same dispatch /
advertisement / batching protocol with platform models calibrated to the
paper's measured agent ceilings (1694 tasks/s on Theta, 1466 on Cori).
The paper's qualitative findings asserted below:

* strong scaling of the no-op stops improving at ~256 containers;
* strong scaling of the 1 s sleep stops improving at ~2048 containers;
* weak-scaling no-op completion time grows with container count;
* weak-scaling sleep stays near-constant to ~2048 containers, and the
  60 s stress stays near-constant to 16,384 containers;
* Cori reaches 131,072 containers executing 1.3M tasks.
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport, quick_mode
from repro.sim import SimFabric
from repro.sim.platform import CORI, THETA, SimPlatform


def run_batch(platform: SimPlatform, containers: int, total_tasks: int,
              duration: float) -> tuple[float, float]:
    """Completion time and throughput for one (containers, duration) point."""
    managers = platform.nodes_for(containers)
    workers = min(containers, platform.containers_per_node)
    fab = SimFabric(platform, managers=managers, workers_per_manager=workers,
                    prefetch=0, seed=1)
    fab.submit_batch(total_tasks, duration=duration)
    report = fab.run()
    assert report.tasks_completed == total_tasks
    return report.completion_time, report.throughput


def test_fig5a_strong_scaling(benchmark):
    total = 20_000 if quick_mode() else 100_000
    container_counts = [16, 64, 256, 1024, 2048, 8192]

    def sweep():
        rows = []
        for platform in (THETA, CORI):
            for duration, label in ((0.0, "no-op"), (1.0, "sleep")):
                if platform is CORI and duration > 0:
                    continue  # the paper did not run sleep on Cori (allocation)
                for containers in container_counts:
                    completion, throughput = run_batch(
                        platform, containers, total, duration
                    )
                    rows.append([platform.name, label, containers,
                                 completion, throughput])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        "fig5a_strong_scaling",
        f"Strong scaling: completion time of {total:,} concurrent requests (s)",
    )
    report.rows(["system", "function", "containers", "completion (s)",
                 "throughput (/s)"], rows)
    report.note("paper: no-op flattens at 256 containers; sleep at 2048 (Theta)")
    report.finish()

    theta_noop = {r[2]: r[3] for r in rows if r[0] == "theta" and r[1] == "no-op"}
    theta_sleep = {r[2]: r[3] for r in rows if r[0] == "theta" and r[1] == "sleep"}
    # no-op improves until ~256 then flattens
    assert theta_noop[16] > theta_noop[64] > theta_noop[256]
    assert abs(theta_noop[2048] - theta_noop[256]) / theta_noop[256] < 0.10
    # sleep keeps improving to ~2048 then flattens
    assert theta_sleep[256] > theta_sleep[1024] > theta_sleep[2048] * 0.99
    assert abs(theta_sleep[8192] - theta_sleep[2048]) / theta_sleep[2048] < 0.15


def test_fig5b_weak_scaling_and_throughput(benchmark):
    if quick_mode():
        noop_counts = [256, 4096, 32768]
        sleep_counts = [256, 2048, 8192]
        stress_counts = [1024, 16384]
    else:
        noop_counts = [256, 1024, 4096, 16384, 65536, 131072]
        sleep_counts = [256, 1024, 2048, 8192]
        stress_counts = [1024, 4096, 16384]
    tasks_per_container = 10

    def sweep():
        rows = []
        peak = {"theta": 0.0, "cori": 0.0}
        for platform, counts, duration, label in (
            (THETA, noop_counts[:4], 0.0, "no-op"),
            (CORI, noop_counts, 0.0, "no-op"),
            (THETA, sleep_counts, 1.0, "sleep"),
            (THETA, stress_counts, 60.0, "stress"),
        ):
            for containers in counts:
                total = containers * tasks_per_container
                completion, throughput = run_batch(platform, containers, total, duration)
                rows.append([platform.name, label, containers, total,
                             completion, throughput])
                peak[platform.name] = max(peak[platform.name], throughput)
        return rows, peak

    rows, peak = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        "fig5b_weak_scaling",
        "Weak scaling: 10 requests per container; §5.2.3 peak agent throughput",
    )
    report.rows(["system", "function", "containers", "tasks",
                 "completion (s)", "throughput (/s)"], rows)
    report.line("")
    report.line(f"peak agent throughput: theta={peak['theta']:.0f}/s "
                f"(paper 1694/s), cori={peak['cori']:.0f}/s (paper 1466/s)")
    report.note("paper: no-op completion grows with containers; Cori reaches "
                "131,072 containers / 1.3M tasks; sleep ~constant to 2048; "
                "stress ~constant to 16,384")
    report.finish()

    cori_noop = {r[2]: r[4] for r in rows if r[0] == "cori" and r[1] == "no-op"}
    counts_run = sorted(cori_noop)
    # no-op completion time increases with scale (dispatch-bound)
    assert all(
        cori_noop[a] < cori_noop[b]
        for a, b in zip(counts_run, counts_run[1:])
    )
    # peak throughput within 15% of the paper's measured ceilings
    assert abs(peak["theta"] - 1694) / 1694 < 0.15
    assert abs(peak["cori"] - 1466) / 1466 < 0.15
    # sleep weak scaling ~flat to 2048
    theta_sleep = {r[2]: r[4] for r in rows if r[0] == "theta" and r[1] == "sleep"}
    sleep_counts_run = sorted(theta_sleep)
    assert theta_sleep[sleep_counts_run[-2]] < 2.5 * theta_sleep[sleep_counts_run[0]]
    # stress ~flat to 16,384
    stress = {r[2]: r[4] for r in rows if r[1] == "stress"}
    stress_counts_run = sorted(stress)
    assert stress[stress_counts_run[-1]] < 1.5 * stress[stress_counts_run[0]]
