"""Figure 6 — elasticity: pods tracking function load on Kubernetes.

Paper protocol (§5.3): three sleep functions (1 s, 10 s, 20 s), each in
its own container, capped at 0–10 pods.  Every 120 s the client submits
one 1 s, five 10 s and twenty 20 s functions.  The figure shows pending+
executing functions (top) and active pods (bottom) over time.

Reproduction: the event-driven elasticity simulation drives the real
KubernetesProvider and SimpleScalingStrategy policy objects.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import ExperimentReport
from repro.providers import KubernetesProvider, SimpleScalingStrategy
from repro.sim import ElasticitySimulation
from repro.workloads.generators import burst_arrivals

HORIZON = 420.0


def run_elasticity():
    provider = KubernetesProvider(
        max_pods_per_image=10, startup_mean=2.0, startup_jitter=0.3, seed=7
    )
    strategy = SimpleScalingStrategy(
        max_units_per_image=10, min_units_per_image=0, idle_grace=5.0
    )
    sim = ElasticitySimulation(provider=provider, strategy=strategy)
    sim.submit(
        list(
            burst_arrivals(
                120.0, 3, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)]
            )
        )
    )
    return sim.run(until=HORIZON)


def test_fig6_elasticity(benchmark):
    timelines = benchmark.pedantic(run_elasticity, rounds=1, iterations=1)

    report = ExperimentReport(
        "fig6_elasticity", "Concurrent functions and active pods over time"
    )
    grid = np.arange(0.0, HORIZON, 10.0)
    rows = []
    for t in grid:
        row = [f"{t:.0f}"]
        for image in ("1s", "10s", "20s"):
            row.append(int(timelines.outstanding.step_resample(image, [t])[0]))
        for image in ("1s", "10s", "20s"):
            row.append(int(timelines.active_pods.step_resample(image, [t])[0]))
        rows.append(row)
    report.rows(
        ["t (s)", "fn 1s", "fn 10s", "fn 20s", "pods 1s", "pods 10s", "pods 20s"],
        rows,
    )
    report.line("")
    report.line(
        "peak pods per image: "
        + ", ".join(
            f"{img}={timelines.peak_pods(img):.0f}" for img in ("1s", "10s", "20s")
        )
        + "   (paper: 1, 5, 10 — ten is the cap)"
    )
    report.note("functions completed: "
                f"{timelines.completed} of 78 submitted across 3 bursts")
    report.finish()

    # Paper findings: pods scale to 1 / 5 / 10 at each burst and unused
    # pods are terminated between bursts.
    assert timelines.peak_pods("1s") == 1
    assert timelines.peak_pods("10s") == 5
    assert timelines.peak_pods("20s") == 10
    assert timelines.completed == 78
    # pods reclaimed before the next burst (t≈110 s)
    idle_pods = timelines.active_pods.step_resample("20s", [110.0])[0]
    assert idle_pods == 0
