"""Figure 7 — task latency timeline across a manager failure/recovery.

Paper protocol (§5.4): two managers process a uniform-rate stream of
100 ms sleep functions keeping the system at capacity; one manager is
terminated after 2 s and restarted after 4 s.  The figure shows task
latency spiking after the failure and recovering after the restart.

Reproduction: the simulated fabric with heartbeat-based loss detection;
the lost manager's tracked tasks are re-executed (§4.3).
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport
from repro.sim import FailureSchedule, SimFabric
from repro.sim.platform import THETA
from repro.workloads.generators import uniform_rate_arrivals

FAIL_AT, RECOVER_AT = 2.0, 4.0


def run_manager_failure():
    fab = SimFabric(
        THETA,
        managers=2,
        workers_per_manager=4,
        prefetch=4,
        heartbeat_period=0.2,
        heartbeat_grace=3,
        seed=3,
    )
    fab.submit_stream(uniform_rate_arrivals(rate=60, total=600, duration=0.1))
    fab.apply_failures(
        FailureSchedule(manager_failures=((FAIL_AT, RECOVER_AT, 0),))
    )
    return fab.run()


def test_fig7_manager_failure_timeline(benchmark):
    result = benchmark.pedantic(run_manager_failure, rounds=1, iterations=1)

    t, latency = result.latency_timeline(bin_width=0.5)
    report = ExperimentReport(
        "fig7_manager_failure",
        "Task latency while a manager fails (t=2s) and recovers (t=4s)",
    )
    report.rows(
        ["completion time (s)", "mean latency (ms)"],
        [[f"{a:.2f}", b * 1000] for a, b in zip(t, latency)],
    )
    report.line("")
    report.line(f"tasks completed: {result.tasks_completed}/600, "
                f"re-executed after loss: {result.reexecutions}")
    report.note("paper: latency rises immediately after the failure as tasks "
                "queue, then quickly returns to baseline after recovery")
    report.finish()

    baseline = latency[t < FAIL_AT].mean()
    spike = latency[(t > FAIL_AT) & (t < RECOVER_AT + 2.0)].max()
    recovered = latency[t > RECOVER_AT + 3.0].mean()
    assert result.tasks_completed == 600          # nothing lost
    assert spike > 3 * baseline                   # visible failure spike
    assert abs(recovered - baseline) / baseline < 0.25   # full recovery
    assert result.reexecutions > 0                # the watchdog actually fired
