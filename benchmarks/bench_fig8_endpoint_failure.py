"""Figure 8 — task latency timeline across an endpoint failure/recovery.

Paper protocol (§5.4): a uniform-rate stream of 100 ms sleep functions;
the endpoint fails at t=43 s and recovers at t=85 s.  Task latency
spikes (tasks submitted during the outage wait at the service) and
returns to baseline after recovery.

Reproduction: the simulated fabric at the paper's exact timeline — the
forwarder requeues outstanding tasks after missed heartbeats and the
recovered agent repeats registration and drains the backlog (§4.1/§4.3).
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport
from repro.sim import FailureSchedule, SimFabric
from repro.sim.platform import THETA
from repro.workloads.generators import uniform_rate_arrivals

FAIL_AT, RECOVER_AT = 43.0, 85.0


def run_endpoint_failure():
    fab = SimFabric(
        THETA,
        managers=2,
        workers_per_manager=4,
        prefetch=4,
        heartbeat_period=0.5,
        heartbeat_grace=3,
        seed=5,
    )
    fab.submit_stream(uniform_rate_arrivals(rate=20, total=2600, duration=0.1))
    fab.apply_failures(FailureSchedule(endpoint_failures=((FAIL_AT, RECOVER_AT),)))
    return fab.run()


def test_fig8_endpoint_failure_timeline(benchmark):
    result = benchmark.pedantic(run_endpoint_failure, rounds=1, iterations=1)

    t, latency = result.latency_timeline(bin_width=5.0)
    report = ExperimentReport(
        "fig8_endpoint_failure",
        "Task latency while the endpoint fails (t=43s) and recovers (t=85s)",
    )
    report.rows(
        ["completion time (s)", "mean latency (ms)"],
        [[f"{a:.1f}", b * 1000] for a, b in zip(t, latency)],
    )
    report.line("")
    report.line(f"tasks completed: {result.tasks_completed}/2600, "
                f"requeued by the forwarder: {result.reexecutions}")
    report.note("paper: no completions during the outage; queued tasks drain "
                "with high recorded latency right after recovery, then "
                "latency returns to pre-failure levels")
    report.finish()

    baseline = latency[t < FAIL_AT].mean()
    assert result.tasks_completed == 2600
    # nothing completes during the outage
    outage_bins = (t > FAIL_AT + 5.0) & (t < RECOVER_AT)
    assert not outage_bins.any() or latency[outage_bins].size == 0
    # backlog drains with a large spike immediately after recovery
    spike = latency[(t >= RECOVER_AT) & (t <= RECOVER_AT + 10.0)].max()
    assert spike > 20 * baseline
    # and the tail of the run is back to baseline
    recovered = latency[t > RECOVER_AT + 20.0].mean()
    assert abs(recovered - baseline) / baseline < 0.25
