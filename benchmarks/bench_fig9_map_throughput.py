"""Figure 9 — user-driven batching (``map``) strong-scaling throughput.

Paper protocol (§5.5.3): 10 million ~10 µs functions launched through the
``map`` command on a single c5n.9xlarge (36 vCPUs), sweeping batch size
and worker count; peak throughput 1.2 M functions/s — far beyond what is
possible without batching.

Reproduction: the live fabric's real ``map`` machinery (islice
partitioning, one task per batch, per-item worker-side application) with
a real ~10 µs function.  Scale note: this runs on whatever machine hosts
the benchmark and Python workers here are threads sharing the GIL, so
absolute throughput is ~1-2 orders below the paper's 36-core testbed;
the *shape* — batching lifts throughput by >10x and saturates at large
batch sizes — is the reproduced result.
"""

from __future__ import annotations

import time

from benchmarks.harness import ExperimentReport, quick_mode
from repro import EndpointConfig, LocalDeployment
from repro.workloads.functions import busy_10us

#: (batch_size, total functions) — totals scale with batch size to keep
#: wall time bounded while giving each point enough work to measure.
SWEEP = [(1, 2_000), (16, 10_000), (64, 40_000), (256, 100_000), (1024, 200_000)]
SWEEP_QUICK = [(1, 500), (64, 10_000), (1024, 50_000)]


def measure(batch_size: int, total: int, workers: int = 4) -> float:
    with LocalDeployment() as dep:
        client = dep.client()
        ep = dep.create_endpoint(
            "fig9-ep", nodes=1,
            config=EndpointConfig(workers_per_node=workers, heartbeat_period=0.2),
        )
        fid = client.register_function(busy_10us, public=True)
        start = time.perf_counter()
        result = client.map(fid, range(total), ep, batch_size=batch_size)
        assert result.wait(timeout=300)
        elapsed = time.perf_counter() - start
        # spot-check correctness of the mapped results
        assert result.result()[0] == busy_10us()
        return total / elapsed


def test_fig9_map_throughput(benchmark):
    sweep = SWEEP_QUICK if quick_mode() else SWEEP

    def run_sweep():
        return [(b, n, measure(b, n)) for b, n in sweep]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "fig9_map_throughput",
        "map() throughput vs batch size, ~10 µs functions (functions/s)",
    )
    report.rows(
        ["batch size", "functions", "throughput (/s)"],
        [[b, n, thr] for b, n, thr in rows],
    )
    peak = max(thr for _, _, thr in rows)
    base = rows[0][2]
    report.line("")
    report.line(f"peak throughput: {peak:,.0f}/s, unbatched: {base:,.0f}/s, "
                f"gain {peak / base:.1f}x")
    report.note("paper peak: 1.2M functions/s on 36 vCPUs; this run uses "
                "GIL-sharing worker threads on the benchmark host, so compare "
                "shape (batching gain, saturation), not absolute rate")
    report.finish()

    assert peak / base > 5.0          # batching transforms throughput
    assert peak > 10_000              # well beyond per-task dispatch rates
    # saturation: the two largest batch sizes are within 2x of each other
    big = [thr for b, _, thr in rows if b >= 256] or [peak]
    assert max(big) / min(big) < 2.0
