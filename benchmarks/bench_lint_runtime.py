"""Lint runtime gate: the full-src analyzer must stay fast enough to
run on every commit.

PR 4 added a CFG + dataflow engine (lease-ack, span-lifecycle) and a
cross-file lock-order graph to ``repro lint``; the protocol registry
then multiplied the flow-sensitive fleet (subscription-lifecycle,
spill-lifecycle, future-resolution per file, plus the cross-file
credit-balance and handler-exhaustiveness passes).  Flow-sensitive
analyses are where linters usually get slow.  This gate times ``run_analysis``
over all of ``src/`` — best of several runs, so a cold filesystem cache
only hits the first — and asserts the wall time stays under the budget
that keeps lint viable as a tier-1 pre-commit step.

Artifact: ``BENCH_lint_runtime.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.harness import ExperimentReport, quick_mode
from repro.analysis import run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_lint_runtime.json"

RUNS = 3
RUNS_QUICK = 2

#: Gate threshold: a full-src lint must finish in under 3 seconds.
MAX_SECONDS = 3.0


def test_lint_runtime_gate():
    runs = RUNS_QUICK if quick_mode() else RUNS
    src = REPO_ROOT / "src"
    times: list[float] = []
    report_obj = None
    for _ in range(runs):
        start = time.perf_counter()
        report_obj = run_analysis([src], repo_root=REPO_ROOT)
        times.append(time.perf_counter() - start)
    assert report_obj is not None
    assert not report_obj.errors, report_obj.errors

    best = min(times)
    RESULT_JSON.write_text(json.dumps({
        "runs": runs,
        "seconds_per_run": times,
        "best_seconds": best,
        "max_seconds": MAX_SECONDS,
        "files_analyzed": report_obj.files_analyzed,
        "findings": len(report_obj.findings),
        "quick": quick_mode(),
    }, indent=2, sort_keys=True) + "\n")

    report = ExperimentReport(
        "lint_runtime",
        "full-src static-analysis wall-time gate (all checks)",
    )
    report.rows(
        ["files", "best of", "wall time (s)", "gate (s)"],
        [[report_obj.files_analyzed, runs, best, MAX_SECONDS]],
    )
    report.note("includes the typestate protocol fleet (lease-ack, "
                "subscription-lifecycle, spill-lifecycle, "
                "future-resolution, span-lifecycle) and the cross-file "
                "lock-order, credit-balance, and handler-exhaustiveness "
                "passes")
    report.finish()

    assert best < MAX_SECONDS, (
        f"full-src lint took {best:.2f}s (gate: <{MAX_SECONDS:.1f}s, "
        f"{report_obj.files_analyzed} files)"
    )
