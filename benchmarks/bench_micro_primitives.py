"""Micro-benchmarks of the hot-path primitives (pytest-benchmark rounds).

These are not paper figures; they are regression guards on the data
structures whose per-operation cost sets the platform's ceilings:
the reliable queue (every task passes twice), the event kernel (every
simulated event), the memoizer (every memoized request), and the routed
buffer codec (every message).
"""

from __future__ import annotations

from repro.core.memoization import Memoizer
from repro.serialize import FuncXSerializer
from repro.serialize.buffers import pack_buffer, unpack_buffer
from repro.sim.kernel import EventLoop
from repro.store.queues import ReliableQueue


def test_queue_put_lease_ack_cycle(benchmark):
    queue = ReliableQueue()

    def cycle():
        queue.put("task-id")
        lease = queue.lease()
        queue.ack(lease.lease_id)

    benchmark(cycle)
    assert len(queue) == 0


def test_queue_bulk_lease(benchmark):
    queue = ReliableQueue()

    def cycle():
        queue.put_many(range(64))
        for lease in queue.lease_many(64):
            queue.ack(lease.lease_id)

    benchmark(cycle)


def test_kernel_event_throughput(benchmark):
    def run_events():
        loop = EventLoop()
        for i in range(1000):
            loop.schedule(float(i % 13), lambda: None)
        loop.run()
        return loop.events_processed

    assert benchmark(run_events) == 1000


def test_memoizer_lookup_hit(benchmark):
    memo = Memoizer()
    memo.store(b"function-body", b"payload", b"result")
    result = benchmark(memo.lookup, b"function-body", b"payload")
    assert result == b"result"


def test_buffer_pack_unpack(benchmark):
    payload = b"x" * 512

    def cycle():
        return unpack_buffer(pack_buffer("01", "task-0000", payload))

    header, out = benchmark(cycle)
    assert out == payload


def test_serializer_task_payload(benchmark):
    serializer = FuncXSerializer()
    payload = ([21, "frame-007.h5"], {"start": 0, "end": 10, "step": 1})

    def cycle():
        return serializer.deserialize(serializer.serialize(payload))

    assert benchmark(cycle) == payload
