"""Result-stream gate: push delivery must beat the polling floor.

Runs the same identity workload over a 1 ms-latency fabric through the
two result paths and compares client-observed latency:

* **push** — a ``FuncXExecutor`` resolving futures off the service's
  result subscription stream (batched ``ResultBatchMessage`` delivery,
  credit-windowed);
* **poll** — the paper-era client looping ``get_result(timeout=0)`` /
  ``sleep(poll_interval)``; its observed latency is quantized up to the
  next poll tick, so the poll interval is a hard floor.

Two things must hold for push delivery to count as working:

* **below the floor** — push p50 is strictly below the poll interval,
  a latency the polling client cannot reach by construction;
* **beats polling** — push p50 is strictly below poll p50 on the same
  fabric (same link latency, same workers, same function).

A conservation check rides along: every result the throughput wave
resolved must have been delivered by the stream (no polling fallback
snuck in), and delivery batches must actually coalesce (mean batch
size above 1 proves waves of completions ride one message).

Artifacts: ``BENCH_result_stream.json`` at the repo root and the usual
``benchmarks/results`` text report.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.harness import ExperimentReport, quick_mode
from repro.perf import measure_result_stream

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_result_stream.json"

TASKS = 64
TASKS_QUICK = 16
SAMPLES = 30
SAMPLES_QUICK = 8
LATENCY = 0.001
POLL_INTERVAL = 0.01


def test_result_stream_gate():
    quick = quick_mode()
    result = measure_result_stream(
        tasks=TASKS_QUICK if quick else TASKS,
        samples=SAMPLES_QUICK if quick else SAMPLES,
        latency=LATENCY,
        poll_interval=POLL_INTERVAL,
    )

    push_p50 = result["push"]["p50_s"]
    poll_p50 = result["poll"]["p50_s"]
    RESULT_JSON.write_text(json.dumps({
        **result,
        "gates": {
            "max_push_p50_s": POLL_INTERVAL,
            "push_p50_below_poll_p50": True,
        },
        "quick": quick,
    }, indent=2, sort_keys=True) + "\n")

    report = ExperimentReport(
        "result_stream",
        f"push vs poll result delivery over a {LATENCY * 1e3:.0f} ms link "
        f"(poll interval {POLL_INTERVAL * 1e3:.0f} ms)",
    )
    report.rows(
        ["metric", "push", "poll"],
        [["p50 (ms)", push_p50 * 1e3, poll_p50 * 1e3],
         ["p99 (ms)", result["push"]["p99_s"] * 1e3,
          result["poll"]["p99_s"] * 1e3],
         ["mean (ms)", result["push"]["mean_s"] * 1e3,
          result["poll"]["mean_s"] * 1e3]],
    )
    report.rows(
        ["stream stat", "value"],
        [["wave tasks/s", f"{result['throughput']['tasks_per_second']:.1f}"],
         ["results delivered", result["stream"]["results_delivered"]],
         ["delivery batches", result["stream"]["batches_delivered"]],
         ["mean batch size", result["stream"]["mean_batch_size"]],
         ["p50 speedup", f"{result['p50_speedup']:.1f}x"]],
    )
    report.note("the polling client cannot observe a result sooner than its "
                "poll interval; the stream pushes it one link latency after "
                "completion")
    report.finish()

    assert push_p50 < POLL_INTERVAL, (
        f"push p50 {push_p50 * 1e3:.2f} ms is not below the polling floor "
        f"({POLL_INTERVAL * 1e3:.0f} ms) — the stream is not actually pushing"
    )
    assert push_p50 < poll_p50, (
        f"push p50 {push_p50 * 1e3:.2f} ms did not beat poll p50 "
        f"{poll_p50 * 1e3:.2f} ms on the same fabric"
    )
    assert result["stream"]["results_delivered"] >= result["params"]["tasks"], (
        "fewer stream deliveries than wave tasks — futures resolved through "
        "some other path"
    )
    assert result["stream"]["mean_batch_size"] > 1.0, (
        "delivery batches never coalesced — each result rode its own message"
    )
