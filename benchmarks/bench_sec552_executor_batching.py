"""§5.5.2 — executor-side (internal) batching.

Paper protocol: 10,000 concurrent no-op requests on 4 Theta nodes with
64 containers each; executors request one function at a time (disabled)
vs as many as their idle containers (enabled).  Paper result: 6.7 s
enabled vs 118 s disabled (~17.6x).

Reproduction: the simulated fabric with the internal-batching knob.
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport
from repro.sim import SimFabric
from repro.sim.platform import THETA

TASKS = 10_000
NODES = 4


def run(batching: bool) -> float:
    fab = SimFabric(
        THETA, managers=NODES, workers_per_manager=64,
        internal_batching=batching, seed=2,
    )
    fab.submit_batch(TASKS, duration=0.0)
    result = fab.run()
    assert result.tasks_completed == TASKS
    return result.completion_time


def test_sec552_executor_batching(benchmark):
    def sweep():
        return run(True), run(False)

    enabled, disabled = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "sec552_executor_batching",
        f"Completion time of {TASKS:,} no-ops on {NODES}x64 containers (s)",
    )
    report.rows(
        ["internal batching", "completion (s)", "paper (s)"],
        [["enabled", enabled, 6.7], ["disabled", disabled, 118.0]],
    )
    report.line("")
    report.line(f"speedup from batching: {disabled / enabled:.1f}x "
                f"(paper: {118 / 6.7:.1f}x)")
    report.finish()

    assert enabled < 10.0
    assert disabled > 80.0
    assert 8.0 < disabled / enabled < 40.0  # same order of benefit as the paper
