"""Shard-scale gate: near-linear tasks/s from 1 → 4 service shards.

Drives the sharded service plane with one full-lifecycle driver per
shard (submit → lease → complete → ack, every store write charged to
the owning shard's serial pacer) and a *fixed total* task count, so
aggregate tasks/s can only rise with the shard count if the partitions
genuinely proceed in parallel — disjoint locks, disjoint queues,
GIL-releasing pacer sleeps.  Two gates:

* **scaling** — aggregate throughput at 4 shards must be ≥2.5x the
  1-shard run (the consistent-hash plane must not serialize anywhere:
  a single shared lock, table, or pacer would flatten the curve);
* **fairness** — with two tenants in a 10:1 aggressive/polite offered
  load mix on one endpoint, the DRR dequeue's p99 windowed
  inter-tenant throughput gap must stay ≤0.35 (perfect alternation is
  0.0; FIFO would track the 10:1 arrival mix at ~0.82).

Artifacts: ``BENCH_shard_scale.json`` at the repo root and the usual
``benchmarks/results`` text report.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.harness import ExperimentReport, quick_mode
from repro.perf import measure_shard_scale

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard_scale.json"

SHARD_COUNTS = (1, 2, 4)
TASKS = 384
TASKS_QUICK = 128
FAIRNESS_ROUNDS = 60
FAIRNESS_ROUNDS_QUICK = 30

#: Gate thresholds.
MIN_SPEEDUP = 2.5       # aggregate tasks/s, 1 shard -> 4 shards
MAX_P99_GAP = 0.35      # windowed |aggressive - polite| / window


def test_shard_scale_gate():
    quick = quick_mode()
    result = measure_shard_scale(
        shard_counts=SHARD_COUNTS,
        tasks=TASKS_QUICK if quick else TASKS,
        fairness_rounds=FAIRNESS_ROUNDS_QUICK if quick else FAIRNESS_ROUNDS,
    )

    scaling = result["scaling"]
    fairness = result["fairness"]
    RESULT_JSON.write_text(json.dumps({
        **result,
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "max_p99_gap": MAX_P99_GAP,
        },
        "quick": quick,
    }, indent=2, sort_keys=True) + "\n")

    report = ExperimentReport(
        "shard_scale",
        f"service-plane scaling {SHARD_COUNTS[0]} -> {SHARD_COUNTS[-1]} "
        f"shards + 10:1 tenant fairness",
    )
    report.rows(
        ["shards", "tasks", "seconds", "tasks/s"],
        [[run["shards"], run["tasks"], f"{run['seconds']:.3f}",
          f"{run['tasks_per_second']:.0f}"]
         for run in scaling["runs"]],
    )
    report.rows(
        ["metric", "value"],
        [["speedup 1->4", f"{scaling['speedup']:.2f}x"],
         ["fairness p99 gap", f"{fairness['p99_gap']:.3f}"],
         ["fairness mean gap", f"{fairness['mean_gap']:.3f}"],
         ["polite service share", f"{fairness['polite_share']:.2f}"],
         ["arrival mix gap", f"{fairness['arrival_gap']:.2f}"]],
    )
    report.note("fixed total work split across per-shard lifecycle "
                "drivers; each shard's store writes pay a serial pacer, "
                "so throughput scales only if partitions run in parallel")
    report.finish()

    assert scaling["speedup"] >= MIN_SPEEDUP, (
        f"aggregate throughput scaled only {scaling['speedup']:.2f}x from "
        f"{SHARD_COUNTS[0]} to {SHARD_COUNTS[-1]} shards (gate: "
        f"{MIN_SPEEDUP}x) — something in the plane is serializing"
    )
    # Monotone non-degrading: each added shard must not cost throughput.
    rates = [run["tasks_per_second"] for run in scaling["runs"]]
    for prev, cur in zip(rates, rates[1:]):
        assert cur >= 0.9 * prev, (
            f"throughput regressed when adding shards: {rates} — "
            "cross-shard coordination is eating the win"
        )
    assert fairness["p99_gap"] <= MAX_P99_GAP, (
        f"p99 inter-tenant gap {fairness['p99_gap']:.3f} exceeds "
        f"{MAX_P99_GAP} — DRR is not isolating the polite tenant from "
        "the aggressive one"
    )
    assert fairness["p99_gap"] < fairness["arrival_gap"], (
        "the service share gap tracks the 10:1 arrival mix — fair "
        "dequeue is not happening at all"
    )
