"""Table 1 — FaaS latency breakdown: warm/cold for Azure, Google, Amazon
and funcX.

Paper protocol (§5.1): the same echo function ("hello-world") is deployed
on each platform; requests originate from a client 18.2 ms from the
service; warm rows use back-to-back invocations, cold rows force a cold
container per invocation.

Reproduction: the three commercial rows come from latency models
calibrated to the paper's own measurements (the platforms are closed
source and unreachable offline); the **funcX row is measured** through
this repository's real stack — service auth/store overheads, forwarder
and agent channels, a real worker executing the real echo function, and
a modelled EC2/Singularity container cold start applied physically on
endpoint start.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.harness import ExperimentReport, quick_mode
from repro import DeploymentTimings, EndpointConfig, LocalDeployment
from repro.containers.spec import ContainerTechnology
from repro.core.service import ServiceConfig
from repro.faas.commercial import _models
from repro.metrics import summarize
from repro.workloads import echo

#: client → funcX service WAN latency (ANL Cooley → AWS us-east, §5.1)
WAN_MS = 18.2

#: modelled web-service processing (auth + Redis round trips); calibrated
#: to the ts component of figure 4.
SERVICE_OVERHEAD_S = 0.030


def _timings() -> DeploymentTimings:
    return DeploymentTimings(
        service_endpoint_latency=0.002,   # service and endpoint share us-east
        manager_latency=0.0005,
        service_overhead=SERVICE_OVERHEAD_S,
    )


def _endpoint_config(cold: bool) -> EndpointConfig:
    return EndpointConfig(
        workers_per_node=2,
        system="ec2",
        container_technology=ContainerTechnology.SINGULARITY,
        heartbeat_period=0.1,
        # warm rows reuse the deployed container; cold rows physically
        # pay the Table 2 EC2/Singularity instantiation time
        scale_cold_start=1.0 if cold else 0.0,
        warm_ttl=600.0,
        seed=42,
    )


def measure_funcx_warm(samples: int) -> np.ndarray:
    with LocalDeployment(timings=_timings(), seed=1) as dep:
        client = dep.client()
        ep = dep.create_endpoint("table1-ep", nodes=1, config=_endpoint_config(cold=False))
        fid = client.register_function(echo, public=True)
        # first call warms everything
        client.wait_for(client.run(fid, ep, "hello-world"), timeout=30)
        latencies = []
        for _ in range(samples):
            start = time.perf_counter()
            task_id = client.run(fid, ep, "hello-world")
            client.get_result(task_id, timeout=30)
            latencies.append(time.perf_counter() - start)
        return np.array(latencies) + 2 * WAN_MS / 1000.0


def measure_funcx_cold(samples: int) -> np.ndarray:
    """Cold = restart the endpoint before each invocation (§5.1) so the
    first function pays worker-container instantiation."""
    latencies = []
    container = "table1/echo:latest"
    for i in range(samples):
        with LocalDeployment(timings=_timings(), seed=100 + i) as dep:
            client = dep.client()
            ep = dep.create_endpoint(
                "cold-ep", nodes=1, config=_endpoint_config(cold=True)
            )
            fid = client.register_function(
                echo, public=True, container_image=f"singularity:{container}"
            )
            start = time.perf_counter()
            task_id = client.run(fid, ep, "hello-world")
            client.get_result(task_id, timeout=60)
            latencies.append(time.perf_counter() - start)
    return np.array(latencies) + 2 * WAN_MS / 1000.0


PAPER = {
    ("azure", "warm"): (118.0, 12.0, 130.0),
    ("azure", "cold"): (1327.7, 32.0, 1359.7),
    ("google", "warm"): (80.6, 5.0, 85.6),
    ("google", "cold"): (203.8, 19.0, 222.8),
    ("amazon", "warm"): (100.0, 0.3, 100.3),
    ("amazon", "cold"): (468.2, 0.6, 468.8),
    ("funcx", "warm"): (109.1, 2.2, 111.3),
    ("funcx", "cold"): (1491.1, 6.1, 1497.2),
}


def test_table1_latency_breakdown(benchmark):
    warm_n = 60 if quick_mode() else 300
    cold_n = 3 if quick_mode() else 8
    commercial_warm_n, commercial_cold_n = 10_000, 50  # paper's counts

    rows = []
    models = _models(seed=20200507)
    for provider in ("azure", "google", "amazon"):
        model = models[provider]
        for temp, n in (("warm", commercial_warm_n), ("cold", commercial_cold_n)):
            samples = model.sample_many(n, cold=(temp == "cold"))
            totals = summarize([s.total for s in samples])
            overheads = summarize([s.overhead for s in samples])
            functions = summarize([s.function_time for s in samples])
            rows.append([provider, temp, overheads.mean, functions.mean,
                         totals.mean, totals.std, PAPER[(provider, temp)][2]])

    warm = benchmark.pedantic(measure_funcx_warm, args=(warm_n,), rounds=1, iterations=1)
    warm_stats = summarize(warm).scaled(1000.0)
    cold_stats = summarize(measure_funcx_cold(cold_n)).scaled(1000.0)
    for temp, stats in (("warm", warm_stats), ("cold", cold_stats)):
        # function time for echo is microseconds; overhead ≈ total
        rows.append(["funcx*", temp, stats.mean - 0.1, 0.1, stats.mean,
                     stats.std, PAPER[("funcx", temp)][2]])

    report = ExperimentReport("table1_latency", "FaaS latency breakdown (ms)")
    report.rows(
        ["platform", "state", "overhead", "function", "total", "std",
         "paper total"],
        rows,
    )
    report.note("funcx* rows measured through the live stack; commercial rows "
                "are models calibrated to the paper (closed platforms).")
    report.note(f"{WAN_MS} ms one-way client WAN latency added per §5.1 topology.")
    report.finish()

    # Shape: funcX warm latency is comparable to commercial warm latency,
    # and funcX cold is dominated by container instantiation (the paper's
    # conclusion), i.e. slower than Amazon/Google cold starts.
    funcx_warm_total = warm_stats.mean
    assert 50 <= funcx_warm_total <= 400
    assert cold_stats.mean > 1000
    assert cold_stats.mean > funcx_warm_total * 4
