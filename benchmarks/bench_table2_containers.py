"""Table 2 — cold container instantiation time per (system, technology).

Paper protocol (§5.5.1): start a container and import the funcX worker
modules on an EC2 m5.large, a Theta KNL node and a Cori KNL node.

Reproduction: the calibrated cold-start models are sampled (the real
machines and container binaries are unavailable); the benchmark verifies
that the sampled min/mean/max reproduce the measured rows and that the
paper's qualitative finding — HPC instantiation is ~5-8x slower than
EC2, motivating container warming — holds.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import ExperimentReport
from repro.containers import ContainerRuntime, ContainerTechnology

PAPER_ROWS = [
    ("theta", ContainerTechnology.SINGULARITY, 9.83, 14.06, 10.40),
    ("cori", ContainerTechnology.SHIFTER, 7.25, 31.26, 8.49),
    ("ec2", ContainerTechnology.DOCKER, 1.74, 1.88, 1.79),
    ("ec2", ContainerTechnology.SINGULARITY, 1.19, 1.26, 1.22),
]

SAMPLES = 2000


def sample_all() -> dict[tuple[str, str], np.ndarray]:
    out = {}
    for i, (system, tech, *_rest) in enumerate(PAPER_ROWS):
        runtime = ContainerRuntime(system=system, seed=100 + i)
        out[(system, tech.value)] = np.array(runtime.measure(tech, SAMPLES))
    return out


def test_table2_container_instantiation(benchmark):
    samples = benchmark.pedantic(sample_all, rounds=1, iterations=1)

    report = ExperimentReport(
        "table2_containers", "Cold container instantiation time (s)"
    )
    rows = []
    for system, tech, p_min, p_max, p_mean in PAPER_ROWS:
        values = samples[(system, tech.value)]
        rows.append([
            system, tech.value,
            float(values.min()), float(values.max()), float(values.mean()),
            f"{p_min}/{p_max}/{p_mean}",
        ])
    report.rows(
        ["system", "container", "min", "max", "mean", "paper min/max/mean"], rows
    )
    report.note("sampled from models calibrated to the paper's measurements "
                "(no KNL nodes / container binaries in this environment)")
    report.finish()

    for system, tech, p_min, p_max, p_mean in PAPER_ROWS:
        values = samples[(system, tech.value)]
        assert values.min() >= p_min and values.max() <= p_max
        assert abs(values.mean() - p_mean) / p_mean < 0.12

    # The finding that motivates warming (§4.7/§5.5.1):
    hpc_mean = samples[("theta", "singularity")].mean()
    ec2_mean = samples[("ec2", "singularity")].mean()
    assert hpc_mean > 5 * ec2_mean
