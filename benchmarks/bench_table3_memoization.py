"""Table 3 — memoization: completion time vs fraction of repeated requests.

Paper protocol (§5.5.6): a function that sleeps one second and doubles
its input; 100,000 concurrent requests with 0/25/50/75/100% repeated
inputs.  Paper row: 403.8 / 318.5 / 233.6 / 147.9 / 63.2 seconds.

Reproduction: the simulated fabric with service-side memoization and the
serialized service pipeline (hits cost one service-processing slot, ~0.6
ms, and never dispatch) on 4 nodes × 64 containers — the worker count
that makes the paper's 0% row ≈ 100k × 1 s / 256 ≈ 390 s.
"""

from __future__ import annotations

from benchmarks.harness import ExperimentReport, quick_mode
from repro.sim import SimFabric
from repro.sim.platform import THETA

REPEAT_PERCENTAGES = [0, 25, 50, 75, 100]
PAPER = {0: 403.8, 25: 318.5, 50: 233.6, 75: 147.9, 100: 63.2}


def run(repeat_pct: int, total: int) -> tuple[float, int]:
    n_repeated = total * repeat_pct // 100
    n_unique = total - n_repeated
    # unique keys first, then repeats of key 0 — every repeat is a
    # deterministic re-invocation, as in the paper's setup
    keys = list(range(n_unique)) + [0] * n_repeated
    fab = SimFabric(
        THETA, managers=4, workers_per_manager=64, prefetch=64,
        memoize=True, memo_prewarmed=True, seed=6,
    )
    fab.submit_batch(total, duration=1.0, memo_keys=keys, through_service=True)
    result = fab.run()
    assert result.tasks_completed == total
    return result.completion_time, result.memo_hits


def test_table3_memoization(benchmark):
    total = 20_000 if quick_mode() else 100_000

    def sweep():
        return {pct: run(pct, total) for pct in REPEAT_PERCENTAGES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "table3_memoization",
        f"Completion time of {total:,} requests vs repeated fraction (s)",
    )
    rows = [
        [f"{pct}%", results[pct][0], results[pct][1],
         PAPER[pct] * (total / 100_000)]
        for pct in REPEAT_PERCENTAGES
    ]
    report.rows(
        ["repeated", "completion (s)", "memo hits", "paper (scaled)"], rows
    )
    report.note("hits complete at the service without dispatch; the 100% row "
                "is pure service-pipeline time, the 0% row is execution-bound")
    report.finish()

    times = [results[pct][0] for pct in REPEAT_PERCENTAGES]
    # strictly decreasing with repetition
    assert all(a > b for a, b in zip(times, times[1:]))
    # 100% repeated is dramatically faster than 0% (paper: 6.4x)
    assert times[0] / times[-1] > 4.0
    # the 0% row is execution-bound: ≈ total × 1 s / 256 workers
    expected0 = total * 1.0 / 256
    assert abs(times[0] - expected0) / expected0 < 0.25
    # hit counts equal the repeated fraction
    assert results[50][1] == total // 2
