"""Tracing overhead gate: the observability fabric must stay cheap.

Every task on the live fabric now carries a trace context recording one
span per pipeline stage (the figure-4 decomposition) plus registry
counters at each hop.  This gate runs the same batch workload with
tracing on and off — interleaved A/B pairs, best-of per mode, so machine
noise hits both sides equally — and asserts tracing costs less than a
fixed per-task budget (absolute, so the gate survives the fabric itself
speeding up or slowing down).

Artifacts: ``BENCH_trace_overhead.json`` at the repo root (the per-stage
aggregate every live task exposes, plus the A/B timings) and the usual
``benchmarks/results`` text report.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.harness import ExperimentReport, quick_mode
from repro import EndpointConfig, LocalDeployment, ServiceConfig
from repro.observability.trace import STAGES, aggregate_breakdowns

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_trace_overhead.json"

#: Interleaved A/B pairs; best-of per mode filters scheduler noise.
PAIRS = 3
TASKS = 200
TASKS_QUICK = 60

#: Gate threshold: tracing must cost less than this per task, absolute.
#: (A relative gate breaks whenever the fabric itself gets faster: the
#: batched, event-driven dispatch path cut the untraced denominator ~5x
#: while tracing's fixed per-task cost stayed ~50 µs.)
MAX_OVERHEAD_PER_TASK = 0.25e-3


def _nop(x):
    return x


def _run_batch(tracing: bool, tasks: int) -> tuple[float, dict[str, list[float]]]:
    """Completion time for ``tasks`` trivial tasks; stage durations if traced."""
    with LocalDeployment(
            service_config=ServiceConfig(tracing=tracing)) as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint(
            "overhead-ep", nodes=1,
            config=EndpointConfig(workers_per_node=4, heartbeat_period=0.2),
        )
        fid = client.register_function(_nop, public=True)
        calls = [(fid, ep, (i,), {}) for i in range(tasks)]
        start = time.perf_counter()
        task_ids = client.batch_run(calls)
        for task_id in task_ids:
            client.wait_for(task_id, timeout=60)
        elapsed = time.perf_counter() - start
        stage_durations: dict[str, list[float]] = {}
        if tracing:
            contexts = [deployment.service.traces.context_for(t)
                        for t in task_ids]
            stage_durations = aggregate_breakdowns(
                [c for c in contexts if c is not None])
    return elapsed, stage_durations


def test_trace_overhead_gate():
    tasks = TASKS_QUICK if quick_mode() else TASKS
    traced_times: list[float] = []
    untraced_times: list[float] = []
    stage_durations: dict[str, list[float]] = {}
    for _ in range(PAIRS):
        elapsed_off, _ = _run_batch(tracing=False, tasks=tasks)
        untraced_times.append(elapsed_off)
        elapsed_on, stages = _run_batch(tracing=True, tasks=tasks)
        traced_times.append(elapsed_on)
        for stage, values in stages.items():
            stage_durations.setdefault(stage, []).extend(values)

    traced = min(traced_times)
    untraced = min(untraced_times)
    overhead = traced / untraced - 1.0
    per_task = (traced - untraced) / tasks

    stage_ms = {
        stage: {
            "mean": float(np.mean(values)) * 1e3,
            "p95": float(np.percentile(values, 95)) * 1e3,
            "count": len(values),
        }
        for stage, values in stage_durations.items()
    }
    RESULT_JSON.write_text(json.dumps({
        "tasks": tasks,
        "pairs": PAIRS,
        "traced_seconds": traced,
        "untraced_seconds": untraced,
        "overhead_ratio": overhead,
        "overhead_per_task_s": per_task,
        "max_overhead_per_task_s": MAX_OVERHEAD_PER_TASK,
        "stage_ms": stage_ms,
        "quick": quick_mode(),
    }, indent=2, sort_keys=True) + "\n")

    report = ExperimentReport(
        "trace_overhead",
        "end-to-end tracing overhead gate (batch of trivial tasks)",
    )
    report.rows(
        ["mode", "best of", f"batch of {tasks} (s)"],
        [["untraced", PAIRS, untraced], ["traced", PAIRS, traced]],
    )
    report.line("")
    report.line(f"overhead: {per_task * 1e6:+.0f}us/task "
                f"({overhead * 100:+.2f}%; gate: "
                f"<{MAX_OVERHEAD_PER_TASK * 1e6:.0f}us/task)")
    if stage_ms:
        report.line("")
        report.rows(
            ["stage", "mean (ms)", "p95 (ms)", "spans"],
            [[s, stage_ms[s]["mean"], stage_ms[s]["p95"], stage_ms[s]["count"]]
             for s in STAGES if s in stage_ms],
        )
    report.note("interleaved A/B pairs, best-of per mode; stage rows are the "
                "figure-4 decomposition aggregated over every traced task")
    report.finish()

    # every traced task exposed the full per-stage decomposition
    for stage in STAGES:
        assert stage in stage_ms, f"no spans recorded for stage {stage}"
    assert per_task < MAX_OVERHEAD_PER_TASK, (
        f"tracing adds {per_task * 1e6:.0f}us per task "
        f"(traced {traced:.3f}s vs untraced {untraced:.3f}s for {tasks} tasks)"
    )
