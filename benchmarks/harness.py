"""Shared benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation section.  Results are printed (visible with ``pytest -s``)
and written to ``benchmarks/results/<experiment>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
regenerated tables/series on disk.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentReport:
    """Collects one experiment's rows and persists them."""

    def __init__(self, experiment_id: str, title: str):
        self.experiment_id = experiment_id
        self.title = title
        self._buf = io.StringIO()
        self.line("=" * 78)
        self.line(f"{experiment_id}: {title}")
        self.line("=" * 78)

    def line(self, text: str = "") -> None:
        self._buf.write(text + "\n")

    def rows(self, header: list[str], rows: list[list], widths: list[int] | None = None) -> None:
        """Append an aligned text table."""
        cells = [header] + [[_fmt(c) for c in row] for row in rows]
        widths = widths or [
            max(len(row[i]) for row in cells) for i in range(len(header))
        ]
        for r, row in enumerate(cells):
            self.line("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if r == 0:
                self.line("  ".join("-" * w for w in widths))

    def note(self, text: str) -> None:
        self.line(f"note: {text}")

    def finish(self) -> str:
        """Print and persist the report; returns the text."""
        text = self._buf.getvalue()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment_id}.txt"
        path.write_text(text)
        return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def quick_mode() -> bool:
    """Honour REPRO_BENCH_QUICK=1 to shrink the heavy sweeps (CI use)."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
