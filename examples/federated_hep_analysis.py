"""Coffea-style federated HEP analysis (paper §2, §6).

Scenario: a physicist histograms collision-event energies by fanning
partial-histogram subtasks out across *two* funcX endpoints
simultaneously — the paper's HEP case study "completed a typical HEP
analysis of 300 million events in nine minutes, simultaneously using two
funcX endpoints provisioning heterogeneous resources."  Partial
histograms are aggregated client-side in real time as futures resolve.

Run with::

    python examples/federated_hep_analysis.py
"""

from __future__ import annotations

import random

from repro import EndpointConfig, LocalDeployment
from repro.workloads.functions import histogram_events

N_EVENTS = 120_000
CHUNK = 5_000
N_BINS = 20
E_MAX = 100.0


def synth_events(n: int, seed: int = 42) -> list[float]:
    """Two-population energy spectrum: background + a 'resonance' bump."""
    rng = random.Random(seed)
    events = []
    for _ in range(n):
        if rng.random() < 0.15:
            events.append(min(E_MAX, max(0.0, rng.gauss(62.0, 3.0))))  # signal
        else:
            events.append(min(E_MAX, rng.expovariate(1 / 18.0)))       # background
    return events


def main() -> None:
    events = synth_events(N_EVENTS)
    chunks = [events[i : i + CHUNK] for i in range(0, len(events), CHUNK)]

    with LocalDeployment() as deployment:
        fc = deployment.client("physicist")

        # Two heterogeneous endpoints used simultaneously.
        campus_cluster = deployment.create_endpoint(
            "campus-cluster", nodes=2,
            config=EndpointConfig(workers_per_node=2),
        )
        hpc_backfill = deployment.create_endpoint(
            "hpc-backfill", nodes=1,
            config=EndpointConfig(workers_per_node=4),
        )
        endpoints = [campus_cluster, hpc_backfill]

        hist_id = fc.register_function(histogram_events)

        # Fan partial-histogram subtasks across both endpoints round-robin.
        futures = []
        for i, chunk in enumerate(chunks):
            target = endpoints[i % len(endpoints)]
            futures.append(
                fc.submit(hist_id, target, chunk, n_bins=N_BINS, lo=0.0, hi=E_MAX)
            )

        # Aggregate in real time as results land.
        total = [0] * N_BINS
        for i, future in enumerate(futures):
            partial = future.result(timeout=120)
            total = [a + b for a, b in zip(total, partial)]

        assert sum(total) == N_EVENTS
        print(f"histogrammed {N_EVENTS:,} events in {len(chunks)} subtasks "
              f"across {len(endpoints)} endpoints\n")

        width = E_MAX / N_BINS
        peak = max(total)
        for b, count in enumerate(total):
            bar = "#" * int(40 * count / peak)
            print(f"{b * width:5.0f}-{(b + 1) * width:<5.0f} {count:7d} {bar}")

        signal_bin = int(62.0 / width)
        neighbours = (total[signal_bin - 2] + total[signal_bin + 2]) / 2
        print(f"\nresonance bump at ~62 GeV: bin count {total[signal_bin]} vs "
              f"sideband ~{neighbours:.0f}")


if __name__ == "__main__":
    main()
