"""Xtract-style metadata extraction near the data (paper §2, §6).

Scenario: a beamline filesystem holds a mixed corpus of text documents
and numeric tables.  Rather than hauling files to the cloud, extraction
functions are *registered once* and dispatched to the endpoint deployed
where the data lives; only small metadata records transit the funcX
service.  Large objects move (when they must) through the out-of-band
staging service — never through the task payload path.

Run with::

    python examples/metadata_extraction.py
"""

from __future__ import annotations

import random

from repro import EndpointConfig, LocalDeployment
from repro.staging import TransferService
from repro.workloads.functions import extract_tabular_metadata, extract_text_metadata


def make_corpus(seed: int = 7) -> tuple[list[str], list[list[list[float]]]]:
    rng = random.Random(seed)
    words = ("beam", "sample", "crystal", "detector", "scan", "flux", "energy")
    documents = [
        " ".join(rng.choice(words) for _ in range(rng.randint(30, 120)))
        for _ in range(12)
    ]
    tables = [
        [[rng.gauss(mu, 1.0) for mu in (0.0, 5.0, 10.0)] for _ in range(50)]
        for _ in range(6)
    ]
    return documents, tables


def main() -> None:
    documents, tables = make_corpus()

    with LocalDeployment() as deployment:
        fc = deployment.client("curator")

        # The "edge" endpoint sits next to the data.
        edge = deployment.create_endpoint(
            "edge-filesystem", nodes=1,
            config=EndpointConfig(workers_per_node=4),
        )

        # Register the two extractors (once; reused for every file).
        text_extractor = fc.register_function(extract_text_metadata)
        table_extractor = fc.register_function(extract_tabular_metadata)

        # --- push extraction to the data via map -----------------------------
        text_meta = fc.map(text_extractor, documents, edge, batch_size=4)
        table_meta = fc.map(table_extractor, tables, edge, batch_size=3)

        records = text_meta.result(timeout=60) + table_meta.result(timeout=60)
        print(f"extracted {len(records)} metadata records at the edge")
        richest = max(records[: len(documents)], key=lambda r: r["n_unique"])
        print(f"most lexically diverse document: {richest['n_unique']} unique "
              f"words, top={richest['top_words'][0]}")
        widest = records[len(documents):][0]
        print(f"first table: {widest['n_rows']} rows, "
              f"means={[round(m, 2) for m in widest['column_means']]}")

        # --- large raw data moves out of band (§4.6) --------------------------
        staging = TransferService(default_latency=0.05, default_bandwidth=1.25e8)
        staging.create_store("edge-filesystem")
        staging.create_store("archive")
        blob = ("\n".join(documents)).encode()
        ref = staging.store("edge-filesystem").put(blob, key="corpus.txt")
        archived = staging.transfer(ref, "archive")
        estimate = staging.estimate("edge-filesystem", "archive", ref.size)
        print(f"archived corpus out of band: {archived.size} bytes, "
              f"modelled transfer {estimate * 1000:.1f} ms "
              f"(payload path would have rejected anything > "
              f"{deployment.service.config.payload_limit // 1024} KiB)")


if __name__ == "__main__":
    main()
