"""DLHub-style ML inference-as-a-service (paper §2, §6).

Scenario: a model owner publishes an inference function packaged in a
container image, shares it with a collaboration group, and collaborators
invoke it — including batched inference and memoized repeat queries —
without any access to the model internals or the compute environment.

Run with::

    python examples/ml_inference_service.py
"""

from __future__ import annotations

import random

from repro import EndpointConfig, LocalDeployment
from repro.containers.spec import ContainerTechnology
from repro.workloads.functions import infer_digit


def synth_images(n: int, seed: int = 3) -> list[list[float]]:
    rng = random.Random(seed)
    images = []
    for _ in range(n):
        digit = rng.randrange(10)
        # noisy version of the synthetic centroid pattern for that digit
        image = [
            min(1.0, max(0.0, ((i * (digit + 3)) % 17) / 16.0 + rng.gauss(0, 0.05)))
            for i in range(64)
        ]
        images.append(image)
    return images


def main() -> None:
    with LocalDeployment() as deployment:
        owner = deployment.client("model-owner")
        physicist = deployment.client("physicist")

        # A GPU-ish endpoint with container support (the "DLHub backend").
        gpu_farm = deployment.create_endpoint(
            "gpu-farm", nodes=2,
            config=EndpointConfig(
                workers_per_node=2,
                system="ec2",
                container_technology=ContainerTechnology.DOCKER,
                scale_cold_start=0.001,   # compress the Docker cold start
                warm_ttl=600.0,
            ),
        )

        # --- publish the model --------------------------------------------
        group = deployment.auth.create_group(
            "digit-collab", members=[physicist.identity]
        )
        model_id = owner.register_function(
            infer_digit,
            name="mnist-nearest-centroid",
            container_image="docker:dlhub/mnist:1",
            allowed_groups=(group.group_id,),
            description="toy digit classifier published to the collaboration",
        )
        print(f"model published: {model_id} (shared with group 'digit-collab')")

        # --- a collaborator runs single and batched inference -----------------
        images = synth_images(16)
        single = physicist.submit(model_id, gpu_farm, images[0])
        print(f"single inference -> digit {single.result(timeout=60)['digit']}")

        batch = physicist.map(model_id, images, gpu_farm, batch_size=8)
        digits = [r["digit"] for r in batch.result(timeout=120)]
        print(f"batched inference over {len(images)} images -> {digits}")

        # --- memoized repeat queries (same input, cached result, §4.7) --------
        t1 = physicist.run(model_id, gpu_farm, images[0], memoize=True)
        physicist.wait_for(t1, timeout=60)
        t2 = physicist.run(model_id, gpu_farm, images[0], memoize=True)
        physicist.wait_for(t2, timeout=60)
        memo_hit = deployment.service.task_by_id(t2).memo_hit
        print(f"repeat query served from memoization cache: {memo_hit}")

        # --- an outsider is refused -------------------------------------------
        outsider = deployment.client("stranger")
        try:
            outsider.run(model_id, gpu_farm, images[0])
        except Exception as exc:
            print(f"unauthorized invocation rejected: {type(exc).__name__}")


if __name__ == "__main__":
    main()
