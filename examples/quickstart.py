"""Quickstart: register a function and run it on a local endpoint.

Mirrors the paper's Listing 1 flow: construct a client, register a
function, invoke it on an endpoint, and fetch the asynchronous result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EndpointConfig, LocalDeployment


def automo_preview(fname: str, start: int, end: int, step: int) -> str:
    """A stand-in for the paper's tomographic-preview function: the body
    declares its own imports (a funcX requirement) and returns the name
    of the 'preview' it produced."""
    import hashlib

    projection = [f"{fname}:{i}" for i in range(start, end, step)]
    digest = hashlib.sha256("".join(projection).encode()).hexdigest()[:8]
    return f"prev-{digest}.png"


def double(x):
    return 2 * x


def main() -> None:
    with LocalDeployment() as deployment:
        # --- the funcX service, a user, and an endpoint --------------------
        fc = deployment.client("researcher")
        endpoint_id = deployment.create_endpoint(
            "my-laptop",
            nodes=1,
            config=EndpointConfig(workers_per_node=4),
        )
        print(f"endpoint registered: {endpoint_id}")

        # --- Listing-1 style: register, run, get_result --------------------
        func_id = fc.register_function(automo_preview)
        task_id = fc.run(func_id, endpoint_id,
                         fname="test.h5", start=0, end=10, step=1)
        result = fc.wait_for(task_id, timeout=30)
        print(f"automo_preview -> {result}")

        # --- futures --------------------------------------------------------
        double_id = fc.register_function(double)
        future = fc.submit(double_id, endpoint_id, 21)
        print(f"double(21) -> {future.result(timeout=30)}")

        # --- user-driven batching (the map command, §4.7) --------------------
        mapped = fc.map(double_id, range(10), endpoint_id, batch_size=4)
        print(f"map(double, 0..9) -> {mapped.result(timeout=30)}")

        # --- remote errors come back as real exceptions ----------------------
        def fragile(x):
            return 1 // x

        fragile_id = fc.register_function(fragile)
        failing = fc.submit(fragile_id, endpoint_id, 0)
        try:
            failing.result(timeout=30)
        except ZeroDivisionError as exc:
            print(f"remote failure surfaced locally: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
