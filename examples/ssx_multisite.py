"""SSX stills processing across local and HPC endpoints (paper §2, §6).

"funcX allows SSX researchers to submit the same stills process function
to either a local endpoint to perform data validation or HPC resources
to process entire datasets and derive crystal structures."

Scenario: the *same registered function* counts bright spots in
crystallography images.  A handful of frames go to the local endpoint
for rapid quality control; the full dataset is staged out of band and
fanned across an HPC endpoint federation with least-loaded selection.

Run with::

    python examples/ssx_multisite.py
"""

from __future__ import annotations

import random

from repro import EndpointConfig, LocalDeployment
from repro.federation import FederatedExecutor, LeastLoadedEndpoints
from repro.staging import DataStore, register_store


def stills_process(frame_ref: dict, threshold: float = 0.92) -> dict:
    """Count bright spots in a staged detector frame (DIALS stand-in)."""
    from repro.staging.transfer import fetch_ref

    raw = fetch_ref(frame_ref)
    # frames are staged as byte arrays; each byte is one pixel intensity
    pixels = list(raw)
    cutoff = int(255 * threshold)
    spots = sum(1 for p in pixels if p >= cutoff)
    return {
        "key": frame_ref["key"],
        "n_pixels": len(pixels),
        "spots": spots,
        "hit": spots >= 5,
    }


def synth_frame(rng: random.Random, n_pixels: int = 2048, n_spots: int = 0) -> bytes:
    pixels = bytearray(rng.randrange(0, 180) for _ in range(n_pixels))
    for _ in range(n_spots):
        pixels[rng.randrange(n_pixels)] = 255
    return bytes(pixels)


def main() -> None:
    rng = random.Random(20)

    # Stage the experiment's frames on the beamline store (out of band).
    beamline = register_store(DataStore("beamline-fs"))
    frame_refs = []
    for i in range(24):
        n_spots = rng.choice([0, 0, 3, 8, 15])  # most frames are misses
        ref = beamline.put(synth_frame(rng, n_spots=n_spots), key=f"frame-{i:03d}")
        frame_refs.append(ref.as_argument())

    with LocalDeployment() as deployment:
        fc = deployment.client("crystallographer")

        local = deployment.create_endpoint(
            "beamline-workstation", nodes=1,
            config=EndpointConfig(workers_per_node=2),
        )
        hpc_a = deployment.create_endpoint("hpc-partition-a", nodes=1)
        hpc_b = deployment.create_endpoint("hpc-partition-b", nodes=1)

        stills_id = fc.register_function(stills_process)

        # --- quality control on the LOCAL endpoint (first 3 frames) ---------
        print("quality control at the beamline:")
        for ref in frame_refs[:3]:
            result = fc.submit(stills_id, local, ref).result(timeout=30)
            status = "HIT " if result["hit"] else "miss"
            print(f"  {result['key']}: {result['spots']:3d} spots [{status}]")

        # --- full dataset on the HPC federation ------------------------------
        federation = FederatedExecutor(
            fc, [hpc_a, hpc_b], policy=LeastLoadedEndpoints()
        )
        futures = [federation.submit(stills_id, ref) for ref in frame_refs]
        results = [f.result(timeout=60) for f in futures]
        hits = [r for r in results if r["hit"]]
        print(f"\nfull dataset on HPC: {len(results)} frames, "
              f"{len(hits)} hits ({100 * len(hits) / len(results):.0f}% hit rate)")
        print("work spread:", dict(federation.submissions))

        best = max(results, key=lambda r: r["spots"])
        print(f"strongest diffraction: {best['key']} with {best['spots']} spots")


if __name__ == "__main__":
    main()
