"""XPCS-style event-driven analysis pipeline (paper §2, §6).

Scenario: an area detector produces frame batches during an experiment
("requiring compute resources only when experiments are running").  Each
arriving batch triggers a correlation analysis dispatched to an HPC
endpoint whose capacity is *elastically provisioned* — the
ElasticityController grows managers through a provider while data flows
and releases them when the beamline goes quiet.  A usage ledger tracks
per-user consumption against the facility allocation (§6 challenge 3).

Run with::

    python examples/xpcs_streaming_pipeline.py
"""

from __future__ import annotations

import random
import time

from repro import EndpointConfig, LocalDeployment
from repro.accounting import UsageLedger
from repro.endpoint.elasticity import ElasticityController
from repro.providers import LocalProvider, ProviderLimits, SimpleScalingStrategy
from repro.workloads.functions import correlate_frames


def synth_frames(n_frames: int, n_pixels: int, seed: int) -> list[list[float]]:
    """Correlated detector frames: slowly-decaying speckle intensity."""
    rng = random.Random(seed)
    base = [rng.random() for _ in range(n_pixels)]
    frames = []
    for t in range(n_frames):
        decay = 0.9**t
        frames.append(
            [decay * b + (1 - decay) * rng.random() for b in base]
        )
    return frames


def main() -> None:
    with LocalDeployment() as deployment:
        scientist = deployment.client("beamline-scientist")

        # An endpoint that starts with ZERO nodes; the controller adds them.
        ep_id = deployment.create_endpoint(
            "hpc-xpcs", nodes=0,
            config=EndpointConfig(workers_per_node=2, heartbeat_period=0.1),
        )
        endpoint = deployment.endpoint(ep_id)
        controller = ElasticityController(
            endpoint,
            provider=LocalProvider(
                max_nodes=4,
                limits=ProviderLimits(min_blocks=0, max_blocks=3, init_blocks=0),
            ),
            strategy=SimpleScalingStrategy(
                max_units_per_image=3, min_units_per_image=0,
                tasks_per_unit=2, idle_grace=0.3,
            ),
            evaluation_period=0.05,
        )
        controller.start()

        ledger = UsageLedger()
        ledger.attach(deployment.service)
        ledger.set_allocation(ep_id, core_seconds=3600.0)

        corr_id = scientist.register_function(correlate_frames)

        # --- the experiment: frame batches arrive, analyses trigger ---------
        futures = []
        n_batches = 6
        for batch in range(n_batches):
            frames = synth_frames(n_frames=8, n_pixels=32, seed=batch)
            futures.append(
                scientist.submit(corr_id, ep_id, frames, max_lag=3)
            )
            print(f"frame batch {batch}: dispatched "
                  f"(managers up: {controller.active_managers})")
            time.sleep(0.1)

        for batch, future in enumerate(futures):
            g2 = future.result(timeout=60)
            print(f"batch {batch}: g2(1..3) = {[round(v, 3) for v in g2]}")
        print(f"\npeak managers provisioned: "
              f"{max(1, controller.scale_out_events)} scale-outs")

        # --- the beamline goes quiet; capacity is released -------------------
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and controller.active_managers > 0:
            time.sleep(0.1)
        print(f"idle managers reclaimed: {controller.active_managers} remain")
        controller.stop()

        # --- facility accounting ----------------------------------------------
        usage = ledger.user_usage(scientist.identity.identity_id)
        budget = ledger.allocation(ep_id)
        print(f"\naccounting: {usage.invocations} invocations, "
              f"{usage.execution_seconds:.3f} core-seconds billed, "
              f"{budget.remaining:.1f} of {budget.total_core_seconds:.0f} "
              "core-seconds remaining")
        ledger.detach()


if __name__ == "__main__":
    main()
