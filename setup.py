"""Setuptools shim enabling legacy editable installs in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
require building a wheel; ``setup.py develop`` does not)."""

from setuptools import setup

setup()
