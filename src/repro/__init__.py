"""repro — a reproduction of *funcX: A Federated Function Serving Fabric
for Science* (Chard et al., HPDC 2020).

The package builds the full system from scratch on two fabrics:

* a **live fabric** (:class:`repro.fabric.LocalDeployment`) where real
  worker threads execute real Python functions through the complete
  service → forwarder → agent → manager → worker pipeline; and
* a **simulated fabric** (:mod:`repro.sim`) — a discrete-event simulator
  driving the same protocol logic at supercomputer scale (131k workers).

Quickstart::

    from repro import LocalDeployment

    def double(x):
        return 2 * x

    with LocalDeployment() as dep:
        fc = dep.client()
        ep = dep.create_endpoint("laptop", nodes=1)
        fid = fc.register_function(double)
        task = fc.run(fid, ep, 21)
        print(fc.wait_for(task))   # -> 42
"""

from repro.accounting import UsageLedger
from repro.core.client import FuncXClient
from repro.core.executor import FuncXExecutor
from repro.core.futures import FuncXFuture
from repro.core.service import FuncXService, ServiceConfig
from repro.core.tasks import Task, TaskState
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.core.rest import RestApi
from repro.fabric import DeploymentTimings, LocalDeployment
from repro.federation import FederatedExecutor
from repro.metrics.registry import MetricsRegistry
from repro.monitoring import Dashboard, TaskEventLog
from repro.observability.trace import TraceContext, TraceStore
from repro.serialize import FuncXSerializer

__version__ = "1.0.0"

__all__ = [
    "FuncXClient",
    "FuncXExecutor",
    "FuncXFuture",
    "FuncXService",
    "ServiceConfig",
    "Task",
    "TaskState",
    "EndpointConfig",
    "Endpoint",
    "LocalDeployment",
    "DeploymentTimings",
    "FuncXSerializer",
    "RestApi",
    "FederatedExecutor",
    "UsageLedger",
    "TaskEventLog",
    "Dashboard",
    "MetricsRegistry",
    "TraceContext",
    "TraceStore",
    "__version__",
]
