"""Usage accounting (paper §2 "Billing" requirement, §6 challenge 3).

"The coarse allocation models employed by research infrastructure does
not map well to fine grain and short duration function usage, work is
needed to support accounting and billing models to track usage on a
per-user and per-function basis."

:class:`UsageLedger` implements that tracking: it subscribes to the
service's task-completion stream and aggregates invocations, execution
seconds, and failures per user, per function, and per endpoint — the
granularity a facility would bill against.  Charges can be converted to
core-seconds against an allocation budget.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.core.service import FuncXService
from repro.core.tasks import TaskState


@dataclass
class UsageRecord:
    """Aggregated usage for one accounting key."""

    invocations: int = 0
    failures: int = 0
    memo_hits: int = 0
    execution_seconds: float = 0.0

    def charge(self, other_execution: float, failed: bool, memo: bool) -> None:
        self.invocations += 1
        if failed:
            self.failures += 1
        if memo:
            self.memo_hits += 1
        else:
            self.execution_seconds += other_execution

    @property
    def success_rate(self) -> float:
        if self.invocations == 0:
            return 1.0
        return 1.0 - self.failures / self.invocations


@dataclass
class AllocationBudget:
    """A facility allocation in core-seconds."""

    total_core_seconds: float
    used_core_seconds: float = 0.0

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_core_seconds - self.used_core_seconds)

    @property
    def exhausted(self) -> bool:
        return self.used_core_seconds >= self.total_core_seconds


class UsageLedger:
    """Per-user / per-function / per-endpoint usage tracking.

    Attach to a live service with :meth:`attach`; every terminal task is
    charged automatically.  The simulated fabric can charge records
    directly via :meth:`charge`.

    Parameters
    ----------
    cores_per_task:
        Cores a task occupies while executing (workers are single-core in
        both the paper's deployments and this reproduction).
    """

    def __init__(self, cores_per_task: float = 1.0):
        self.cores_per_task = cores_per_task
        self._lock = threading.Lock()
        self.by_user: dict[str, UsageRecord] = {}
        self.by_function: dict[str, UsageRecord] = {}
        self.by_endpoint: dict[str, UsageRecord] = {}
        self._budgets: dict[str, AllocationBudget] = {}
        self._subscription: int | None = None
        self._service: FuncXService | None = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, service: FuncXService) -> None:
        """Start charging every terminal task of ``service``."""
        if self._service is not None:
            raise RuntimeError("ledger already attached")
        self._service = service

        def on_task_event(topic: str, state: Any) -> None:
            if state not in (TaskState.SUCCESS.value, TaskState.FAILED.value):
                return
            task_id = topic.split(".", 1)[1]
            try:
                task = service.task_by_id(task_id)
            except Exception:
                return
            self.charge(
                user_id=task.owner_id,
                function_id=task.function_id,
                endpoint_id=task.endpoint_id,
                execution_seconds=float(task.metadata.get("execution_time", 0.0)),
                failed=(state == TaskState.FAILED.value),
                memo_hit=task.memo_hit,
            )

        self._subscription = service.pubsub.subscribe_prefix("task.", on_task_event)

    def detach(self) -> None:
        if self._service is not None and self._subscription is not None:
            self._service.pubsub.unsubscribe(self._subscription)
        self._service = None
        self._subscription = None

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(
        self,
        user_id: str,
        function_id: str,
        endpoint_id: str,
        execution_seconds: float,
        failed: bool = False,
        memo_hit: bool = False,
    ) -> None:
        with self._lock:
            for table, key in (
                (self.by_user, user_id),
                (self.by_function, function_id),
                (self.by_endpoint, endpoint_id),
            ):
                table.setdefault(key, UsageRecord()).charge(
                    execution_seconds, failed, memo_hit
                )
            budget = self._budgets.get(endpoint_id)
            if budget is not None and not memo_hit:
                budget.used_core_seconds += execution_seconds * self.cores_per_task

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------
    def set_allocation(self, endpoint_id: str, core_seconds: float) -> AllocationBudget:
        budget = AllocationBudget(total_core_seconds=core_seconds)
        with self._lock:
            self._budgets[endpoint_id] = budget
        return budget

    def allocation(self, endpoint_id: str) -> AllocationBudget | None:
        with self._lock:
            return self._budgets.get(endpoint_id)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def user_usage(self, user_id: str) -> UsageRecord:
        with self._lock:
            return self.by_user.get(user_id, UsageRecord())

    def function_usage(self, function_id: str) -> UsageRecord:
        with self._lock:
            return self.by_function.get(function_id, UsageRecord())

    def endpoint_usage(self, endpoint_id: str) -> UsageRecord:
        with self._lock:
            return self.by_endpoint.get(endpoint_id, UsageRecord())

    def top_users(self, n: int = 10) -> list[tuple[str, UsageRecord]]:
        """Heaviest users by execution seconds."""
        with self._lock:
            ranked = sorted(
                self.by_user.items(),
                key=lambda kv: kv[1].execution_seconds,
                reverse=True,
            )
        return ranked[:n]

    def statement(self) -> str:
        """A human-readable usage statement."""
        lines = ["usage statement", "=" * 60]
        with self._lock:
            for title, table in (
                ("per user", self.by_user),
                ("per function", self.by_function),
                ("per endpoint", self.by_endpoint),
            ):
                lines.append(f"-- {title} --")
                for key, record in sorted(table.items()):
                    lines.append(
                        f"  {key[:16]:<18s} invocations={record.invocations:<6d} "
                        f"exec={record.execution_seconds:9.3f}s "
                        f"failures={record.failures} memo_hits={record.memo_hits}"
                    )
        return "\n".join(lines)
