"""repro.analysis: a repo-specific static analyzer for the fabric.

The chaos harness (PR 1) and dispatch hardening (PR 2) kept re-finding
the same two bug classes by hand: shared state touched outside its lock
and nondeterminism leaking past the injectable clock/RNG boundary, which
silently breaks byte-for-byte chaos replay.  This package makes both
classes unmergeable with AST-based checks (stdlib :mod:`ast` only); PR 4
added a statement-level CFG + forward-dataflow engine (:mod:`cfg`,
:mod:`dataflow`) for the flow-sensitive checks:

``guarded-by``
    Attributes annotated ``# guarded-by: self._lock`` (or declared in a
    per-class ``_GUARDED`` registry) may only be touched inside a
    ``with self._lock:`` scope of that class.
``determinism``
    Direct ``time.time()`` / ``time.monotonic()`` / ``time.sleep()`` /
    ``random.*`` / ``datetime.now()`` calls are forbidden in
    ``repro.core``, ``repro.endpoint``, ``repro.transport``,
    ``repro.store`` and ``repro.chaos`` — those modules must route
    through the injectable clock/RNG.
``wire-compat``
    Every ``transport.messages`` dataclass field must be a
    serializer-safe type, and every field added after the seed must
    carry a default so old artifacts keep replaying.
``blocking-under-lock``
    No sleep, channel send/recv, or queue operation while holding a
    lock.
``clock-domain``
    Values from clocks marked ``# clock-domain: monotonic`` and
    ``# clock-domain: wall`` must never meet in the same arithmetic.
``lease-ack``
    Every ``ReliableQueue.lease``/``lease_many`` value reaches
    ``ack``/``nack`` on every path (escape to field/return/call waives).
``span-lifecycle``
    Every ``TraceContext`` span begun is finished on every path (or
    somewhere in the owning class for cross-method pairs).
``lock-order``
    Cross-file: the global lock-acquisition-order graph (lexical nesting
    plus call-through edges) must stay acyclic.  Its runtime twin is
    :mod:`repro.analysis.sanitizer` (``SanitizedLock``), opt-in via
    ``LocalDeployment(sanitize_locks=True)``.
``threadroles``
    Cross-file: infer which thread *roles* (forwarder-loop, agent-loop,
    worker, ...) can execute each method from the ``threading.Thread``
    spawn sites, then flag attributes written from ≥ 2 roles with no
    common lock and no ``guarded-by`` annotation (and, as info-level
    findings, annotations whose attribute only one role ever touches).
    Waivers: ``# thread-confined: <role>`` and ``# handoff``.  Runtime
    twin: :class:`repro.analysis.sanitizer.AccessRecorder`.

See ``docs/ANALYSIS.md`` for the annotation syntax, baseline workflow
(``repro lint --update-baseline``) and how to add a check.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.lockorder import LockOrderGraph, extract_lock_graph
from repro.analysis.runner import (
    ALL_CHECKS,
    GLOBAL_CHECKS,
    AnalysisReport,
    analyze_paths,
    analyze_source,
    run_analysis,
)
from repro.analysis.sanitizer import (
    AccessRecorder,
    LockOrderRecorder,
    SanitizedLock,
    sanitize_access,
    sanitize_lock,
)
from repro.analysis.threadroles import (
    ROLES,
    RoleReport,
    build_role_report,
    canonical_role,
    role_for_thread,
)

__all__ = [
    "ALL_CHECKS",
    "GLOBAL_CHECKS",
    "AccessRecorder",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LockOrderGraph",
    "LockOrderRecorder",
    "ROLES",
    "RoleReport",
    "SanitizedLock",
    "analyze_paths",
    "analyze_source",
    "build_role_report",
    "canonical_role",
    "extract_lock_graph",
    "role_for_thread",
    "run_analysis",
    "sanitize_access",
    "sanitize_lock",
]
