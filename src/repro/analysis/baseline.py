"""Baseline: grandfathered findings that do not fail the build.

The committed ``analysis-baseline.json`` records the fingerprint of each
pre-existing finding (see :meth:`Finding.fingerprint` — line numbers are
deliberately not part of the identity, so unrelated edits that shift
code around do not invalidate entries).  ``repro lint`` then reports:

* **new** findings — present in the run, absent from the baseline;
* **suppressed** findings — matched by a baseline entry;
* **stale** entries — baseline entries no longer matched by any finding
  (the debt was paid; ``--update-baseline`` prunes them).

A fingerprint may legitimately match several findings (two identical
offending lines in the same function); each entry carries the count it
was recorded with, and extra occurrences beyond that count surface as
new findings rather than riding along silently.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, sort_findings

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (identity + human context)."""

    fingerprint: str
    check: str
    path: str
    symbol: str
    line_text: str
    count: int = 1

    def to_record(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "check": self.check,
            "path": self.path,
            "symbol": self.symbol,
            "line_text": self.line_text,
            "count": self.count,
        }

    @classmethod
    def from_record(cls, record: dict) -> "BaselineEntry":
        return cls(
            fingerprint=record["fingerprint"],
            check=record["check"],
            path=record["path"],
            symbol=record.get("symbol", ""),
            line_text=record.get("line_text", ""),
            count=int(record.get("count", 1)),
        )

    @classmethod
    def from_finding(cls, finding: Finding, count: int = 1) -> "BaselineEntry":
        return cls(
            fingerprint=finding.fingerprint(),
            check=finding.check,
            path=finding.path,
            symbol=finding.symbol,
            line_text=finding.line_text,
            count=count,
        )


@dataclass
class Baseline:
    """The set of grandfathered findings, keyed by fingerprint."""

    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: Counter[str] = Counter()
        samples: dict[str, Finding] = {}
        for finding in findings:
            fp = finding.fingerprint()
            counts[fp] += 1
            samples.setdefault(fp, finding)
        entries = {
            fp: BaselineEntry.from_finding(samples[fp], count=counts[fp])
            for fp in counts
        }
        return cls(entries=entries)

    # -- persistence -----------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = {
            record["fingerprint"]: BaselineEntry.from_record(record)
            for record in data.get("entries", [])
        }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        records = sorted(
            (entry.to_record() for entry in self.entries.values()),
            key=lambda r: (r["path"], r["check"], r["symbol"], r["fingerprint"]),
        )
        payload = {"version": BASELINE_VERSION, "entries": records}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- matching --------------------------------------------------------
    def apply(self, findings: list[Finding]) -> tuple[
            list[Finding], list[Finding], list[BaselineEntry]]:
        """Split ``findings`` into (new, suppressed) and report stale entries.

        Occurrences of a fingerprint beyond its recorded ``count`` are
        treated as new; an entry matched by zero findings is stale.
        """
        budget = {fp: entry.count for fp, entry in self.entries.items()}
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in sort_findings(findings):
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = [
            self.entries[fp]
            for fp, remaining in budget.items()
            if remaining == self.entries[fp].count  # never matched at all
        ]
        stale.sort(key=lambda e: (e.path, e.check, e.fingerprint))
        return new, suppressed, stale
