"""Intraprocedural control-flow graphs over ``ast`` function bodies.

The lexical checks in :mod:`repro.analysis.checks` reason per statement
or per ``with`` scope; the flow-sensitive checks (lease-ack discipline,
span lifecycle) need to know *every path* from a function's entry to its
exit.  This module builds a small statement-level CFG:

* one node per simple statement (plus synthetic ENTRY and EXIT nodes);
* branch edges labelled with the test expression and the truth value
  taken, so analyses can refine facts on e.g. the ``if lease is None``
  edge;
* loops with back edges, ``break``/``continue`` routed to the loop exit
  and header;
* ``return``/``raise`` edges to EXIT;
* ``try``/``except``/``finally`` modelled conservatively: every
  statement in a ``try`` body gets an *exceptional* edge to each
  handler (and to the ``finally`` body when present).  Exceptional
  edges carry the facts holding *before* the raising statement, since
  the exception may fire mid-statement.

Deliberate approximations (documented in docs/ANALYSIS.md): implicit
exceptions outside ``try`` blocks are not modelled (only explicit
``raise`` and ``try`` bodies create exceptional flow), and a ``raise``
inside an ``except`` handler goes straight to EXIT without re-entering
``finally``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
JOIN = "join"


@dataclass
class Node:
    """A CFG node: a statement, or the synthetic entry/exit."""

    index: int
    kind: str
    stmt: Optional[ast.AST] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True)
class Edge:
    """Directed edge ``src -> dst``.

    ``cond``/``branch`` label conditional edges (the test expression and
    whether this edge is the true or false outcome).  ``exceptional``
    marks edges that model an exception escaping a statement; dataflow
    propagates the *incoming* facts of ``src`` along them.
    """

    src: int
    dst: int
    cond: Optional[ast.expr] = None
    branch: Optional[bool] = None
    exceptional: bool = False


@dataclass
class CFG:
    nodes: List[Node] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def successors(self, index: int) -> Iterator[Edge]:
        for edge in self.edges:
            if edge.src == index:
                yield edge

    def predecessors(self, index: int) -> Iterator[Edge]:
        for edge in self.edges:
            if edge.dst == index:
                yield edge


# A "frontier" is the set of dangling exits of the region built so far:
# (node index, cond, branch) triples waiting to be wired to the next
# statement's node.
_Frontier = List[Tuple[int, Optional[ast.expr], Optional[bool]]]


class _LoopContext:
    def __init__(self, header: int) -> None:
        self.header = header
        self.breaks: _Frontier = []


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._entry = self._new_node(ENTRY)
        self._exit = self._new_node(EXIT)
        self.cfg.entry = self._entry.index
        self.cfg.exit = self._exit.index
        self._loops: List[_LoopContext] = []
        # Stack of handler-entry node lists for enclosing try blocks:
        # statements built inside a try body add exceptional edges to
        # each of these targets.
        self._exception_targets: List[List[int]] = []

    def _new_node(self, kind: str, stmt: Optional[ast.AST] = None) -> Node:
        node = Node(index=len(self.cfg.nodes), kind=kind, stmt=stmt)
        self.cfg.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int, cond: Optional[ast.expr] = None,
              branch: Optional[bool] = None, exceptional: bool = False) -> None:
        self.cfg.edges.append(Edge(src, dst, cond, branch, exceptional))

    def _connect(self, frontier: _Frontier, dst: int) -> None:
        for src, cond, branch in frontier:
            self._edge(src, dst, cond, branch)

    def _stmt_node(self, stmt: ast.AST, frontier: _Frontier) -> Node:
        node = self._new_node(STMT, stmt)
        self._connect(frontier, node.index)
        for targets in self._exception_targets:
            for target in targets:
                self._edge(node.index, target, exceptional=True)
        return node

    def build(self, func: ast.AST) -> CFG:
        body = getattr(func, "body", [])
        frontier = self._body(body, [(self._entry.index, None, None)])
        self._connect(frontier, self._exit.index)
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        node = self._stmt_node(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(node.index, self._exit.index)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1].breaks.append((node.index, None, None))
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(node.index, self._loops[-1].header)
            return []
        return [(node.index, None, None)]

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        test = self._stmt_node(stmt, frontier)
        out = self._body(stmt.body, [(test.index, stmt.test, True)])
        if stmt.orelse:
            out += self._body(stmt.orelse, [(test.index, stmt.test, False)])
        else:
            out.append((test.index, stmt.test, False))
        return out

    def _while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        test = self._stmt_node(stmt, frontier)
        loop = _LoopContext(test.index)
        self._loops.append(loop)
        body_out = self._body(stmt.body, [(test.index, stmt.test, True)])
        self._loops.pop()
        self._connect(body_out, test.index)
        out: _Frontier = list(loop.breaks)
        if not _is_constant_true(stmt.test):
            out.append((test.index, stmt.test, False))
        if stmt.orelse:
            out = self._body(stmt.orelse, out) + list(loop.breaks)
        return out

    def _for(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        # The For node itself is passed as the edge condition so analyses
        # can model the iteration binding (true edge: the target holds an
        # element; false edge: the iterable is exhausted).
        head = self._stmt_node(stmt, frontier)
        loop = _LoopContext(head.index)
        self._loops.append(loop)
        body_out = self._body(stmt.body, [(head.index, stmt, True)])
        self._loops.pop()
        self._connect(body_out, head.index)
        out: _Frontier = [(head.index, stmt, False)] + list(loop.breaks)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            out = self._body(orelse, [(head.index, stmt, False)]) + list(loop.breaks)
        return out

    def _with(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        head = self._stmt_node(stmt, frontier)
        return self._body(stmt.body, [(head.index, None, None)])

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        handler_entries: List[int] = []
        handler_nodes: List[Node] = []
        for handler in stmt.handlers:
            node = self._new_node(STMT, handler)
            handler_entries.append(node.index)
            handler_nodes.append(node)

        final_join: Optional[Node] = None
        if stmt.finalbody and not stmt.handlers:
            # try/finally with no handlers: an exception in the body
            # still runs finally, then propagates.  Exceptional edges
            # target a synthetic join in front of the finally body.
            final_join = self._new_node(JOIN)

        targets = handler_entries if handler_entries else (
            [final_join.index] if final_join is not None else [])
        self._exception_targets.append(targets)
        body_out = self._body(stmt.body, frontier)
        self._exception_targets.pop()

        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)

        out: _Frontier = list(body_out)
        for node, handler in zip(handler_nodes, stmt.handlers):
            out += self._body(handler.body, [(node.index, None, None)])
        if stmt.finalbody:
            if final_join is not None:
                self._connect(out, final_join.index)
                out = [(final_join.index, None, None)]
            out = self._body(stmt.finalbody, out)
            if final_join is not None:
                # After an unhandled exception runs the finally body,
                # it keeps propagating: the finally exit also reaches
                # function EXIT.
                self._connect(out, self._exit.index)
        return out

    def _match(self, stmt: ast.Match, frontier: _Frontier) -> _Frontier:
        head = self._stmt_node(stmt, frontier)
        out: _Frontier = [(head.index, None, None)]
        for case in stmt.cases:
            out += self._body(case.body, [(head.index, None, None)])
        return out


def _is_constant_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is True


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG for a FunctionDef/AsyncFunctionDef (or any node
    with a ``body`` of statements)."""
    return _Builder().build(func)


def header_parts(stmt: ast.AST) -> List[ast.AST]:
    """The sub-expressions that execute *at* a statement's CFG node.

    Compound statements (``if``/``while``/``for``/``with``/``try``) keep
    their own AST node in the CFG but their bodies become separate
    nodes; a dataflow transfer must therefore only look at the header
    (test, iterable, context managers) or it would double-count the
    body's effects at the header node.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]
