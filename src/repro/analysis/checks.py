"""The fabric checks: five lexical, two flow-sensitive.

Each per-file check is a function ``(SourceFile) -> Iterator[Finding]``;
the runner composes them and applies per-line waivers and the baseline.
The flow-sensitive checks (lease-ack, span-lifecycle) run a forward
dataflow over the CFGs built by :mod:`repro.analysis.cfg`; the global
lock-order check lives in :mod:`repro.analysis.lockorder` because it
needs every source file at once.  Check ids are stable — they appear in
baselines and waiver comments.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg, header_parts
from repro.analysis.dataflow import Facts, ForwardAnalysis, run_forward
from repro.analysis.findings import Finding
from repro.analysis.lockscope import (
    ClassLockInfo,
    iter_classes,
    visit_with_lock_state,
)
from repro.analysis.protocols import LEASE_PROTOCOL, run_value_protocol
from repro.analysis.source import SourceFile, dotted_name, enclosing_symbol

GUARDED_BY = "guarded-by"
DETERMINISM = "determinism"
WIRE_COMPAT = "wire-compat"
BLOCKING_UNDER_LOCK = "blocking-under-lock"
CLOCK_DOMAIN = "clock-domain"
LEASE_ACK = "lease-ack"
SPAN_LIFECYCLE = "span-lifecycle"

#: Packages whose modules must route time/randomness through the
#: injectable clock/RNG boundary (repro.workloads and benchmarks are
#: exempt: they model user code, not fabric).
DETERMINISM_SCOPE = (
    "repro.core",
    "repro.endpoint",
    "repro.transport",
    "repro.store",
    "repro.chaos",
)

WIRE_MODULE = "repro.transport.messages"


def _finding(source: SourceFile, check: str, node: ast.AST, message: str,
             hint: str) -> Finding:
    lineno = getattr(node, "lineno", 1)
    return Finding(
        check=check,
        path=source.path,
        line=lineno,
        col=getattr(node, "col_offset", 0),
        symbol=enclosing_symbol(source.tree, lineno),
        message=message,
        hint=hint,
        line_text=source.line_text(lineno),
    )


# ======================================================================
# 1. guarded-by
# ======================================================================
def check_guarded_by(source: SourceFile) -> Iterator[Finding]:
    """Guarded attributes may only be touched under their declared lock.

    Scope is the declaring class: ``self.<attr>`` accesses in any method
    (or closure defined inside one) must sit inside a ``with
    self.<lock>:`` block, a held-marker method, or ``__init__`` (the
    object is not yet shared during construction).
    """
    for info in iter_classes(source):
        if not info.guards:
            continue
        for method in _direct_methods(info.node):
            if method.name == "__init__":
                continue
            yield from _scan_method_guards(source, info, method)


def _direct_methods(node: ast.ClassDef) -> list[ast.FunctionDef]:
    return [s for s in node.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _scan_method_guards(source: SourceFile, info: ClassLockInfo,
                        method: ast.FunctionDef) -> Iterator[Finding]:
    findings: list[Finding] = []

    def on_node(node: ast.AST, held: frozenset[str]) -> None:
        if not (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in info.guards):
            return
        lock = info.guards[node.attr]
        if lock in held:
            return
        qual = f"{info.qualname}.{method.name}"
        findings.append(Finding(
            check=GUARDED_BY,
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
            symbol=qual,
            message=(f"self.{node.attr} is guarded by self.{lock} but accessed "
                     f"without holding it"),
            hint=(f"wrap the access in `with self.{lock}:` (or mark the method "
                  f"`# guarded-by: self.{lock}` if every caller already holds it)"),
            line_text=source.line_text(node.lineno),
        ))

    initial = info.held_markers.get(method, frozenset())
    visit_with_lock_state(
        method, initial, info.lock_names, on_node,
        nested_initial=lambda d: info.held_markers.get(d, frozenset()),
    )
    yield from findings


# ======================================================================
# 2. determinism boundary
# ======================================================================
_TIME_FORBIDDEN = {
    "time", "monotonic", "sleep", "perf_counter", "process_time",
    "thread_time", "monotonic_ns", "time_ns", "perf_counter_ns",
}
_RNG_CONSTRUCTORS = {"Random", "SystemRandom"}
_DATETIME_FORBIDDEN = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_DETERMINISM_HINT = (
    "route through the injectable clock/RNG (self._clock(), self._sleep(...), "
    "a seeded random.Random instance); a bare reference as a constructor "
    "default (`clock or time.monotonic`) is the allowed boundary"
)


def in_determinism_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in DETERMINISM_SCOPE)


def check_determinism(source: SourceFile) -> Iterator[Finding]:
    """No direct wall-clock/global-RNG *calls* inside the fabric packages.

    References (``clock or time.monotonic``) are fine — that is exactly
    how the boundary defaults are declared; only calls execute outside
    the injectable path and diverge between a run and its chaos replay.
    """
    if not in_determinism_scope(source.module):
        return
    aliases = _import_aliases(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        canonical = _canonical_call(node.func, aliases)
        if canonical is None:
            continue
        message = _determinism_violation(canonical)
        if message is not None:
            yield _finding(source, DETERMINISM, node, message, _DETERMINISM_HINT)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → canonical dotted origin, for time/random/datetime."""
    interesting = {"time", "random", "datetime"}
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in interesting:
                    aliases[alias.asname or root] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in interesting and node.level == 0:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")
    return aliases


def _canonical_call(func: ast.expr, aliases: dict[str, str]) -> str | None:
    dotted = dotted_name(func)
    if dotted is None:
        return None
    first, _, rest = dotted.partition(".")
    origin = aliases.get(first)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def _determinism_violation(canonical: str) -> str | None:
    parts = canonical.split(".")
    if parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FORBIDDEN:
        return (f"direct call to time.{parts[1]}() bypasses the injectable "
                f"clock and breaks chaos replay")
    if parts[0] == "random" and len(parts) == 2:
        if parts[1] in _RNG_CONSTRUCTORS:
            return None  # constructing a seeded RNG *is* the boundary
        return (f"random.{parts[1]}() uses the global RNG; seed a "
                f"random.Random(seed) at the boundary instead")
    if canonical in _DATETIME_FORBIDDEN or (
            parts[0] == "datetime"
            and parts[-1] in {"now", "utcnow", "today"}):
        return (f"{canonical}() reads the wall clock; timestamps must come "
                f"from the injectable clock")
    return None


# ======================================================================
# 3. wire-compat
# ======================================================================
_WIRE_SAFE_NAMES = {
    "str", "bytes", "bool", "int", "float", "None", "Any", "bytearray",
}
#: Non-primitive types the serializer is pinned to round-trip (the PR 2
#: hypothesis suites cover TraceContext payloads explicitly; the batch
#: envelopes nest the task/result dataclasses the same suites round-trip).
_WIRE_SAFE_EXTRA = {"TraceContext", "TaskMessage", "ResultMessage"}
_WIRE_SAFE_CONTAINERS = {
    "tuple", "Tuple", "dict", "Dict", "list", "List", "frozenset",
    "FrozenSet", "set", "Set", "Optional", "Union",
}
#: Fields that predate the wire-compat rule and may stay default-free.
_SEED_REQUIRED_FIELDS = {("Message", "sender")}

_WIRE_TYPE_HINT = (
    "wire messages must round-trip the serializer: use str/bytes/bool/int/"
    "float/None, containers of those, or a registered wire-safe type "
    "(TraceContext); move richer objects into serialized buffers"
)
_WIRE_DEFAULT_HINT = (
    "fields added after the seed need a default so messages recorded by "
    "older versions (chaos artifacts, queued tasks) still construct"
)


def check_wire_compat(source: SourceFile) -> Iterator[Finding]:
    """Wire-message dataclasses stay replayable across versions."""
    if source.module != WIRE_MODULE:
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            if _is_classvar(stmt.annotation):
                continue
            field_name = stmt.target.id
            if not _wire_safe_annotation(stmt.annotation):
                yield _finding(
                    source, WIRE_COMPAT, stmt,
                    f"{node.name}.{field_name} has a non-serializer-safe "
                    f"type annotation "
                    f"({ast.unparse(stmt.annotation)})",
                    _WIRE_TYPE_HINT,
                )
            if stmt.value is None and (node.name, field_name) not in _SEED_REQUIRED_FIELDS:
                yield _finding(
                    source, WIRE_COMPAT, stmt,
                    f"{node.name}.{field_name} was added without a default",
                    _WIRE_DEFAULT_HINT,
                )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target) or ""
        if name.split(".")[-1] == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted_name(target) or ""
    return name.split(".")[-1] == "ClassVar"


def _wire_safe_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Constant):
        if annotation.value is None or annotation.value is Ellipsis:
            return True
        if isinstance(annotation.value, str):  # quoted forward reference
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                return False
            return _wire_safe_annotation(parsed.body)
        return False
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        name = (dotted_name(annotation) or "").split(".")[-1]
        return (name in _WIRE_SAFE_NAMES or name in _WIRE_SAFE_EXTRA
                or name in _WIRE_SAFE_CONTAINERS)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return (_wire_safe_annotation(annotation.left)
                and _wire_safe_annotation(annotation.right))
    if isinstance(annotation, ast.Subscript):
        if not _wire_safe_annotation(annotation.value):
            return False
        elems = (annotation.slice.elts
                 if isinstance(annotation.slice, ast.Tuple)
                 else [annotation.slice])
        return all(_wire_safe_annotation(e) for e in elems)
    return False


# ======================================================================
# 4. blocking-under-lock
# ======================================================================
_CHANNEL_OPS = {"send", "recv", "recv_all_ready"}
_QUEUE_OPS = {
    "put", "put_many", "put_nowait", "get_nowait", "lease", "lease_many",
    "ack", "nack", "nack_all", "requeue_expired",
}
_BLOCKING_HINT = (
    "take a snapshot under the lock, release it, then perform the blocking "
    "call on the copied state (see Forwarder._requeue_outstanding for the "
    "pattern)"
)


def check_blocking_under_lock(source: SourceFile) -> Iterator[Finding]:
    """No sleep, channel send/recv, or queue operation under a lock.

    Lock scopes come from the same inference as ``guarded-by``; calls on
    the lock object itself (``self._lock.wait()`` releases it) are fine.
    ``dict.get`` is deliberately not treated as a queue op — only the
    unambiguous queue verbs are.
    """
    for info in iter_classes(source):
        for method in _direct_methods(info.node):
            initial = info.held_markers.get(method, frozenset())
            yield from _scan_blocking(source, info.qualname, method, initial,
                                      info.lock_names, info)
    for func in _module_functions(source.tree):
        yield from _scan_blocking(source, func.name, func, frozenset(),
                                  frozenset(), None)


def _module_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    return [s for s in tree.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _scan_blocking(source: SourceFile, qualname: str, func: ast.FunctionDef,
                   initial: frozenset[str], known_locks: frozenset[str],
                   info: ClassLockInfo | None) -> Iterator[Finding]:
    findings: list[Finding] = []

    def on_node(node: ast.AST, held: frozenset[str]) -> None:
        if not held or not isinstance(node, ast.Call):
            return
        label = _blocking_call(node, known_locks)
        if label is None:
            return
        locks = ", ".join(sorted(f"self.{l}" for l in held))
        symbol = qualname if qualname.endswith(func.name) else f"{qualname}.{func.name}"
        findings.append(Finding(
            check=BLOCKING_UNDER_LOCK,
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
            symbol=symbol,
            message=f"{label} while holding {locks}",
            hint=_BLOCKING_HINT,
            line_text=source.line_text(node.lineno),
        ))

    nested = (lambda d: info.held_markers.get(d, frozenset())) if info else None
    visit_with_lock_state(func, initial, known_locks, on_node,
                          nested_initial=nested)
    yield from findings


def _blocking_call(node: ast.Call, known_locks: frozenset[str]) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return "sleep()" if func.id == "sleep" else None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = dotted_name(func.value)
    if receiver is not None:
        last = receiver.split(".")[-1]
        lowered = last.lower()
        if "lock" in lowered or "cond" in lowered or last in known_locks:
            return None  # Condition.wait/notify release or need the lock
    attr = func.attr
    if attr == "sleep" or (isinstance(func.value, ast.Name)
                           and func.value.id in ("time", "_time")
                           and attr == "sleep"):
        return f"{receiver or '<expr>'}.sleep()"
    if attr in _CHANNEL_OPS:
        return f"channel operation {receiver or '<expr>'}.{attr}()"
    if attr in _QUEUE_OPS:
        return f"queue operation {receiver or '<expr>'}.{attr}()"
    if attr == "wait":
        return f"blocking wait {receiver or '<expr>'}.wait()"
    return None


# ======================================================================
# 5. clock-domain
# ======================================================================
_CLOCK_DOMAIN_HINT = (
    "deadlines must be computed within one clock domain; convert at the "
    "boundary (or re-mark the source with `# clock-domain: ...` if the "
    "declaration is wrong)"
)


def check_clock_domain(source: SourceFile) -> Iterator[Finding]:
    """Arithmetic must never mix monotonic- and wall-domain clocks.

    Domains are declared with ``# clock-domain: monotonic|wall`` trailing
    comments on clock (or derived-deadline) assignments.  The check flags
    any ``+``/``-`` expression or comparison whose operands draw from
    different declared domains.
    """
    if not source.clock_domains:
        return
    domains = _declared_domains(source)
    if not domains:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            sides = [_subtree_domains(node.left, domains),
                     _subtree_domains(node.right, domains)]
        elif isinstance(node, ast.Compare):
            sides = [_subtree_domains(node.left, domains)]
            sides.extend(_subtree_domains(c, domains) for c in node.comparators)
        else:
            continue
        seen = [s for s in sides if s]
        merged = set().union(*seen) if seen else set()
        if len(merged) > 1 and any(len(s) < len(merged) for s in seen):
            yield _finding(
                source, CLOCK_DOMAIN, node,
                f"expression mixes clock domains {sorted(merged)}",
                _CLOCK_DOMAIN_HINT,
            )


def _declared_domains(source: SourceFile) -> dict[tuple[str, str], str]:
    """(kind, name) → domain, from marker comments on assignments."""
    declared: dict[tuple[str, str], str] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        domain = source.clock_domains.get(node.lineno)
        if domain is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                declared[("attr", target.attr)] = domain
            elif isinstance(target, ast.Name):
                declared[("name", target.id)] = domain
    return declared


def _subtree_domains(node: ast.expr, declared: dict[tuple[str, str], str]) -> set[str]:
    found: set[str] = set()
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"):
            domain = declared.get(("attr", sub.attr))
        elif isinstance(sub, ast.Name):
            domain = declared.get(("name", sub.id))
        else:
            continue
        if domain is not None:
            found.add(domain)
    return found


# ======================================================================
# 6. lease-ack discipline (flow-sensitive)
# ======================================================================
# The analysis itself lives in repro.analysis.protocols: lease-ack was
# the original hand-written typestate check (PR 4) and is now one
# declarative ProtocolSpec on the shared engine — same facts, same
# waivers, same findings.
_OPEN = "open"
_DONE = "done"


def check_lease_ack(source: SourceFile) -> Iterator[Finding]:
    """Every lease obtained from ``ReliableQueue.lease``/``lease_many``
    must reach ``ack``/``nack`` on *every* path to function exit.

    The at-least-once queue re-delivers an expired lease eventually, but
    a leaked lease stalls its task for a full ``lease_timeout`` — the
    "lost task / stuck executor" incident class.  Disposal is any of:
    an ``ack``/``nack`` call, passing the lease to *any* call (handoff),
    returning or yielding it, or storing it into a field or container
    (escape — the caller or a reclaim loop now owns it).  ``if lease is
    None:`` / ``if not leases:`` branches and drained loop collections
    are understood flow-sensitively.
    """
    yield from run_value_protocol(source, LEASE_PROTOCOL)


def _all_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


# ======================================================================
# 7. span lifecycle (flow-sensitive)
# ======================================================================
_SPAN_HINT = (
    "every begun span must be finished on all paths — call .end(name) "
    "before each return/raise (a finally block is the usual shape), or "
    "use .record(name, ...) for one-shot stages; cross-method pairs are "
    "fine as long as the class ends what it begins"
)


def check_span_lifecycle(source: SourceFile) -> Iterator[Finding]:
    """Every ``TraceContext`` span begun must be finished.

    Within one function that both begins and ends a span name, the end
    must be reachable on *every* path (flow-sensitive).  A span begun in
    one method and ended in another is the fabric's normal shape (the
    agent begins "agent" on dispatch, ends it on completion) — those are
    checked at class scope: a name begun somewhere in the class must
    have an ``.end(name)`` somewhere in the same class (module scope for
    free functions).  ``record(...)`` is one-shot and always safe.
    """
    module_ends = _span_calls(source.tree, "end")
    class_ends: Dict[ast.ClassDef, Set[str]] = {}
    owner_of: Dict[ast.FunctionDef, ast.ClassDef] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            class_ends[node] = _span_calls(node, "end")
            for func in _direct_methods(node):
                owner_of[func] = node
    for func in _all_functions(source.tree):
        begins = _span_call_sites(func, "begin")
        if not begins:
            continue
        ends_here = _span_calls(func, "end")
        owner = owner_of.get(func)
        outer_ends = class_ends.get(owner, set()) if owner else module_ends
        flow_names = {name for name in begins if name in ends_here}
        if flow_names:
            yield from _scan_span_flow(source, func, flow_names)
        for name, sites in begins.items():
            if name in ends_here or name in outer_ends:
                continue
            scope = owner.name if owner else source.module
            for site in sites:
                yield _finding(
                    source, SPAN_LIFECYCLE, site,
                    f'span "{name}" is begun here but never finished '
                    f"anywhere in {scope}",
                    _SPAN_HINT,
                )


def _span_name(node: ast.Call, attr: str) -> Optional[str]:
    if (isinstance(node.func, ast.Attribute) and node.func.attr == attr
            and node.args and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        return node.args[0].value
    return None


def _span_calls(scope: ast.AST, attr: str) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            name = _span_name(node, attr)
            if name is not None:
                names.add(name)
    return names


def _span_call_sites(scope: ast.AST, attr: str) -> Dict[str, List[ast.Call]]:
    sites: Dict[str, List[ast.Call]] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            name = _span_name(node, attr)
            if name is not None:
                sites.setdefault(name, []).append(node)
    return sites


class _SpanAnalysis(ForwardAnalysis):
    """Facts: span name -> {(begin_line, "open"|"done")}."""

    def __init__(self, names: Set[str]) -> None:
        self._names = names

    def transfer(self, stmt: ast.AST, facts: Facts) -> Facts:
        facts = dict(facts)
        for part in header_parts(stmt):
            for node in ast.walk(part):
                if not isinstance(node, ast.Call):
                    continue
                begun = _span_name(node, "begin")
                if begun in self._names:
                    facts[begun] = frozenset({(node.lineno, _OPEN)})
                ended = _span_name(node, "end")
                if ended in self._names and ended in facts:
                    facts[ended] = frozenset(
                        (o, _DONE) for o, _ in facts[ended])
        return facts


def _scan_span_flow(source: SourceFile, func: ast.FunctionDef,
                    names: Set[str]) -> Iterator[Finding]:
    cfg = build_cfg(func)
    in_facts = run_forward(cfg, _SpanAnalysis(names))
    exit_facts = in_facts.get(cfg.exit, {})
    for name in sorted(names):
        open_lines = sorted({o for o, state in exit_facts.get(name, frozenset())
                             if state == _OPEN})
        for line in open_lines:
            synthetic = ast.Pass()
            synthetic.lineno = line
            synthetic.col_offset = 0
            yield _finding(
                source, SPAN_LIFECYCLE, synthetic,
                f'span "{name}" begun here is not finished on every path '
                f"through {func.name}()",
                _SPAN_HINT,
            )
