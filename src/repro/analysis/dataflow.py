"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

Facts are immutable mappings ``key -> frozenset[value]``; the join is
key-wise set union, which makes every analysis here a *may* analysis
over (origin, state) pairs — a key whose set contains only one state is
simultaneously a *must* fact.  Analyses subclass :class:`ForwardAnalysis`
and implement:

* ``transfer(stmt, facts)`` — the effect of executing a statement;
* ``refine(cond, branch, facts)`` — optional sharpening of facts along
  a labelled branch edge (e.g. ``if lease is None`` on the true edge
  means there is no lease to dispose);
* ``initial()`` — facts at function entry.

Exceptional edges propagate the facts holding *before* the raising
statement (the exception may fire at any point inside it), everything
else propagates post-transfer facts.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Tuple

from .cfg import CFG, Edge, STMT

Facts = Dict[str, FrozenSet[Tuple]]


def join_facts(a: Facts, b: Facts) -> Facts:
    if not a:
        return dict(b)
    if not b:
        return dict(a)
    out = dict(a)
    for key, values in b.items():
        existing = out.get(key)
        out[key] = values if existing is None else existing | values
    return out


def facts_equal(a: Facts, b: Facts) -> bool:
    return a == b


class ForwardAnalysis:
    """Base class; subclasses define the lattice transfer functions."""

    def initial(self) -> Facts:
        return {}

    def transfer(self, stmt: ast.AST, facts: Facts) -> Facts:
        raise NotImplementedError

    def refine(self, cond: Optional[ast.expr], branch: Optional[bool],
               facts: Facts) -> Facts:
        return facts


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> Dict[int, Facts]:
    """Run ``analysis`` to fixpoint; returns the *incoming* facts at
    every node (facts at ``cfg.exit`` are the function-exit facts)."""
    in_facts: Dict[int, Facts] = {cfg.entry: analysis.initial()}
    out_facts: Dict[int, Facts] = {}

    succs: Dict[int, list] = {}
    for edge in cfg.edges:
        succs.setdefault(edge.src, []).append(edge)

    worklist = [cfg.entry]
    iterations = 0
    limit = max(64, len(cfg.nodes) * len(cfg.nodes) * 4)
    while worklist and iterations < limit:
        iterations += 1
        index = worklist.pop()
        node = cfg.nodes[index]
        incoming = in_facts.get(index, {})
        if node.kind == STMT and node.stmt is not None:
            outgoing = analysis.transfer(node.stmt, incoming)
        else:
            outgoing = incoming
        out_facts[index] = outgoing
        for edge in succs.get(index, ()):
            flowing = incoming if edge.exceptional else outgoing
            if edge.cond is not None or edge.branch is not None:
                flowing = analysis.refine(edge.cond, edge.branch, flowing)
            previous = in_facts.get(edge.dst)
            merged = flowing if previous is None else join_facts(previous, flowing)
            if previous is None or not facts_equal(previous, merged):
                in_facts[edge.dst] = merged
                worklist.append(edge.dst)
    return in_facts
