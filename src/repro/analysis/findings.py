"""Findings: what a check reports and how it is identified over time.

A finding names the file, line, check id and offending symbol, carries a
human fix hint, and exposes a *fingerprint* — ``(check, path, symbol,
normalized line text)`` — that survives unrelated edits moving the line
around.  Baselines match on fingerprints, not line numbers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Finding:
    """One violation reported by a check."""

    check: str       # check id, e.g. "guarded-by"
    path: str        # repo-relative posix path
    line: int        # 1-based line number
    col: int         # 0-based column
    symbol: str      # enclosing qualified symbol, e.g. "Manager._dispatch_pending"
    message: str     # what is wrong
    hint: str        # how to fix it
    line_text: str   # stripped source of the offending line (fingerprint input)
    severity: str = "error"  # "error" fails the build; "info" is advisory

    # -- identity --------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line numbers excluded)."""
        key = "\x1f".join((self.check, self.path, self.symbol, self.line_text))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    # -- rendering -------------------------------------------------------
    def format(self) -> str:
        label = f"[{self.check}]" if self.severity == "error" else (
            f"[{self.check}] info:")
        text = f"{self.path}:{self.line}:{self.col}: {label} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_record(self) -> dict:
        record = asdict(self)
        record["fingerprint"] = self.fingerprint()
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by path, then line, then check id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.check))
