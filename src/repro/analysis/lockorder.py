"""Static lock-acquisition-order graph and deadlock (cycle) detection.

Two threads that acquire the same two locks in opposite orders can
deadlock; the classic prevention is a global acquisition order.  This
module extracts that order statically from every ``with <lock>:`` scope
in the tree:

* **Nodes** are locks named ``ClassName.attr`` (``Forwarder._lock``,
  ``ReliableQueue._lock``) — instance locks are collapsed per class,
  matching the names the runtime sanitizer
  (:mod:`repro.analysis.sanitizer`) reports, so the two graphs are
  directly comparable.
* **Direct edges** come from lexically nested ``with`` scopes (and the
  left-to-right items of ``with a, b:``).
* **Call-through edges** come from a fixpoint over a one-level call
  summary: if a method calls ``self.other()`` or ``self.attr.m()``
  while holding lock A, every lock the callee (transitively) acquires
  gets an ``A -> lock`` edge.  Receiver types are resolved from
  ``self.attr = ClassName(...)`` constructor assignments, annotated
  parameters, and local ``x = ClassName(...)`` bindings; unresolvable
  receivers are skipped.
* **Self-loops are ignored**: re-acquiring ``self._lock`` is legal for
  RLocks, and two *instances* of the same class collapse onto one node
  (the runtime sanitizer distinguishes instances and catches real
  same-class inversions live).

Cycles are reported once per strongly connected component, with one
witness (file:line) per edge so both halves of the inversion are shown.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lockscope import iter_classes
from repro.analysis.source import SourceFile, dotted_name

LOCK_ORDER = "lock-order"

_LOCK_ORDER_HINT = (
    "pick one global acquisition order for these locks and restructure the "
    "losing side (usually: snapshot under the first lock, release it, then "
    "take the second); see docs/ANALYSIS.md \"Reading a lock-order cycle "
    "report\""
)


@dataclass(frozen=True)
class Witness:
    """Where an edge was observed: a file:line plus what happened there."""

    path: str
    line: int
    symbol: str
    detail: str

    def format(self) -> str:
        return f"{self.path}:{self.line} in {self.symbol} ({self.detail})"


@dataclass
class LockOrderGraph:
    """Directed lock-order graph shared by the static extractor and the
    runtime sanitizer (which merges its observed edges into the same
    shape for subgraph comparison)."""

    edges: Dict[Tuple[str, str], List[Witness]] = field(default_factory=dict)

    def add_edge(self, src: str, dst: str, witness: Witness) -> None:
        if src == dst:
            return
        self.edges.setdefault((src, dst), []).append(witness)

    @property
    def nodes(self) -> Set[str]:
        found: Set[str] = set()
        for src, dst in self.edges:
            found.add(src)
            found.add(dst)
        return found

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self.edges

    def successors(self, node: str) -> List[str]:
        return sorted(dst for (src, dst) in self.edges if src == node)

    def is_subgraph_of(self, other: "LockOrderGraph") -> bool:
        return all(edge in other.edges for edge in self.edges)

    def missing_from(self, other: "LockOrderGraph") -> List[Tuple[str, str]]:
        return sorted(edge for edge in self.edges if edge not in other.edges)

    def cycles(self) -> List[List[Tuple[str, str]]]:
        """One representative simple cycle per non-trivial SCC, as a
        list of edges; deterministic order."""
        sccs = _tarjan_sccs(self)
        found: List[List[Tuple[str, str]]] = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            members = set(scc)
            start = min(scc)
            path = _find_cycle_path(self, start, members)
            if path:
                found.append(path)
        return found


def _tarjan_sccs(graph: LockOrderGraph) -> List[List[str]]:
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index_of[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph.successors(node):
            if succ not in index_of:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index_of[succ])
        if low[node] == index_of[node]:
            scc: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                scc.append(member)
                if member == node:
                    break
            sccs.append(sorted(scc))

    for node in sorted(graph.nodes):
        if node not in index_of:
            strongconnect(node)
    return sorted(sccs)


def _find_cycle_path(graph: LockOrderGraph, start: str,
                     members: Set[str]) -> Optional[List[Tuple[str, str]]]:
    """DFS for a simple cycle start -> ... -> start inside one SCC."""
    stack: List[Tuple[str, List[Tuple[str, str]]]] = [(start, [])]
    while stack:
        node, path = stack.pop()
        for succ in reversed(graph.successors(node)):
            if succ not in members:
                continue
            edge = (node, succ)
            if succ == start:
                return path + [edge]
            if any(src == succ for src, _ in path) or succ == start:
                continue
            if len(path) < len(members):
                stack.append((succ, path + [edge]))
    return None


# ======================================================================
# Static extraction
# ======================================================================
@dataclass
class _MethodSummary:
    qualname: str
    path: str = ""
    direct_locks: Set[str] = field(default_factory=set)
    # (ordered held locks at the call site, callee key, line)
    calls: List[Tuple[Tuple[str, ...], Tuple[str, str], int]] = field(
        default_factory=list)


def _looks_like_lock(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered or "cond" in lowered or "mutex" in lowered


class _ClassExtractor:
    """Walks one class (or module scope) collecting acquisitions, nested
    edges, and call-sites-under-lock."""

    def __init__(self, source: SourceFile, class_name: Optional[str],
                 guard_locks: FrozenSet[str], attr_types: Dict[str, str],
                 known_classes: Set[str], graph: LockOrderGraph,
                 summaries: Dict[Tuple[str, str], _MethodSummary]) -> None:
        self.source = source
        self.class_name = class_name
        self.guard_locks = guard_locks
        self.attr_types = attr_types
        self.known_classes = known_classes
        self.graph = graph
        self.summaries = summaries

    def scan_function(self, func: ast.AST, qualname: str,
                      initial_held: Tuple[str, ...]) -> _MethodSummary:
        summary = _MethodSummary(qualname=qualname, path=self.source.path)
        key = (self.class_name or self.source.module, getattr(func, "name", "<lambda>"))
        self.summaries[key] = summary
        self._local_types = _local_constructor_types(func, self.known_classes)
        for stmt in getattr(func, "body", []):
            self._walk(stmt, initial_held, summary, qualname)
        return summary

    def _walk(self, node: ast.AST, held: Tuple[str, ...],
              summary: _MethodSummary, qualname: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Closures run later, typically after the lock is released.
            for child in ast.iter_child_nodes(node):
                self._walk(child, (), summary, qualname)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            current = held
            for item in node.items:
                lock = self._resolve_lock(item.context_expr)
                if lock is not None:
                    summary.direct_locks.add(lock)
                    witness = Witness(
                        path=self.source.path,
                        line=item.context_expr.lineno,
                        symbol=qualname,
                        detail=f"acquires {lock} while holding "
                               f"{', '.join(current) if current else 'nothing'}",
                    )
                    for outer in current:
                        self.graph.add_edge(outer, lock, witness)
                    current = current + (lock,)
                self._walk(item.context_expr, held, summary, qualname)
            for stmt in node.body:
                self._walk(stmt, current, summary, qualname)
            return
        if isinstance(node, ast.Call):
            callee = self._resolve_callee(node)
            if callee is not None:
                summary.calls.append((held, callee, node.lineno))
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, summary, qualname)

    def _resolve_lock(self, expr: ast.expr) -> Optional[str]:
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        attr = parts[-1]
        if not (_looks_like_lock(attr) or attr in self.guard_locks):
            return None
        if parts[0] == "self" and self.class_name is not None:
            if len(parts) == 2:
                return f"{self.class_name}.{attr}"
            if len(parts) == 3:
                owner = self.attr_types.get(parts[1])
                if owner is not None:
                    return f"{owner}.{attr}"
            return None
        if len(parts) == 1:
            return f"{self.source.module}.{attr}"
        if len(parts) == 2:
            owner = self._local_types.get(parts[0])
            if owner is not None:
                return f"{owner}.{attr}"
        return None

    def _resolve_callee(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # Bare ClassName(...) constructor call.
            if isinstance(func, ast.Name) and func.id in self.known_classes:
                return (func.id, "__init__")
            return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and self.class_name is not None:
            if len(parts) == 2:
                return (self.class_name, parts[1])
            if len(parts) == 3:
                owner = self.attr_types.get(parts[1])
                if owner is not None:
                    return (owner, parts[2])
            return None
        if len(parts) == 2:
            owner = self._local_types.get(parts[0])
            if owner is not None:
                return (owner, parts[1])
        return None


def _local_constructor_types(func: ast.AST,
                             known_classes: Set[str]) -> Dict[str, str]:
    types: Dict[str, str] = {}
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in known_classes):
            types[node.targets[0].id] = node.value.func.id
    return types


def _attribute_types(node: ast.ClassDef,
                     known_classes: Set[str]) -> Dict[str, str]:
    """self.attr -> ClassName from constructor assignments and annotated
    parameters assigned through (``def __init__(self, q: ReliableQueue):
    self._q = q``)."""
    types: Dict[str, str] = {}
    param_types: Dict[str, str] = {}
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for arg in list(method.args.args) + list(method.args.kwonlyargs):
            if arg.annotation is not None:
                ann = dotted_name(arg.annotation)
                if ann is not None and ann.split(".")[-1] in known_classes:
                    param_types[arg.arg] = ann.split(".")[-1]
        for sub in ast.walk(method):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = sub.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in known_classes):
                types[target.attr] = value.func.id
            elif isinstance(value, ast.Name) and value.id in param_types:
                types[target.attr] = param_types[value.id]
    return types


def extract_lock_graph(sources: Sequence[SourceFile]) -> LockOrderGraph:
    """Build the global static lock-order graph over ``sources``."""
    graph = LockOrderGraph()
    summaries: Dict[Tuple[str, str], _MethodSummary] = {}
    known_classes: Set[str] = set()
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                known_classes.add(node.name)

    for source in sources:
        class_nodes = set()
        for info in iter_classes(source):
            class_nodes.add(info.node)
            attr_types = _attribute_types(info.node, known_classes)
            extractor = _ClassExtractor(
                source, info.node.name, info.lock_names, attr_types,
                known_classes, graph, summaries)
            for method in info.node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                initial = tuple(
                    f"{info.node.name}.{lock}"
                    for lock in sorted(info.held_markers.get(method, frozenset())))
                extractor.scan_function(
                    method, f"{info.qualname}.{method.name}", initial)
        extractor = _ClassExtractor(
            source, None, frozenset(), {}, known_classes, graph, summaries)
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                extractor.scan_function(stmt, stmt.name, ())

    _propagate_call_locks(graph, summaries)
    return graph


def _propagate_call_locks(
        graph: LockOrderGraph,
        summaries: Dict[Tuple[str, str], _MethodSummary]) -> None:
    """Fixpoint: locks(m) = direct(m) ∪ locks(callees); then add edges
    held-at-call-site -> every lock the callee acquires."""
    all_locks: Dict[Tuple[str, str], Set[str]] = {
        key: set(summary.direct_locks) for key, summary in summaries.items()}
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for key, summary in summaries.items():
            for _held, callee, _line in summary.calls:
                acquired = all_locks.get(callee)
                if acquired and not acquired <= all_locks[key]:
                    all_locks[key] |= acquired
                    changed = True

    for key, summary in sorted(summaries.items()):
        for held, callee, line in summary.calls:
            if not held:
                continue
            acquired = all_locks.get(callee, set())
            for lock in sorted(acquired):
                witness = Witness(
                    path=summary.path,
                    line=line,
                    symbol=summary.qualname,
                    detail=(f"call to {callee[0]}.{callee[1]}() acquires {lock} "
                            f"while holding {', '.join(held)}"),
                )
                for outer in held:
                    graph.add_edge(outer, lock, witness)


# ======================================================================
# The check
# ======================================================================
def check_lock_order(sources: Sequence[SourceFile]) -> Iterator[Finding]:
    """Flag cycles in the global lock-acquisition-order graph.

    An edge ``A -> B`` means some code path acquires B while holding A;
    a cycle means two code paths acquire the same locks in opposite
    orders — a potential deadlock under the right interleaving.  Each
    cycle is reported once, with a witness (file:line) for every edge so
    both sides of the inversion are visible.
    """
    graph = extract_lock_graph(sources)
    by_path = {source.path: source for source in sources}
    for cycle in graph.cycles():
        first_witness = graph.edges[cycle[0]][0]
        source = by_path.get(first_witness.path)
        legs = []
        for src, dst in cycle:
            witness = graph.edges[(src, dst)][0]
            extra = len(graph.edges[(src, dst)]) - 1
            more = f" (+{extra} more witness{'es' if extra > 1 else ''})" if extra else ""
            legs.append(f"{src} -> {dst} at {witness.format()}{more}")
        names = " -> ".join([cycle[0][0]] + [dst for _, dst in cycle])
        yield Finding(
            check=LOCK_ORDER,
            path=first_witness.path,
            line=first_witness.line,
            col=0,
            symbol=first_witness.symbol,
            message=f"lock-order cycle {names}: " + "; ".join(legs),
            hint=_LOCK_ORDER_HINT,
            line_text=(source.line_text(first_witness.line) if source else ""),
        )
