"""Lock-scope inference shared by guarded-by and blocking-under-lock.

For every class the inference collects:

* **guards** — which attributes are protected by which lock, declared
  either with a trailing ``# guarded-by: self._lock`` comment on the
  attribute's ``__init__`` assignment or through a class-level
  ``_GUARDED = {"_attr": "_lock"}`` registry;
* **held markers** — methods whose ``def`` line carries a
  ``# guarded-by: self._lock`` comment, meaning every caller already
  holds that lock (e.g. ``ReliableQueue._emit``);
* **lock scopes** — for each statement, the set of locks lexically held
  there.  A lock is held inside ``with self._lock:`` bodies, including
  nested withs and multi-item withs; early returns are irrelevant to
  lexical containment, and nested ``def``/``lambda`` bodies reset the
  held set because closures run after the ``with`` exits.  List/set/dict
  comprehensions evaluate in place and keep the held set; a *generator
  expression* keeps it only for its outermost iterable (evaluated
  eagerly) — the element expression and later clauses run at consumption
  time and reset, like a lambda.

Lock recognition is name-based: a ``with`` context expression counts as
a lock when its final attribute contains ``lock`` or ``cond``, or is a
declared guard lock of the class (covers a ``threading.Condition``
named ``_lock`` as well as any lock a guard declaration names).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.source import SourceFile, dotted_name

GUARDED_REGISTRY_NAME = "_GUARDED"


@dataclass
class ClassLockInfo:
    """Lock/guard facts for one class definition."""

    node: ast.ClassDef
    qualname: str
    guards: dict[str, str] = field(default_factory=dict)       # attr -> lock attr
    held_markers: dict[ast.AST, frozenset[str]] = field(default_factory=dict)

    @property
    def lock_names(self) -> frozenset[str]:
        return frozenset(self.guards.values())


def iter_classes(source: SourceFile) -> list[ClassLockInfo]:
    """Every class in the module with its guard declarations resolved.

    Cached on the :class:`SourceFile` (``derived``) — guarded-by,
    blocking-under-lock, lock-order, and threadroles all consume the
    same list, so the class/guard harvest walks each tree once per
    parse instead of once per pass.  Callers must treat the entries as
    read-only.
    """
    return source.derived("lockscope_classes",
                          lambda: list(_iter_classes_uncached(source)))


def _iter_classes_uncached(source: SourceFile) -> Iterator[ClassLockInfo]:
    def walk(node: ast.AST, prefix: str) -> Iterator[ClassLockInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qname = f"{prefix}.{child.name}" if prefix else child.name
                yield _class_info(source, child, qname)
                yield from walk(child, qname)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{prefix}.{child.name}" if prefix else child.name
                yield from walk(child, inner)
            else:
                yield from walk(child, prefix)

    yield from walk(source.tree, "")


def _class_info(source: SourceFile, node: ast.ClassDef, qualname: str) -> ClassLockInfo:
    info = ClassLockInfo(node=node, qualname=qualname)
    # 1. class-level registry: _GUARDED = {"_attr": "_lock", ...}
    for stmt in node.body:
        if (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == GUARDED_REGISTRY_NAME
                and isinstance(stmt.value, ast.Dict)):
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    info.guards[key.value] = value.value
    # 2. comment declarations on self.<attr> assignments, and held markers
    #    on def lines, anywhere in the class body.
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lock = source.guard_comments.get(sub.lineno)
            if lock is not None:
                info.held_markers[sub] = frozenset({lock})
        elif isinstance(sub, (ast.Assign, ast.AnnAssign)):
            lock = source.guard_comments.get(sub.lineno)
            if lock is None:
                continue
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    info.guards[target.attr] = lock
    return info


# ----------------------------------------------------------------------
# traversal with held-lock state
# ----------------------------------------------------------------------
def _lock_in_context(expr: ast.expr, known_locks: frozenset[str]) -> str | None:
    """The lock name a ``with`` item acquires, or ``None``.

    Accepts ``self._lock``, a bare ``lock`` variable, and
    ``self._lock.acquire_timeout(...)``-style calls on a lock.
    """
    target = expr
    if isinstance(target, ast.Call):
        target = target.func
        if isinstance(target, ast.Attribute):
            target = target.value  # with self._lock.something(): -> self._lock
    name = dotted_name(target)
    if name is None:
        return None
    last = name.split(".")[-1]
    lowered = last.lower()
    if "lock" in lowered or "cond" in lowered or last in known_locks:
        return last
    return None


def visit_with_lock_state(
    func: ast.AST,
    initial_held: frozenset[str],
    known_locks: frozenset[str],
    callback: Callable[[ast.AST, frozenset[str]], None],
    nested_initial: Callable[[ast.AST], frozenset[str]] | None = None,
) -> None:
    """Invoke ``callback(node, held_locks)`` for every node in ``func``.

    ``func`` is a function definition whose body starts with
    ``initial_held`` locks held (non-empty for held-marker methods).
    Nested function/lambda bodies restart from ``nested_initial(def)``
    (default: no locks) because closures execute after the enclosing
    ``with`` block has exited.
    """

    def visit(node: ast.AST, held: frozenset[str]) -> None:
        callback(node, held)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            fresh = nested_initial(node) if nested_initial else frozenset()
            # decorators/defaults evaluate in the enclosing scope
            for expr in _definition_time_exprs(node):
                visit(expr, held)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                visit(stmt, fresh)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
                lock = _lock_in_context(item.context_expr, known_locks)
                if lock is not None:
                    inner.add(lock)
            for stmt in node.body:
                visit(stmt, frozenset(inner))
        elif isinstance(node, ast.GeneratorExp):
            # Unlike list/set/dict comprehensions (which evaluate in
            # place, under the lock), a generator expression only
            # evaluates its *outermost iterable* eagerly; the element
            # expression and every later clause run when the generator
            # is consumed — typically after the with-block has exited.
            first = node.generators[0]
            visit(first.iter, held)
            lazy: frozenset[str] = frozenset()
            visit(first.target, lazy)
            for cond in first.ifs:
                visit(cond, lazy)
            for gen in node.generators[1:]:
                visit(gen.target, lazy)
                visit(gen.iter, lazy)
                for cond in gen.ifs:
                    visit(cond, lazy)
            visit(node.elt, lazy)
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, held)

    body = getattr(func, "body", [])
    if not isinstance(body, list):
        body = [body]
    for stmt in body:
        visit(stmt, initial_held)


def _definition_time_exprs(node: ast.AST) -> list[ast.expr]:
    exprs: list[ast.expr] = list(getattr(node, "decorator_list", []))
    args = getattr(node, "args", None)
    if args is not None:
        exprs.extend(d for d in args.defaults if d is not None)
        exprs.extend(d for d in args.kw_defaults if d is not None)
    return exprs
