"""Parametric resource-protocol (typestate) engine.

PR 4's lease-ack check hard-wired one acquire/release discipline into a
CFG + forward-dataflow pass.  The fabric has since grown four more
resources with exactly that shape — credit ledgers, pubsub/stream
subscriptions, spilled result payloads, and result futures — so this
module generalizes the pass into a declarative registry: a
:class:`ProtocolSpec` names a protocol's acquire sites, release sites,
escape waivers, and refinements, and one shared engine
(:func:`scan_protocol`) verifies every registered protocol.

Engine semantics (identical to the PR 4 lease analysis, parameterized):

* **Acquire** — a call whose method name matches ``acquire_methods``
  (optionally constrained to receivers whose last segment is in
  ``acquire_receivers``), or a bare constructor call in
  ``acquire_constructors``; transparent sequence ``wrappers``
  (``list(q.lease_many(n))``) see through to the inner call.  The bound
  variable's facts are ``{(origin_line, open)}``; aliases inherit the
  origin, tuple-unpack binds every element name.
* **Release** — a call with the tracked value as *any* argument
  (handoff waiver), a ``Return``/``Yield`` of it (caller owns it now),
  storing it into a field/subscript/container (escape waiver),
  iterating it from a comprehension, or a method from
  ``release_methods`` invoked *on* the tracked value itself
  (``future.set_result(...)``).  Disposal acts on the resource, so it
  reaches every alias sharing the origin.
* **Refinement** — ``if x:`` / ``if not x:`` / ``is None`` /
  ``is not None`` emptiness tests close the absent branch, and
  ``for item in batch:`` transfers ownership of a tracked collection's
  elements to the loop variable.
* ``waive_on_raise`` — protocols whose unreleased value is garbage-
  collectable (futures) treat an explicit ``raise`` as disposal; the
  strict protocols (subscriptions, spills, credits) do not, which is
  exactly how the PR 7 ``_future_for`` subscription leak class is
  caught mechanically.

A leak is reported at the acquisition line when any path reaches the
function exit with the resource still open.  Two protocols do not fit
the per-value shape and run as cross-file (global) checks:

* :func:`check_credit_balance` keys facts on the *receiver* spelling
  (``self.credits``) instead of a bound value, with lightweight
  interprocedural must-release summaries (one-level call-through, the
  same receiver-typing machinery the lock-order graph uses).
* :func:`check_handler_exhaustiveness` checks that every concrete
  ``repro.transport.messages`` type is consumed by an ``isinstance``
  (or ``match``) dispatch somewhere in the analyzed set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg, header_parts
from repro.analysis.dataflow import Facts, ForwardAnalysis, run_forward
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, enclosing_symbol

LEASE_ACK = "lease-ack"
CREDIT_BALANCE = "credit-balance"
SUBSCRIPTION_LIFECYCLE = "subscription-lifecycle"
SPILL_LIFECYCLE = "spill-lifecycle"
FUTURE_RESOLUTION = "future-resolution"
HANDLER_EXHAUSTIVENESS = "handler-exhaustiveness"

#: Module whose concrete Message subclasses form the dispatch universe.
WIRE_MODULE = "repro.transport.messages"

_OPEN = "open"
_DONE = "done"

#: Transparent sequence wrappers acquire through: ``list(q.lease_many(n))``.
_DEFAULT_WRAPPERS = frozenset({"deque", "list", "sorted", "tuple", "reversed"})


@dataclass(frozen=True)
class ProtocolSpec:
    """One declarative resource protocol the shared engine verifies.

    Attributes
    ----------
    check_id:
        Stable id used in findings, waiver comments, and baselines.
    resource:
        Human noun for messages (``"lease(s)"``).
    acquire_methods:
        Attribute-call names whose result is the tracked resource.
    acquire_receivers:
        When non-empty, an ``acquire_methods`` call only acquires if the
        receiver's last segment is in this set (``self.spill.put``).
    acquire_constructors:
        Bare constructor names that acquire (``FuncXFuture``).
    wrappers:
        Sequence wrappers that see through to an inner acquire call.
    release_methods:
        Method names that dispose the resource when invoked *on* it
        (receiver-based release: ``future.set_result(...)``).
    release_verbs:
        Message tail: "... without {release_verbs} on some path".
    waive_on_raise:
        Treat an explicit ``raise`` statement as disposing every open
        resource (for values that are garbage-collectable unreleased).
    hint:
        Fix guidance appended to each finding.
    """

    check_id: str
    resource: str
    release_verbs: str
    hint: str
    acquire_methods: FrozenSet[str] = frozenset()
    acquire_receivers: FrozenSet[str] = frozenset()
    acquire_constructors: FrozenSet[str] = frozenset()
    wrappers: FrozenSet[str] = _DEFAULT_WRAPPERS
    release_methods: FrozenSet[str] = frozenset()
    waive_on_raise: bool = False


LEASE_PROTOCOL = ProtocolSpec(
    check_id=LEASE_ACK,
    resource="lease(s)",
    release_verbs="ack/nack",
    acquire_methods=frozenset({"lease", "lease_many", "lease_batch"}),
    hint=(
        "every path to exit must ack/nack the lease (or hand it off: storing "
        "it in a field, returning it, or passing it to another call are "
        "explicit waivers); for deliberate drops add `# lint: ignore[lease-ack]` "
        "on the acquisition line"
    ),
)

SUBSCRIPTION_PROTOCOL = ProtocolSpec(
    check_id=SUBSCRIPTION_LIFECYCLE,
    resource="subscription(s)",
    release_verbs="unsubscribe/detach",
    acquire_methods=frozenset({"subscribe", "subscribe_prefix"}),
    release_methods=frozenset({"unsubscribe", "detach", "close"}),
    hint=(
        "every path to exit — error and raise paths included — must "
        "unsubscribe/detach/close the subscription or hand it off (store it "
        "in a field, return it, or pass it to another call); a leaked token "
        "delivers into dead callbacks forever; for deliberate leaks add "
        "`# lint: ignore[subscription-lifecycle]` on the acquisition line"
    ),
)

SPILL_PROTOCOL = ProtocolSpec(
    check_id=SPILL_LIFECYCLE,
    resource="spilled payload ref(s)",
    release_verbs="deletion or handoff",
    acquire_methods=frozenset({"put"}),
    acquire_receivers=frozenset({"spill"}),
    release_methods=frozenset({"delete", "as_argument"}),
    hint=(
        "a spilled DataRef must be deleted (drop_spill on ack or subscriber "
        "detach) or converted/handed off for delivery on every path, or the "
        "staging store grows without bound; for deliberate retention add "
        "`# lint: ignore[spill-lifecycle]` on the acquisition line"
    ),
)

FUTURE_PROTOCOL = ProtocolSpec(
    check_id=FUTURE_RESOLUTION,
    resource="future(s)",
    release_verbs="set_result/set_exception/cancel",
    acquire_constructors=frozenset({"FuncXFuture"}),
    release_methods=frozenset({"set_result", "set_exception", "cancel"}),
    waive_on_raise=True,
    hint=(
        "a created future must reach set_result/set_exception/cancel, be "
        "returned, stored, or passed onward on every non-raising path — a "
        "dropped unresolved future blocks its waiter forever (raise paths "
        "are waived: an unresolved local is collectable); for deliberate "
        "drops add `# lint: ignore[future-resolution]` on the creation line"
    ),
)

#: The declarative registry: per-value typestate protocols the shared
#: engine runs as per-file checks.
VALUE_PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.check_id: spec
    for spec in (LEASE_PROTOCOL, SUBSCRIPTION_PROTOCOL, SPILL_PROTOCOL,
                 FUTURE_PROTOCOL)
}

#: Receiver-effect / global protocol ids handled by dedicated engines
#: below (same registry surface for coverage tests and docs).
RECEIVER_PROTOCOLS: Tuple[str, ...] = (CREDIT_BALANCE, HANDLER_EXHAUSTIVENESS)


def _finding(source: SourceFile, check: str, node: ast.AST, message: str,
             hint: str) -> Finding:
    lineno = getattr(node, "lineno", 1)
    return Finding(
        check=check,
        path=source.path,
        line=lineno,
        col=getattr(node, "col_offset", 0),
        symbol=enclosing_symbol(source.tree, lineno),
        message=message,
        hint=hint,
        line_text=source.line_text(lineno),
    )


def _all_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    # Cached on the tree node: every value protocol (and lease-ack)
    # walks the same parsed module, so pay for the walk once.
    cached = getattr(tree, "_protocol_functions", None)
    if cached is None:
        cached = [n for n in ast.walk(tree)
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        tree._protocol_functions = cached
    return cached


def _call_names(func: ast.FunctionDef) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(attribute-call names, bare-name call ids) in ``func`` — the
    cheap superset guard each protocol intersects with its acquire
    sets before building a CFG.  Cached on the function node."""
    cached = getattr(func, "_protocol_call_names", None)
    if cached is None:
        attrs: Set[str] = set()
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute):
                    attrs.add(node.func.attr)
                elif isinstance(node.func, ast.Name):
                    names.add(node.func.id)
        cached = (frozenset(attrs), frozenset(names))
        func._protocol_call_names = cached
    return cached


def _names_in(expr: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _last_segment(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _dotted(expr: ast.expr) -> Optional[str]:
    """``self.credits`` for an Attribute/Name chain, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _is_acquire(expr: ast.expr, spec: ProtocolSpec) -> Optional[ast.Call]:
    """Return the acquiring Call if ``expr`` produces tracked value(s)."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr in spec.acquire_methods:
        if (not spec.acquire_receivers
                or _last_segment(func.value) in spec.acquire_receivers):
            return expr
    if isinstance(func, ast.Name):
        if func.id in spec.acquire_constructors:
            return expr
        if func.id in spec.wrappers and len(expr.args) == 1:
            return _is_acquire(expr.args[0], spec)
    return None


class _TypestateAnalysis(ForwardAnalysis):
    """Facts: var -> {(origin_line, "open"|"done")}, per ``spec``."""

    def __init__(self, spec: ProtocolSpec):
        self.spec = spec

    def transfer(self, stmt: ast.AST, facts: Facts) -> Facts:
        facts = dict(facts)
        self._dispose_events(stmt, facts)
        if isinstance(stmt, ast.Assign):
            self._bind(stmt.targets, stmt.value, facts)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind([stmt.target], stmt.value, facts)
        elif isinstance(stmt, ast.AugAssign):
            pass  # dispose_events already handled the RHS call, if any
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind([item.optional_vars], item.context_expr, facts)
        if self.spec.waive_on_raise and isinstance(stmt, ast.Raise):
            for var, pairs in list(facts.items()):
                facts[var] = frozenset((o, _DONE) for o, _ in pairs)
        return facts

    def _bind(self, targets: List[ast.expr], value: ast.expr,
              facts: Facts) -> None:
        acquiring = _is_acquire(value, self.spec)
        inherited: FrozenSet[Tuple] = frozenset()
        if acquiring is None:
            for name in _names_in(value):
                inherited |= facts.get(name, frozenset())
        for target in targets:
            if isinstance(target, ast.Name):
                if acquiring is not None:
                    facts[target.id] = frozenset({(acquiring.lineno, _OPEN)})
                elif inherited:
                    facts[target.id] = inherited
            elif isinstance(target, ast.Tuple):
                # Tuple unpack of tracked values: track each element name.
                pairs = (frozenset({(acquiring.lineno, _OPEN)})
                         if acquiring is not None else inherited)
                if pairs:
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            facts[elt.id] = pairs
            else:
                # Escape: storing into a field / subscript disposes the
                # stored resource(s).
                if acquiring is not None:
                    continue
                self._dispose_names(_names_in(value), facts)

    def _dispose_events(self, stmt: ast.AST, facts: Facts) -> None:
        disposed: Set[str] = set()
        for part in header_parts(stmt):
            for node in ast.walk(part):
                disposed |= self._disposals_in(node, facts)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not isinstance(target, (ast.Name, ast.Tuple)):
                    disposed |= _names_in(stmt.value) & facts.keys()
        self._dispose_names(disposed, facts)

    def _disposals_in(self, node: ast.AST, facts: Facts) -> Set[str]:
        disposed: Set[str] = set()
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                disposed |= _names_in(arg) & facts.keys()
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.spec.release_methods):
                # Release invoked on the resource itself:
                # ``future.set_result(...)``, ``ref.as_argument()``.
                disposed |= _names_in(node.func.value) & facts.keys()
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                disposed |= _names_in(node.value) & facts.keys()
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                disposed |= _names_in(gen.iter) & facts.keys()
        return disposed

    def _dispose_names(self, names: Set[str], facts: Facts) -> None:
        if not names:
            return
        origins: Set[int] = set()
        for name in names:
            origins |= {origin for origin, _ in facts.get(name, frozenset())}
        if not origins:
            return
        # Disposal acts on the resource itself, so it reaches every alias
        # sharing the origin — not just the variable named at the site.
        for var, pairs in list(facts.items()):
            facts[var] = frozenset(
                (origin, _DONE if origin in origins else state)
                for origin, state in pairs)

    def refine(self, cond: Optional[ast.expr], branch: Optional[bool],
               facts: Facts) -> Facts:
        if cond is None or branch is None:
            return facts
        if isinstance(cond, (ast.For, ast.AsyncFor)):
            return self._refine_for(cond, branch, facts)
        var, empty_when = self._emptiness_test(cond)
        if var is None or var not in facts:
            return facts
        if branch == empty_when:
            facts = dict(facts)
            facts[var] = frozenset((o, _DONE) for o, _ in facts[var])
        return facts

    def _refine_for(self, stmt: ast.AST, branch: bool, facts: Facts) -> Facts:
        pairs: FrozenSet[Tuple] = frozenset()
        acquiring = _is_acquire(stmt.iter, self.spec)
        iter_names = _names_in(stmt.iter) & facts.keys()
        if acquiring is not None:
            # `for lease in queue.lease_many(n):` — each element is a
            # fresh resource bound to the loop variable.
            pairs = frozenset({(acquiring.lineno, _OPEN)})
        elif iter_names:
            facts = dict(facts)
            for name in iter_names:
                pairs |= facts[name]
                # Iterating the collection transfers ownership of its
                # elements to the loop variable.
                facts[name] = frozenset((o, _DONE) for o, _ in facts[name])
        else:
            return facts
        if branch and isinstance(stmt.target, ast.Name):
            facts = dict(facts)
            facts[stmt.target.id] = pairs
        return facts

    @staticmethod
    def _emptiness_test(cond: ast.expr) -> Tuple[Optional[str], Optional[bool]]:
        """Recognize None/emptiness tests: returns (var, branch-on-which-
        the-value-is-absent)."""
        if isinstance(cond, ast.Name):
            return cond.id, False          # `if lease:` — false branch: absent
        if (isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not)
                and isinstance(cond.operand, ast.Name)):
            return cond.operand.id, True   # `if not leases:` — true: absent
        if (isinstance(cond, ast.Compare) and len(cond.ops) == 1
                and isinstance(cond.left, ast.Name)
                and isinstance(cond.comparators[0], ast.Constant)
                and cond.comparators[0].value is None):
            if isinstance(cond.ops[0], ast.Is):
                return cond.left.id, True   # `if lease is None:`
            if isinstance(cond.ops[0], ast.IsNot):
                return cond.left.id, False  # `if lease is not None:`
        return None, None


def scan_protocol(source: SourceFile, func: ast.FunctionDef,
                  spec: ProtocolSpec) -> Iterator[Finding]:
    """Run one protocol's typestate analysis over one function."""
    attr_calls, name_calls = _call_names(func)
    if not (attr_calls & spec.acquire_methods
            or name_calls & spec.acquire_constructors):
        return
    cfg = build_cfg(func)
    in_facts = run_forward(cfg, _TypestateAnalysis(spec))
    exit_facts = in_facts.get(cfg.exit, {})
    leaked: Dict[int, Set[str]] = {}
    for var, pairs in exit_facts.items():
        for origin, state in pairs:
            if state == _OPEN:
                leaked.setdefault(origin, set()).add(var)
    for origin in sorted(leaked):
        synthetic = ast.Pass()
        synthetic.lineno = origin
        synthetic.col_offset = 0
        names = ", ".join(sorted(leaked[origin]))
        yield _finding(
            source, spec.check_id, synthetic,
            f"{spec.resource} acquired here (held in {names}) may reach the "
            f"exit of {func.name}() without {spec.release_verbs} on some path",
            spec.hint,
        )


def run_value_protocol(source: SourceFile,
                       spec: ProtocolSpec) -> Iterator[Finding]:
    for func in _all_functions(source.tree):
        yield from scan_protocol(source, func, spec)


def check_subscription_lifecycle(source: SourceFile) -> Iterator[Finding]:
    """Every subscription opened via ``pubsub.subscribe``/
    ``subscribe_prefix`` or a stream ``subscribe`` must reach
    ``unsubscribe``/``detach``/``close`` on *every* path to function
    exit — error and raise paths included.

    A leaked pubsub token keeps delivering into a dead callback forever
    (the PR 7 ``_future_for`` leak class); a leaked stream subscription
    pins its credit window and queue.  Handoffs waive: storing the
    token in a field, returning it, or passing it to any call
    transfers ownership to the holder.
    """
    yield from run_value_protocol(source, SUBSCRIPTION_PROTOCOL)


def check_spill_lifecycle(source: SourceFile) -> Iterator[Finding]:
    """Every DataRef obtained from a spill store's ``put`` must be
    deleted or handed off (``as_argument``, stored, returned, passed
    onward) on every path, or the staging store leaks one payload per
    undelivered result.

    The server-side contract: a spilled payload is deleted when its
    batch is acked (``drop_spill``) and when an erroring consumer is
    detached or the subscription closes with the batch undelivered.
    """
    yield from run_value_protocol(source, SPILL_PROTOCOL)


def check_future_resolution(source: SourceFile) -> Iterator[Finding]:
    """A created ``FuncXFuture`` must reach exactly one of
    ``set_result``/``set_exception``/``cancel`` — or escape to an owner
    (returned, stored, passed onward) — on every non-raising path in
    the creating function.

    The static side enforces *at-least-once* resolution per path
    (a dropped unresolved future blocks its waiter forever); the
    runtime side of exactly-once is the future's own double-resolve
    ``RuntimeError``.  Explicit ``raise`` paths are waived: an
    unresolved local future is garbage-collectable.
    """
    yield from run_value_protocol(source, FUTURE_PROTOCOL)


# ======================================================================
# credit-balance: receiver-effect protocol with one-level summaries
# ======================================================================
_CREDIT_CLASS = "CreditLedger"
_CREDIT_SPELLING = "credits"
_CREDIT_RELEASES = {"release", "revoke"}

_CREDIT_HINT = (
    "a consumed credit must be released/revoked on every path (the ledger "
    "clamps duplicate releases, so over-releasing on a shared path is safe); "
    "credits deliberately retired with their resource, or released by "
    "another component (worker-side release), take "
    "`# lint: ignore[credit-balance]` on the consume line"
)


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    return None


def _class_attr_types(classdef: ast.ClassDef,
                      known_classes: Set[str]) -> Dict[str, str]:
    """``self.attr = ClassName(...)`` / ``attr: ClassName`` bindings."""
    types: Dict[str, str] = {}
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name) and callee.id in known_classes:
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        types[target.attr] = callee.id
        elif isinstance(node, ast.AnnAssign):
            name = _annotation_name(node.annotation)
            if name in known_classes and isinstance(node.target, ast.Name):
                types[node.target.id] = name
    return types


def _local_obj_types(func: ast.FunctionDef,
                     known_classes: Set[str]) -> Dict[str, str]:
    """``x = ClassName(...)`` locals plus ``x: ClassName`` parameters."""
    types: Dict[str, str] = {}
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        name = _annotation_name(arg.annotation)
        if name in known_classes:
            types[arg.arg] = name
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in known_classes):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = node.value.func.id
    return types


def _is_credit_receiver(recv: ast.expr, local_types: Dict[str, str],
                        attr_types: Dict[str, str]) -> bool:
    last = _last_segment(recv)
    if last == _CREDIT_SPELLING:
        return True
    if isinstance(recv, ast.Name):
        return local_types.get(recv.id) == _CREDIT_CLASS
    if (isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"):
        return attr_types.get(recv.attr) == _CREDIT_CLASS
    return False


def _iter_class_functions(tree: ast.Module):
    """Yield (classdef-or-None, func) pairs, innermost class wins."""

    def walk(node, owner):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield owner, child
                yield from walk(child, owner)
            else:
                yield from walk(child, owner)

    yield from walk(tree, None)


def _direct_credit_releases(func: ast.FunctionDef,
                            local_types: Dict[str, str],
                            attr_types: Dict[str, str]) -> bool:
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CREDIT_RELEASES
                and _is_credit_receiver(node.func.value, local_types,
                                        attr_types)):
            return True
    return False


def _release_summaries(sources: List[SourceFile],
                       known_classes: Set[str]) -> Set[Tuple]:
    """Must-release summaries: (class, method) pairs — and
    (None, function) for module-level functions — that directly
    release/revoke a credit ledger.  One level only: summaries come
    from direct releases, and callers get one call-through."""
    releasing: Set[Tuple] = set()
    for source in sources:
        for owner, func in _iter_class_functions(source.tree):
            attr_types = (_class_attr_types(owner, known_classes)
                          if owner is not None else {})
            local_types = _local_obj_types(func, known_classes)
            if _direct_credit_releases(func, local_types, attr_types):
                key = owner.name if owner is not None else None
                releasing.add((key, func.name))
    return releasing


class _CreditFlow(ForwardAnalysis):
    """Facts: receiver spelling -> {(consume_line, "open"|"done")}."""

    def __init__(self, local_types, attr_types, obj_types, owner_name,
                 summaries):
        self.local_types = local_types
        self.attr_types = attr_types
        self.obj_types = obj_types        # name/attr -> class (any class)
        self.owner_name = owner_name
        self.summaries = summaries

    def _callee_releases(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id == "self":
                return (self.owner_name, func.attr) in self.summaries
            cls = None
            if isinstance(recv, ast.Name):
                cls = self.obj_types.get(recv.id)
            elif (isinstance(recv, ast.Attribute)
                  and isinstance(recv.value, ast.Name)
                  and recv.value.id == "self"):
                cls = self.obj_types.get(recv.attr)
            return cls is not None and (cls, func.attr) in self.summaries
        if isinstance(func, ast.Name):
            return (None, func.id) in self.summaries
        return False

    def transfer(self, stmt: ast.AST, facts: Facts) -> Facts:
        facts = dict(facts)
        for part in header_parts(stmt):
            for node in ast.walk(part):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and _is_credit_receiver(
                        func.value, self.local_types, self.attr_types):
                    spelling = _dotted(func.value) or func.attr
                    if func.attr == "consume":
                        facts[spelling] = (facts.get(spelling, frozenset())
                                           | {(node.lineno, _OPEN)})
                        continue
                    if func.attr in _CREDIT_RELEASES:
                        facts[spelling] = frozenset(
                            (o, _DONE)
                            for o, _ in facts.get(spelling, frozenset()))
                        continue
                if self._callee_releases(node):
                    # One-level call-through: a helper whose summary says
                    # it releases closes every open consume (coarse on
                    # purpose — one ledger per function in practice).
                    facts = {k: frozenset((o, _DONE) for o, _ in v)
                             for k, v in facts.items()}
        return facts


def check_credit_balance(sources: List[SourceFile]) -> Iterator[Finding]:
    """``CreditLedger.consume`` must reach ``release``/``revoke``.

    Two modes per consuming function, mirroring how the fabric really
    uses ledgers:

    * **Flow-sensitive** — when the function itself releases the same
      ledger, every path from a consume to the exit must release (or
      call a helper whose one-level must-release summary does);
      clamped duplicate releases are safe by ``CreditLedger``'s
      contract, so shared release paths never over-report.
    * **Containment** — when the release lives in another component
      (the manager consumes, the *worker* releases), the rule is
      global: some release/revoke on a same-named ledger must exist in
      the analyzed set, or the consume is a permanent credit leak.
    """
    known_classes = {
        node.name
        for source in sources
        for node in ast.walk(source.tree)
        if isinstance(node, ast.ClassDef)
    }

    # One pass over every function: per-class attr types are computed
    # once per ClassDef (not once per method — that made the check
    # quadratic in class size), and the same sweep yields the
    # must-release summaries, the containment universe of released
    # spellings, and the consume sites.
    attr_cache: Dict[int, Dict[str, str]] = {}

    def attrs_for(owner: Optional[ast.ClassDef]) -> Dict[str, str]:
        if owner is None:
            return {}
        cached = attr_cache.get(id(owner))
        if cached is None:
            cached = attr_cache[id(owner)] = _class_attr_types(
                owner, known_classes)
        return cached

    summaries: Set[Tuple] = set()
    released_spellings: Set[str] = set()
    per_function: List[Tuple] = []
    for source in sources:
        for owner, func in _iter_class_functions(source.tree):
            attr_types = attrs_for(owner)
            local_types = _local_obj_types(func, known_classes)
            consumes = []
            direct_release = False
            for node in ast.walk(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and _is_credit_receiver(node.func.value, local_types,
                                                attr_types)):
                    if node.func.attr in _CREDIT_RELEASES:
                        direct_release = True
                        released_spellings.add(
                            _last_segment(node.func.value) or "")
                    elif node.func.attr == "consume":
                        consumes.append(node)
            if direct_release:
                summaries.add((owner.name if owner is not None else None,
                               func.name))
            if consumes:
                per_function.append(
                    (source, owner, func, local_types, attr_types, consumes,
                     direct_release))

    for (source, owner, func, local_types, attr_types, consumes,
         direct_release) in per_function:
        if direct_release:
            obj_types = dict(attrs_for(owner))
            obj_types.update(_local_obj_types(func, known_classes))
            analysis = _CreditFlow(
                local_types, attr_types, obj_types,
                owner.name if owner is not None else None, summaries)
            cfg = build_cfg(func)
            exit_facts = run_forward(cfg, analysis).get(cfg.exit, {})
            leaked: Dict[int, str] = {}
            for spelling, pairs in exit_facts.items():
                for origin, state in pairs:
                    if state == _OPEN:
                        leaked[origin] = spelling
            for origin in sorted(leaked):
                synthetic = ast.Pass()
                synthetic.lineno = origin
                synthetic.col_offset = 0
                yield _finding(
                    source, CREDIT_BALANCE, synthetic,
                    f"credit(s) consumed here ({leaked[origin]}) may reach "
                    f"the exit of {func.name}() without release/revoke on "
                    f"some path",
                    _CREDIT_HINT,
                )
        else:
            for node in consumes:
                spelling = _last_segment(node.func.value) or ""
                if spelling in released_spellings:
                    continue
                yield _finding(
                    source, CREDIT_BALANCE, node,
                    f"credit(s) consumed here ({_dotted(node.func.value) or spelling}) "
                    f"are never released or revoked anywhere in the analyzed "
                    f"sources",
                    _CREDIT_HINT,
                )


# ======================================================================
# handler-exhaustiveness: global wire-message dispatch coverage
# ======================================================================
_HANDLER_HINT = (
    "add an isinstance (or match-case) arm consuming this message type in "
    "the forwarder/agent/manager/service/stream dispatch layer, or delete "
    "the type; an unconsumed wire type is dropped on the floor at runtime; "
    "for deliberately send-only types add "
    "`# lint: ignore[handler-exhaustiveness]` on the class line"
)


def _type_names(node: ast.expr) -> Set[str]:
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.Tuple):
        names: Set[str] = set()
        for elt in node.elts:
            names |= _type_names(elt)
        return names
    return set()


def _wire_universe(sources: List[SourceFile]) -> Dict[str, Tuple]:
    """Concrete Message subclasses in the wire module: name -> (source,
    classdef).  Subclassing is resolved transitively within the module."""
    universe: Dict[str, Tuple] = {}
    for source in sources:
        if source.module != WIRE_MODULE:
            continue
        classes = {node.name: node for node in source.tree.body
                   if isinstance(node, ast.ClassDef)}
        base_names = {name: {b for cls_base in cls.bases
                             for b in _type_names(cls_base)}
                      for name, cls in classes.items()}

        def derives_from_message(name: str, seen: Set[str]) -> bool:
            if name in seen:
                return False
            seen.add(name)
            bases = base_names.get(name, set())
            if "Message" in bases:
                return True
            return any(b in classes and derives_from_message(b, seen)
                       for b in bases)

        for name, cls in classes.items():
            if name != "Message" and derives_from_message(name, set()):
                universe[name] = (source, cls)
    return universe


def check_handler_exhaustiveness(sources: List[SourceFile]) -> Iterator[Finding]:
    """Every concrete wire message type (``repro.transport.messages``)
    must be consumed by an ``isinstance`` or ``match-case`` dispatch
    somewhere in the analyzed sources.

    The transport is duck-typed: a message nobody dispatches on is
    silently dropped by every ``step()`` loop, which is how a new
    message type ships half-wired.  The check arms only when the
    analyzed set contains a dispatch layer (at least one wire type is
    consumed), so scanning the wire module alone stays quiet.
    """
    universe = _wire_universe(sources)
    if not universe:
        return
    consumed: Set[str] = set()
    for source in sources:
        for node in ast.walk(source.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                consumed |= _type_names(node.args[1])
            elif isinstance(node, ast.MatchClass):
                consumed |= _type_names(node.cls)
    if not (consumed & set(universe)):
        return  # no dispatch layer in this set: not armed
    for name in sorted(set(universe) - consumed):
        source, cls = universe[name]
        yield _finding(
            source, HANDLER_EXHAUSTIVENESS, cls,
            f"wire message type {name} is never consumed by an isinstance/"
            f"match dispatch anywhere in the analyzed sources",
            _HANDLER_HINT,
        )


# ======================================================================
# static site export for the runtime ProtocolRecorder acceptance gate
# ======================================================================
def protocol_sites(sources: List[SourceFile]) -> Dict[str, Dict[str, List[str]]]:
    """Static acquire/release sites per runtime protocol.

    Returns ``{protocol: {verb: ["module:line", ...]}}`` in the same
    (protocol, verb) vocabulary :class:`repro.analysis.sanitizer.
    ProtocolRecorder` records, so the chaos acceptance gate can assert
    every runtime-observed event has a static site
    (``observed ⊆ sites``), mirroring the lock-graph subset gate.
    """
    sites: Dict[str, Dict[str, List[str]]] = {
        "credit": {}, "subscription": {}, "stream": {},
    }

    def add(protocol: str, verb: str, source: SourceFile,
            node: ast.AST) -> None:
        sites[protocol].setdefault(verb, []).append(
            f"{source.module}:{getattr(node, 'lineno', 0)}")

    for source in sources:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            recv = _last_segment(node.func.value)
            if recv == _CREDIT_SPELLING and attr in {
                    "grant", "revoke", "consume", "release"}:
                add("credit", attr, source, node)
            elif recv == "pubsub" and attr in {"subscribe",
                                               "subscribe_prefix"}:
                add("subscription", "subscribe", source, node)
            elif recv == "pubsub" and attr == "unsubscribe":
                add("subscription", "unsubscribe", source, node)
            elif recv == "result_stream" and attr == "subscribe":
                add("stream", "subscribe", source, node)
            elif recv in {"subscription", "sub"} and attr in {"close",
                                                              "detach"}:
                add("stream", attr, source, node)
    return sites
