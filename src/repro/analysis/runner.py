"""Run the checks over files and fold in waivers and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.checks import (
    check_blocking_under_lock,
    check_clock_domain,
    check_determinism,
    check_guarded_by,
    check_lease_ack,
    check_span_lifecycle,
    check_wire_compat,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.lockorder import check_lock_order
from repro.analysis.protocols import (
    check_credit_balance,
    check_future_resolution,
    check_handler_exhaustiveness,
    check_spill_lifecycle,
    check_subscription_lifecycle,
)
from repro.analysis.source import SourceFile, load_source, module_name_for
from repro.analysis.threadroles import check_thread_roles, make_thread_roles_check

Check = Callable[[SourceFile], Iterator[Finding]]
GlobalCheck = Callable[[list[SourceFile]], Iterator[Finding]]

#: Check-id → implementation; order is report order for same-line findings.
ALL_CHECKS: dict[str, Check] = {
    "guarded-by": check_guarded_by,
    "determinism": check_determinism,
    "wire-compat": check_wire_compat,
    "blocking-under-lock": check_blocking_under_lock,
    "clock-domain": check_clock_domain,
    "lease-ack": check_lease_ack,
    "span-lifecycle": check_span_lifecycle,
    "subscription-lifecycle": check_subscription_lifecycle,
    "spill-lifecycle": check_spill_lifecycle,
    "future-resolution": check_future_resolution,
}

#: Checks that need the whole tree at once (cross-file graphs and
#: cross-component resource protocols).  They run after the per-file
#: pass; waivers still apply per finding line.
GLOBAL_CHECKS: dict[str, GlobalCheck] = {
    "lock-order": check_lock_order,
    "credit-balance": check_credit_balance,
    "handler-exhaustiveness": check_handler_exhaustiveness,
    "threadroles": check_thread_roles,
}


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    findings: list[Finding] = field(default_factory=list)   # new (not baselined)
    infos: list[Finding] = field(default_factory=list)       # advisory severity
    suppressed: list[Finding] = field(default_factory=list)  # matched by baseline
    stale: list[BaselineEntry] = field(default_factory=list)
    files_analyzed: int = 0
    errors: list[str] = field(default_factory=list)          # unparseable files

    @property
    def ok(self) -> bool:
        """Build health: info-severity findings never fail a run."""
        return not self.findings and not self.errors

    def all_findings(self) -> list[Finding]:
        return sort_findings(self.findings + self.suppressed)

    def to_record(self) -> dict:
        def emit(findings: list[Finding]) -> list[dict]:
            # Byte-stable JSON: deterministic (check, path, line) order,
            # independent of check registration / dict iteration order.
            ordered = sorted(findings, key=lambda f: (f.check, f.path, f.line))
            return [f.to_record() for f in ordered]

        return {
            "ok": self.ok,
            "files_analyzed": self.files_analyzed,
            "findings": emit(self.findings),
            "infos": emit(self.infos),
            "suppressed": emit(self.suppressed),
            "stale": [e.to_record() for e in self.stale],
            "errors": list(self.errors),
        }


def analyze_source(source: SourceFile,
                   checks: dict[str, Check] | None = None) -> list[Finding]:
    """All non-waived findings for one parsed file (global checks run
    over the single file, so fixtures exercise them too)."""
    active = checks if checks is not None else ALL_CHECKS
    findings: list[Finding] = []
    for check_id, check in active.items():
        for finding in check(source):
            if not source.is_ignored(finding.line, check_id):
                findings.append(finding)
    if checks is None:
        findings.extend(_run_global_checks([source]))
    return sort_findings(findings)


def _run_global_checks(sources: list[SourceFile],
                       global_checks: dict[str, GlobalCheck] | None = None
                       ) -> list[Finding]:
    active = global_checks if global_checks is not None else GLOBAL_CHECKS
    by_path = {source.path: source for source in sources}
    findings: list[Finding] = []
    for check_id, check in active.items():
        for finding in check(sources):
            source = by_path.get(finding.path)
            if source is not None and source.is_ignored(finding.line, check_id):
                continue
            findings.append(finding)
    return findings


def iter_python_files(root: Path) -> Iterator[Path]:
    """Python files under ``root`` (a file or directory), sorted, skipping
    caches and hidden directories."""
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") or part == "__pycache__"
               for part in path.parts):
            continue
        yield path


def analyze_paths(paths: list[Path], repo_root: Path | None = None,
                  checks: dict[str, Check] | None = None,
                  global_checks: dict[str, GlobalCheck] | None = None,
                  roles: list[str] | None = None) -> AnalysisReport:
    """Analyze every Python file under ``paths`` (no baseline applied).

    ``checks``/``global_checks`` select subsets (``repro lint
    --protocols``); with both ``None`` every registered check runs.
    Passing only ``checks`` keeps the historical behavior of skipping
    the global pass entirely.  ``roles`` restricts the thread-role pass
    to findings involving those roles (``repro lint --roles``).
    """
    repo_root = repo_root or Path.cwd()
    if roles is not None:
        global_checks = dict(global_checks if global_checks is not None
                             else GLOBAL_CHECKS)
        if "threadroles" in global_checks:
            global_checks["threadroles"] = make_thread_roles_check(roles)
    report = AnalysisReport()
    sources: list[SourceFile] = []
    for root in paths:
        for file_path in iter_python_files(root):
            try:
                rel = file_path.resolve().relative_to(repo_root.resolve())
                rel_path = rel.as_posix()
            except ValueError:
                rel_path = file_path.as_posix()
            module = module_name_for(rel_path) or file_path.stem
            try:
                source = load_source(file_path, rel_path, module)
            except (SyntaxError, UnicodeDecodeError) as exc:
                report.errors.append(f"{rel_path}: {exc}")
                continue
            report.files_analyzed += 1
            sources.append(source)
            report.findings.extend(analyze_source(
                source, checks if checks is not None else ALL_CHECKS))
    if checks is None and global_checks is None:
        # Global (cross-file) checks run once over the whole tree so the
        # lock-order graph sees every edge, not one file at a time.
        report.findings.extend(_run_global_checks(sources))
    elif global_checks is not None:
        report.findings.extend(_run_global_checks(sources, global_checks))
    report.infos = sort_findings(
        [f for f in report.findings if f.severity != "error"])
    report.findings = sort_findings(
        [f for f in report.findings if f.severity == "error"])
    return report


def run_analysis(paths: list[Path], repo_root: Path | None = None,
                 baseline: Baseline | None = None,
                 checks: dict[str, Check] | None = None,
                 global_checks: dict[str, GlobalCheck] | None = None,
                 roles: list[str] | None = None) -> AnalysisReport:
    """Analyze ``paths`` and split findings against ``baseline``.

    Only error-severity findings are baselined (and only they gate
    :attr:`AnalysisReport.ok`); info findings ride along unfiltered.
    """
    report = analyze_paths(paths, repo_root=repo_root, checks=checks,
                           global_checks=global_checks, roles=roles)
    if baseline is not None and len(baseline):
        new, suppressed, stale = baseline.apply(report.findings)
        report.findings = new
        report.suppressed = suppressed
        report.stale = stale
    return report
