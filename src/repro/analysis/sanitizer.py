"""Runtime lock-order sanitizer: the dynamic half of the lock-order check.

The static extractor (:mod:`repro.analysis.lockorder`) sees every
*lexical* acquisition; this module observes the *actual* ones.  A
:class:`SanitizedLock` wraps a ``threading.Lock``/``RLock``/``Condition``
and reports each acquire/release to a :class:`LockOrderRecorder`, which

* keeps a per-thread acquisition stack,
* records instance-level order edges (held -> newly acquired) with the
  acquiring thread and a monotonic timestamp as witness,
* detects cycles **live** on every new edge (a cycle means two threads
  have demonstrably acquired the same locks in opposite orders),
* flags lock-hold-time outliers against a configurable threshold, and
* exports acquisition/contention counters and wait/hold histograms
  through the shared :class:`repro.metrics.registry.MetricsRegistry`.

Edges are recorded per *instance* (two ``ReliableQueue`` locks are
different nodes, so a real A-then-B / B-then-A inversion between two
queues is caught) but exported per *class* via :meth:`class_graph`, in
the same ``ClassName.attr`` node vocabulary the static graph uses —
``runtime_graph.is_subgraph_of(static_graph)`` is the chaos-suite
acceptance gate.  Class-level self-edges are dropped on export to match
the static side, which cannot tell instances apart.

Opt in with ``LocalDeployment(sanitize_locks=True)`` or
``ChaosWorld(..., sanitize_locks=True)``; see docs/CHAOS.md.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.lockorder import LockOrderGraph, Witness
from repro.analysis.threadroles import role_for_thread

DEFAULT_HOLD_OUTLIER_SECONDS = 0.25
#: Wait longer than this counts as contention (a free lock acquires in
#: nanoseconds; anything visible means another thread held it).
CONTENTION_WAIT_SECONDS = 0.001


@dataclass(frozen=True)
class CycleReport:
    """A runtime-observed lock-order cycle (potential deadlock)."""

    nodes: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    thread: str

    def format(self) -> str:
        path = " -> ".join(self.nodes + (self.nodes[0],))
        return f"lock-order cycle observed at runtime ({self.thread}): {path}"


@dataclass(frozen=True)
class HoldOutlier:
    lock: str
    seconds: float
    thread: str


@dataclass
class _EdgeInfo:
    count: int = 0
    threads: set = field(default_factory=set)
    first_line: int = 0


class LockOrderRecorder:
    """Collects acquisition stacks and order edges from SanitizedLocks."""

    def __init__(self, metrics=None, clock=None,
                 hold_outlier_seconds: float = DEFAULT_HOLD_OUTLIER_SECONDS) -> None:
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._metrics = metrics
        self._hold_outlier_seconds = hold_outlier_seconds
        self._tls = threading.local()
        self._mutex = threading.Lock()  # guards the edge/cycle tables
        self._instance_edges: Dict[Tuple[str, str], _EdgeInfo] = {}
        self._class_edges: Dict[Tuple[str, str], _EdgeInfo] = {}
        self._instance_counter = 0
        self.cycles: List[CycleReport] = []
        self.outliers: List[HoldOutlier] = []
        self.acquisitions = 0
        if metrics is not None:
            self._c_acquired = metrics.counter("sanitizer.lock_acquisitions")
            self._c_contended = metrics.counter("sanitizer.lock_contention")
            self._c_cycles = metrics.counter("sanitizer.lock_order_cycles")
            self._c_outliers = metrics.counter("sanitizer.lock_hold_outliers")
            self._h_wait = metrics.histogram("sanitizer.lock_wait_seconds")
            self._h_hold = metrics.histogram("sanitizer.lock_hold_seconds")
        else:
            self._c_acquired = self._c_contended = None
            self._c_cycles = self._c_outliers = None
            self._h_wait = self._h_hold = None

    # -- wiring ---------------------------------------------------------------
    def next_instance_id(self) -> int:
        with self._mutex:
            self._instance_counter += 1
            return self._instance_counter

    def _stack(self) -> List[Tuple["SanitizedLock", float]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- events ---------------------------------------------------------------
    def on_acquired(self, lock: "SanitizedLock", waited: float) -> None:
        stack = self._stack()
        thread = threading.current_thread().name
        with self._mutex:
            self.acquisitions += 1
            for held, _t0 in stack:
                if held.instance_name == lock.instance_name:
                    continue  # RLock re-entry: not an order edge
                self._add_edge(held, lock, thread)
        stack.append((lock, self._clock()))
        if self._c_acquired is not None:
            self._c_acquired.inc()
            self._h_wait.observe(waited)
            if waited >= CONTENTION_WAIT_SECONDS:
                self._c_contended.inc()

    def on_released(self, lock: "SanitizedLock") -> None:
        stack = self._stack()
        acquired_at: Optional[float] = None
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is lock:
                acquired_at = stack[i][1]
                del stack[i]
                break
        if acquired_at is None:
            return
        held_for = self._clock() - acquired_at
        if self._h_hold is not None:
            self._h_hold.observe(held_for)
        if held_for >= self._hold_outlier_seconds:
            outlier = HoldOutlier(lock=lock.class_name, seconds=held_for,
                                  thread=threading.current_thread().name)
            with self._mutex:
                self.outliers.append(outlier)
            if self._c_outliers is not None:
                self._c_outliers.inc()

    def _add_edge(self, held: "SanitizedLock", acquired: "SanitizedLock",
                  thread: str) -> None:
        # caller holds self._mutex
        ikey = (held.instance_name, acquired.instance_name)
        fresh = ikey not in self._instance_edges
        info = self._instance_edges.setdefault(ikey, _EdgeInfo())
        info.count += 1
        info.threads.add(thread)
        ckey = (held.class_name, acquired.class_name)
        cinfo = self._class_edges.setdefault(ckey, _EdgeInfo())
        cinfo.count += 1
        cinfo.threads.add(thread)
        if fresh:
            cycle = self._find_cycle(ikey)
            if cycle is not None:
                self.cycles.append(CycleReport(
                    nodes=tuple(cycle),
                    edges=tuple(zip(cycle, cycle[1:] + [cycle[0]])),
                    thread=thread,
                ))
                if self._c_cycles is not None:
                    self._c_cycles.inc()

    def _find_cycle(self, new_edge: Tuple[str, str]) -> Optional[List[str]]:
        """A path acquired -> ... -> held closes a cycle through the new
        held -> acquired edge.  Caller holds self._mutex."""
        src, dst = new_edge
        # DFS from dst looking for src.
        stack: List[Tuple[str, List[str]]] = [(dst, [src, dst])]
        succs: Dict[str, List[str]] = {}
        for a, b in self._instance_edges:
            succs.setdefault(a, []).append(b)
        seen = {dst}
        while stack:
            node, path = stack.pop()
            for nxt in sorted(succs.get(node, ())):
                if nxt == src:
                    return path
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- export ---------------------------------------------------------------
    def class_graph(self) -> LockOrderGraph:
        """The observed order edges, collapsed to ``ClassName.attr``
        nodes (self-edges dropped) for comparison with the static graph."""
        graph = LockOrderGraph()
        with self._mutex:
            for (src, dst), info in sorted(self._class_edges.items()):
                if src == dst:
                    continue
                graph.add_edge(src, dst, Witness(
                    path="<runtime>",
                    line=0,
                    symbol=",".join(sorted(info.threads)),
                    detail=f"observed {info.count}x at runtime",
                ))
        return graph

    def instance_edges(self) -> Dict[Tuple[str, str], int]:
        with self._mutex:
            return {key: info.count
                    for key, info in sorted(self._instance_edges.items())}


class SanitizedLock:
    """Drop-in wrapper for a Lock/RLock/Condition that reports to a
    :class:`LockOrderRecorder`.

    Proxies the full Condition protocol: ``wait`` releases the lock (the
    wrapper pops it from the held stack for the duration so no spurious
    order edges are recorded against locks acquired by other threads
    while we sleep), ``notify``/``notify_all`` pass straight through.
    """

    def __init__(self, inner, class_name: str,
                 recorder: LockOrderRecorder) -> None:
        self._inner = inner
        self.class_name = class_name
        self.instance_name = f"{class_name}#{recorder.next_instance_id()}"
        self._recorder = recorder

    # -- lock protocol --------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        t0 = self._recorder._clock()
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._recorder.on_acquired(self, self._recorder._clock() - t0)
        return got

    def release(self) -> None:
        self._recorder.on_released(self)
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return locked() if locked is not None else False

    # -- condition protocol ---------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        self._recorder.on_released(self)
        try:
            return self._inner.wait(timeout)
        finally:
            self._recorder.on_acquired(self, 0.0)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        self._recorder.on_released(self)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._recorder.on_acquired(self, 0.0)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


def sanitize_lock(obj, recorder: LockOrderRecorder, attr: str = "_lock",
                  class_name: Optional[str] = None) -> SanitizedLock:
    """Replace ``obj.<attr>`` with a SanitizedLock (idempotent).

    Must be called before the object's threads start: the swap is not
    atomic with respect to concurrent acquirers of the old lock.
    """
    inner = getattr(obj, attr)
    if isinstance(inner, SanitizedLock):
        return inner
    name = class_name or f"{type(obj).__name__}.{attr}"
    wrapped = SanitizedLock(inner, class_name=name, recorder=recorder)
    setattr(obj, attr, wrapped)
    return wrapped


# ==========================================================================
# ProtocolRecorder: runtime twin of the resource-protocol (typestate) checks
# ==========================================================================
class ProtocolRecorder:
    """Counts runtime acquire/release events per resource protocol.

    The static engine (:mod:`repro.analysis.protocols`) proves every
    *lexical* acquire reaches a release; this records the *actual*
    events a live fabric performs — credit ledger transitions, pubsub
    subscribe/unsubscribe, stream subscription open/close — keyed as
    ``(protocol, verb)`` in the same vocabulary
    :func:`repro.analysis.protocols.protocol_sites` exports from the
    sources.  The chaos acceptance gate asserts ``observed() ⊆ static
    sites`` (every runtime event has a lexical site the checker
    analyzed), mirroring the lock-graph subset gate, plus the balance
    laws the checks promise: per-ledger ``released <= consumed`` and
    ``unsubscribes <= subscribes``.

    Opt in with ``LocalDeployment(sanitize_locks=True)`` or
    ``ChaosWorld(..., sanitize_locks=True)``; the recorder rides along
    the lock sanitizer as ``deployment.protocol_recorder``.
    """

    def __init__(self, metrics=None):
        self._mutex = threading.Lock()
        self._events: Dict[Tuple[str, str], int] = {}  # guarded-by: self._mutex
        self._ledgers: List["RecordedLedger"] = []     # guarded-by: self._mutex
        self._c_events = (metrics.counter("sanitizer.protocol_events")
                          if metrics is not None else None)

    def record(self, protocol: str, verb: str, amount: int = 1) -> None:
        if amount <= 0:
            return
        with self._mutex:
            key = (protocol, verb)
            self._events[key] = self._events.get(key, 0) + amount
        if self._c_events is not None:
            self._c_events.inc(amount)

    def register_ledger(self, ledger: "RecordedLedger") -> None:
        """Track a fully-wrapped ledger for the strict balance check."""
        with self._mutex:
            self._ledgers.append(ledger)

    # -- views ----------------------------------------------------------------
    def events(self) -> Dict[Tuple[str, str], int]:
        with self._mutex:
            return dict(self._events)

    def observed(self) -> set:
        """The distinct ``(protocol, verb)`` pairs seen at runtime."""
        with self._mutex:
            return set(self._events)

    def count(self, protocol: str, verb: str) -> int:
        with self._mutex:
            return self._events.get((protocol, verb), 0)

    def ledgers(self) -> List["RecordedLedger"]:
        with self._mutex:
            return list(self._ledgers)


class RecordedLedger:
    """Duck-typed ``CreditLedger`` proxy recording credit events.

    Counts the *effective* amounts (the ledger clamps, so a duplicate
    release records nothing) and keeps per-ledger consumed/released
    totals for the strict balance assertion.  Everything else proxies
    through, so heartbeat/advertisement reads see the real books.
    """

    def __init__(self, inner, recorder: ProtocolRecorder):
        self._inner = inner
        self._recorder = recorder
        self._mutex = threading.Lock()
        # The sanitizer substitutes this wrapper for the real ledger at
        # runtime, so static role inference never sees the cross-thread
        # callers that reach these counters through the swapped object.
        self.consumed_seen = 0   # guarded-by: self._mutex  # lint: ignore[threadroles]
        self.released_seen = 0   # guarded-by: self._mutex  # lint: ignore[threadroles]

    def grant(self, n: int = 1) -> int:
        granted = self._inner.grant(n)
        self._recorder.record("credit", "grant", n)
        return granted

    def revoke(self, n: int = 1) -> int:
        revoked = self._inner.revoke(n)
        self._recorder.record("credit", "revoke", revoked)
        return revoked

    def consume(self, n: int = 1) -> int:
        taken = self._inner.consume(n)
        if taken:
            with self._mutex:
                self.consumed_seen += taken
        self._recorder.record("credit", "consume", taken)
        return taken

    def release(self, n: int = 1) -> int:
        returned = self._inner.release(n)
        if returned:
            with self._mutex:
                self.released_seen += returned
        self._recorder.record("credit", "release", returned)
        return returned

    def __getattr__(self, name):
        return getattr(self._inner, name)


def sanitize_ledger(obj, recorder: ProtocolRecorder, attr: str = "credits",
                    strict: bool = False) -> "RecordedLedger":
    """Replace ``obj.<attr>`` with a RecordedLedger (idempotent).

    ``strict=True`` registers the ledger for the released<=consumed
    balance assertion — only safe when *every* holder of the ledger
    reference is wrapped (a manager's workers capture the raw ledger in
    ``Manager.__init__``, so manager ledgers stay non-strict: their
    worker-side releases are invisible to the recorder).
    """
    inner = getattr(obj, attr)
    if isinstance(inner, RecordedLedger):
        return inner
    wrapped = RecordedLedger(inner, recorder)
    if strict:
        recorder.register_ledger(wrapped)
    setattr(obj, attr, wrapped)
    return wrapped


# ==========================================================================
# AccessRecorder: runtime twin of the thread-role inference pass
# ==========================================================================
class AccessRecorder:
    """Tags attribute accesses on guarded classes with thread identity.

    The static pass (:mod:`repro.analysis.threadroles`) infers which
    ``ClassName.attr`` slots are reachable from several thread *roles*;
    this recorder observes the accesses a live fabric actually performs,
    mapping each accessing thread onto the same role taxonomy via
    :func:`repro.analysis.threadroles.role_for_thread`.  The chaos
    acceptance gate asserts every attribute observed from ≥ 2 roles at
    runtime is already in the static shared-set
    (:meth:`repro.analysis.threadroles.RoleReport.shared_attrs`) — the
    same runtime ⊆ static sandwich the lock-order and protocol twins
    use.

    ``sample_every`` thins the per-access *counters* (the hot-path cost
    knob); the role evidence itself — which roles touched which attr —
    is exact, never sampled, because a dropped first-sighting would
    make the gate unsound.
    """

    def __init__(self, metrics=None, sample_every: int = 1):
        self._mutex = threading.Lock()
        self._sample_every = max(1, int(sample_every))
        self._roles: Dict[str, set] = {}        # "Class.attr" -> roles seen
        self._writer_roles: Dict[str, set] = {}  # "Class.attr" -> writing roles
        self._ticks: Dict[str, int] = {}
        self._counts: Dict[Tuple[str, str, str], int] = {}  # (key, role, kind)
        #: per-recorder cache of tracked subclasses, keyed (class, attrs)
        self._class_cache: Dict[Tuple[type, frozenset], type] = {}
        self._c_accesses = (metrics.counter("sanitizer.attr_accesses")
                            if metrics is not None else None)

    def observe(self, class_name: str, attr: str, kind: str) -> None:
        role = role_for_thread(threading.current_thread().name)
        key = f"{class_name}.{attr}"
        sampled = False
        with self._mutex:
            tick = self._ticks.get(key, 0)
            self._ticks[key] = tick + 1
            self._roles.setdefault(key, set()).add(role)
            if kind == "write":
                self._writer_roles.setdefault(key, set()).add(role)
            if tick % self._sample_every == 0:
                sampled = True
                ckey = (key, role, kind)
                self._counts[ckey] = self._counts.get(ckey, 0) + 1
        if sampled and self._c_accesses is not None:
            self._c_accesses.inc()

    # -- views ----------------------------------------------------------------
    def observed_roles(self) -> Dict[str, frozenset]:
        """``ClassName.attr`` → the roles that touched it."""
        with self._mutex:
            return {key: frozenset(roles)
                    for key, roles in sorted(self._roles.items())}

    def cross_role_attrs(self) -> set:
        """Attributes observed from ≥ 2 distinct roles (any access kind)."""
        with self._mutex:
            return {key for key, roles in self._roles.items()
                    if len(roles) >= 2}

    def cross_role_writers(self) -> set:
        """Attributes *written* from ≥ 2 distinct roles."""
        with self._mutex:
            return {key for key, roles in self._writer_roles.items()
                    if len(roles) >= 2}

    def counts(self) -> Dict[Tuple[str, str, str], int]:
        """Sampled access counts keyed ``(Class.attr, role, kind)``."""
        with self._mutex:
            return dict(sorted(self._counts.items()))


def _tracked_subclass(cls: type, tracked: frozenset, class_name: str,
                      recorder: AccessRecorder) -> type:
    sub = recorder._class_cache.get((cls, tracked))
    if sub is not None:
        return sub

    def __getattribute__(self, attr):
        if attr in tracked:
            recorder.observe(class_name, attr, "read")
        return object.__getattribute__(self, attr)

    def __setattr__(self, attr, value):
        if attr in tracked:
            recorder.observe(class_name, attr, "write")
        object.__setattr__(self, attr, value)

    sub = type(f"_Tracked{cls.__name__}", (cls,), {
        "__getattribute__": __getattribute__,
        "__setattr__": __setattr__,
        "_repro_tracked_attrs": tracked,
    })
    recorder._class_cache[(cls, tracked)] = sub
    return sub


def sanitize_access(obj, recorder: AccessRecorder, attrs,
                    class_name: Optional[str] = None):
    """Rebind ``obj``'s class so reads/writes of ``attrs`` report to
    ``recorder`` (idempotent).

    Like :func:`sanitize_lock`, call before the object's threads start;
    the class swap is not atomic with respect to concurrent accessors.
    """
    cls = type(obj)
    if getattr(cls, "_repro_tracked_attrs", None) is not None:
        return obj
    name = class_name or cls.__name__
    obj.__class__ = _tracked_subclass(cls, frozenset(attrs), name, recorder)
    return obj


def sanitize_pubsub(pubsub, recorder: ProtocolRecorder):
    """Record subscription-protocol events on a ``PubSub`` (idempotent).

    Instance-level rebinds of ``subscribe``/``subscribe_prefix``/
    ``unsubscribe``; an unsubscribe only counts when it actually removed
    a token (the call is idempotent by contract), so the balance law
    ``unsubscribes <= subscribes`` holds exactly.
    """
    if getattr(pubsub, "_protocol_recorder", None) is not None:
        return pubsub
    inner_subscribe = pubsub.subscribe
    inner_prefix = pubsub.subscribe_prefix
    inner_unsubscribe = pubsub.unsubscribe

    def subscribe(topic, callback):
        token = inner_subscribe(topic, callback)
        recorder.record("subscription", "subscribe")
        return token

    def subscribe_prefix(prefix, callback):
        token = inner_prefix(prefix, callback)
        recorder.record("subscription", "subscribe")
        return token

    def unsubscribe(token):
        removed = inner_unsubscribe(token)
        if removed:
            recorder.record("subscription", "unsubscribe")
        return removed

    pubsub.subscribe = subscribe
    pubsub.subscribe_prefix = subscribe_prefix
    pubsub.unsubscribe = unsubscribe
    pubsub._protocol_recorder = recorder
    return pubsub


def sanitize_result_stream(server, recorder: ProtocolRecorder):
    """Record stream-subscription lifecycle + credit events (idempotent).

    Wraps ``server.subscribe`` so every subscription handed out records
    its open, swaps its credit window for a strict
    :class:`RecordedLedger` *before* any delivery can consume from it,
    and wraps ``close``/``detach`` on the subscription instance.
    """
    if getattr(server, "_protocol_recorder", None) is not None:
        return server
    inner_subscribe = server.subscribe

    def subscribe(*args, **kwargs):
        sub = inner_subscribe(*args, **kwargs)
        recorder.record("stream", "subscribe")
        sanitize_ledger(sub, recorder, attr="credits", strict=True)
        inner_close = sub.close
        inner_detach = sub.detach
        closed = threading.Event()

        def close():
            if not closed.is_set():
                closed.set()
                recorder.record("stream", "close")
            inner_close()

        def detach():
            recorder.record("stream", "detach")
            inner_detach()

        sub.close = close
        sub.detach = detach
        return sub

    server.subscribe = subscribe
    server._protocol_recorder = recorder
    return server
