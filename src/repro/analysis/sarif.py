"""SARIF 2.1.0 export of analyzer findings.

``repro lint --format sarif`` emits one SARIF run per invocation so CI
can upload findings as code-scanning annotations
(``github/codeql-action/upload-sarif``).  The mapping keeps the
analyzer's identity model intact:

* rule ids are the check names (``guarded-by``, ``threadroles``, ...),
  with descriptions pulled from each check's docstring;
* every result carries the same fingerprint baseline.py matches on, as
  ``partialFingerprints["reproFingerprint/v1"]``, so an annotation
  tracks a finding across unrelated edits exactly like the baseline
  does;
* error-severity findings map to SARIF level ``error``, advisory
  (info-severity) findings to ``note``, and baselined findings are
  included with a ``suppressions`` entry instead of being dropped —
  code scanning shows them as suppressed rather than new.

Results are ordered ``(check, path, line)`` — the same deterministic
sort ``--format json`` uses — so the document is byte-stable for
identical inputs.
"""

from __future__ import annotations

import inspect

from repro.analysis.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"

#: Finding severity → SARIF result level.
_LEVELS = {"error": "error", "info": "note"}


def _rules() -> list[dict]:
    """One SARIF rule per registered check, sorted by id."""
    from repro.analysis.runner import ALL_CHECKS, GLOBAL_CHECKS

    checks = {**ALL_CHECKS, **GLOBAL_CHECKS}
    rules = []
    for check_id in sorted(checks):
        doc = inspect.getdoc(checks[check_id]) or check_id
        rules.append({
            "id": check_id,
            "shortDescription": {"text": doc.strip().splitlines()[0]},
            "fullDescription": {"text": doc},
            "defaultConfiguration": {"level": "error"},
        })
    return rules


def _result(finding: Finding, rule_index: dict[str, int],
            suppressed: bool = False) -> dict:
    message = finding.message
    if finding.hint:
        message += f" (hint: {finding.hint})"
    result = {
        "ruleId": finding.check,
        "ruleIndex": rule_index.get(finding.check, -1),
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
        "partialFingerprints": {"reproFingerprint/v1": finding.fingerprint()},
    }
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "grandfathered in analysis-baseline.json",
        }]
    return result


def to_sarif(report) -> dict:
    """``AnalysisReport`` → a SARIF 2.1.0 document (a plain dict)."""
    from repro import __version__

    rules = _rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}

    def ordered(findings: list[Finding]) -> list[Finding]:
        return sorted(findings, key=lambda f: (f.check, f.path, f.line))

    results = [_result(f, rule_index)
               for f in ordered(report.findings + report.infos)]
    results += [_result(f, rule_index, suppressed=True)
                for f in ordered(report.suppressed)]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": __version__,
                "informationUri": "https://github.com/funcx-faas/funcX",
                "rules": rules,
            }},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
