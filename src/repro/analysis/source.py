"""The analyzer's view of one Python source file.

:class:`SourceFile` bundles the parsed AST with the comment markers the
checks consume.  Comments are extracted with :mod:`tokenize` (never by
string-scanning raw lines) so a ``#`` inside a string literal can never
masquerade as an annotation.

Recognized markers (all trailing comments):

``# guarded-by: self._lock``
    On an attribute assignment (``self._pending = ...``): declares the
    attribute guarded by that lock.  On a ``def`` line: declares that
    callers invoke the function with the lock already held.
``# clock-domain: monotonic`` / ``# clock-domain: wall``
    Declares which time domain the assigned clock belongs to.
``# lint: ignore`` / ``# lint: ignore[check-id, ...]``
    Waives findings on that line (all checks, or the listed ones).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")
_CLOCK_DOMAIN_RE = re.compile(r"#\s*clock-domain:\s*(monotonic|wall)\b")
_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([^\]]*)\])?")


@dataclass
class SourceFile:
    """A parsed module plus its analyzer annotations."""

    path: str                      # repo-relative posix path (report key)
    module: str                    # dotted module name, e.g. "repro.core.service"
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)      # line -> comment
    ignores: dict[int, frozenset[str]] = field(default_factory=dict)
    guard_comments: dict[int, str] = field(default_factory=dict)  # line -> lock name
    clock_domains: dict[int, str] = field(default_factory=dict)   # line -> domain

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def line_text(self, lineno: int) -> str:
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def is_ignored(self, lineno: int, check: str) -> bool:
        waived = self.ignores.get(lineno)
        if waived is None:
            return False
        return "*" in waived or check in waived


def parse_source(text: str, path: str, module: str) -> SourceFile:
    """Parse ``text`` into a :class:`SourceFile` (raises ``SyntaxError``)."""
    tree = ast.parse(text, filename=path)
    source = SourceFile(path=path, module=module, text=text, tree=tree)
    _collect_comments(source)
    return source


def load_source(file_path: Path, rel_path: str, module: str) -> SourceFile:
    text = file_path.read_text(encoding="utf-8")
    return parse_source(text, path=rel_path, module=module)


def module_name_for(rel_path: str) -> str | None:
    """Dotted module for a repo-relative path (``src`` layout aware).

    ``src/repro/core/service.py`` → ``repro.core.service``; paths outside
    a recognizable package root fall back to the stem chain.
    """
    parts = list(Path(rel_path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def _collect_comments(source: SourceFile) -> None:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source.text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno = token.start[0]
            comment = token.string
            source.comments[lineno] = comment
            guard = _GUARDED_BY_RE.search(comment)
            if guard:
                source.guard_comments[lineno] = guard.group(1)
            domain = _CLOCK_DOMAIN_RE.search(comment)
            if domain:
                source.clock_domains[lineno] = domain.group(1)
            ignore = _IGNORE_RE.search(comment)
            if ignore:
                listed = ignore.group(1)
                if listed is None:
                    source.ignores[lineno] = frozenset({"*"})
                else:
                    checks = frozenset(
                        item.strip() for item in listed.split(",") if item.strip()
                    )
                    source.ignores[lineno] = checks or frozenset({"*"})
    except tokenize.TokenError:
        # A file that parses but fails tokenization (rare) simply loses
        # its comment annotations; the AST checks still run.
        pass


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.expr) -> str | None:
    """``self._lock`` / ``queue.ack`` → the dotted path, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def qualified_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every function/class definition line to its qualified name."""
    table: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                table[child.lineno] = name
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return table


def enclosing_symbol(tree: ast.Module, lineno: int) -> str:
    """Qualified name of the innermost def/class containing ``lineno``."""
    best = "<module>"

    def walk(node: ast.AST, prefix: str) -> None:
        nonlocal best
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qname = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                if child.lineno <= lineno <= end:
                    best = qname
                walk(child, qname)
            else:
                walk(child, prefix)

    walk(tree, "")
    return best
