"""The analyzer's view of one Python source file.

:class:`SourceFile` bundles the parsed AST with the comment markers the
checks consume.  Comments are extracted with :mod:`tokenize` (never by
string-scanning raw lines) so a ``#`` inside a string literal can never
masquerade as an annotation.

Recognized markers (all trailing comments):

``# guarded-by: self._lock``
    On an attribute assignment (``self._pending = ...``): declares the
    attribute guarded by that lock.  On a ``def`` line: declares that
    callers invoke the function with the lock already held.
``# clock-domain: monotonic`` / ``# clock-domain: wall``
    Declares which time domain the assigned clock belongs to.
``# thread-confined: <role>``
    On an attribute assignment: declares that the attribute, despite
    being written from what looks like several thread roles, is only
    ever touched by the named role at runtime (publish-before-start:
    the other writes happen before the owning thread exists).
``# handoff``
    On an attribute write: declares a deliberate cross-thread transfer
    (queue-handoff idiom) whose happens-before edge is provided by the
    transfer mechanism itself; the write site is excluded from the
    thread-role race computation.
``# lint: ignore`` / ``# lint: ignore[check-id, ...]``
    Waives findings on that line (all checks, or the listed ones).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")
_CLOCK_DOMAIN_RE = re.compile(r"#\s*clock-domain:\s*(monotonic|wall)\b")
_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([^\]]*)\])?")
_CONFINED_RE = re.compile(r"#\s*thread-confined:\s*([A-Za-z][\w-]*)")
_HANDOFF_RE = re.compile(r"#\s*handoff\b")


@dataclass
class SourceFile:
    """A parsed module plus its analyzer annotations."""

    path: str                      # repo-relative posix path (report key)
    module: str                    # dotted module name, e.g. "repro.core.service"
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)      # line -> comment
    ignores: dict[int, frozenset[str]] = field(default_factory=dict)
    guard_comments: dict[int, str] = field(default_factory=dict)  # line -> lock name
    clock_domains: dict[int, str] = field(default_factory=dict)   # line -> domain
    confined_roles: dict[int, str] = field(default_factory=dict)  # line -> role
    handoff_lines: set[int] = field(default_factory=set)

    #: Lazily-built derived structures shared by every pass that looks at
    #: this file (class defs, symbol intervals, lockscope info, ...) so the
    #: fourth global pass costs walks, not re-walks.  Keyed by the deriving
    #: helper; see :meth:`derived`.
    _derived: dict = field(default_factory=dict, repr=False)

    def derived(self, key: str, build):
        """Cache ``build()`` under ``key`` for the life of this parse."""
        cached = self._derived.get(key)
        if cached is None:
            cached = self._derived[key] = build()
        return cached

    def class_defs(self) -> list[ast.ClassDef]:
        """Every class definition in the module (cached full-tree walk)."""
        return self.derived("class_defs", lambda: [
            node for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)])

    def symbol_at(self, lineno: int) -> str:
        """Qualified name of the innermost def/class containing ``lineno``
        (cached interval table; the uncached helper walks the whole tree
        once per finding)."""
        table = self.derived("symbol_intervals", lambda: _symbol_intervals(self.tree))
        best = "<module>"
        best_span = None
        for start, end, qname in table:
            if start <= lineno <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qname, span
        return best

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def line_text(self, lineno: int) -> str:
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def is_ignored(self, lineno: int, check: str) -> bool:
        waived = self.ignores.get(lineno)
        if waived is None:
            return False
        return "*" in waived or check in waived


def parse_source(text: str, path: str, module: str) -> SourceFile:
    """Parse ``text`` into a :class:`SourceFile` (raises ``SyntaxError``)."""
    tree = ast.parse(text, filename=path)
    source = SourceFile(path=path, module=module, text=text, tree=tree)
    _collect_comments(source)
    return source


#: Process-wide parsed-source cache.  ``checks``/``protocols``/``lockorder``
#: and the thread-role pass all analyze the same tree; repeated
#: ``run_analysis`` calls (the lint-runtime bench, the CLI after a test
#: run) should pay the read+parse once per file *content*, not per pass
#: per run.  Keyed by absolute path; invalidated by (mtime_ns, size).
_SOURCE_CACHE: dict[str, tuple[tuple[int, int], SourceFile]] = {}


def load_source(file_path: Path, rel_path: str, module: str) -> SourceFile:
    try:
        stat = file_path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    key = str(file_path.resolve())
    if signature is not None:
        cached = _SOURCE_CACHE.get(key)
        if (cached is not None and cached[0] == signature
                and cached[1].path == rel_path):
            return cached[1]
    text = file_path.read_text(encoding="utf-8")
    source = parse_source(text, path=rel_path, module=module)
    if signature is not None:
        _SOURCE_CACHE[key] = (signature, source)
    return source


def module_name_for(rel_path: str) -> str | None:
    """Dotted module for a repo-relative path (``src`` layout aware).

    ``src/repro/core/service.py`` → ``repro.core.service``; paths outside
    a recognizable package root fall back to the stem chain.
    """
    parts = list(Path(rel_path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def _collect_comments(source: SourceFile) -> None:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source.text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno = token.start[0]
            comment = token.string
            source.comments[lineno] = comment
            guard = _GUARDED_BY_RE.search(comment)
            if guard:
                source.guard_comments[lineno] = guard.group(1)
            domain = _CLOCK_DOMAIN_RE.search(comment)
            if domain:
                source.clock_domains[lineno] = domain.group(1)
            confined = _CONFINED_RE.search(comment)
            if confined:
                source.confined_roles[lineno] = confined.group(1)
            if _HANDOFF_RE.search(comment):
                source.handoff_lines.add(lineno)
            ignore = _IGNORE_RE.search(comment)
            if ignore:
                listed = ignore.group(1)
                if listed is None:
                    source.ignores[lineno] = frozenset({"*"})
                else:
                    checks = frozenset(
                        item.strip() for item in listed.split(",") if item.strip()
                    )
                    source.ignores[lineno] = checks or frozenset({"*"})
    except tokenize.TokenError:
        # A file that parses but fails tokenization (rare) simply loses
        # its comment annotations; the AST checks still run.
        pass


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.expr) -> str | None:
    """``self._lock`` / ``queue.ack`` → the dotted path, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def qualified_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every function/class definition line to its qualified name."""
    table: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                table[child.lineno] = name
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return table


def _symbol_intervals(tree: ast.Module) -> list[tuple[int, int, str]]:
    """(start, end, qualified name) for every def/class in the module."""
    table: list[tuple[int, int, str]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qname = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                table.append((child.lineno, end, qname))
                walk(child, qname)
            else:
                walk(child, prefix)

    walk(tree, "")
    return table


def enclosing_symbol(tree: ast.Module, lineno: int) -> str:
    """Qualified name of the innermost def/class containing ``lineno``."""
    best = "<module>"
    best_span = None
    for start, end, qname in _symbol_intervals(tree):
        if start <= lineno <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best, best_span = qname, span
    return best
