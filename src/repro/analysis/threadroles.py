"""Thread-role inference and cross-role race detection.

The ``guarded-by`` check *verifies* annotations; this pass *discovers*
the shared state nobody annotated (the RacerD direction: infer which
threads can execute which code, then intersect).  It runs in three
stages over the whole tree:

1. **Role graph.**  Every ``threading.Thread(target=...)`` spawn site is
   harvested and its thread *role* resolved from the ``name=`` keyword
   (``name=f"worker-{id}"`` → role ``worker``), normalized through the
   fabric taxonomy: ``main``, ``forwarder-loop``, ``agent-loop``,
   ``manager-loop``, ``worker``, ``stream-delivery``,
   ``executor-batcher``, ``elasticity``, ``chaos-scheduler``,
   ``callback``.  Entry seeds: spawn targets get their spawn role,
   public methods/functions get ``main`` (any caller thread can reach
   them; ``__init__`` is excluded — construction owns the object), and
   method references that *escape* as values (passed to ``subscribe``/
   ``attach``/stored in a field) get ``callback`` — they run on whatever
   thread fires them.  Roles then propagate caller → callee through the
   same call-through fixpoint the lock-order pass uses (constructor and
   annotation receiver typing included), so each method ends with the
   set of roles that can execute it.

2. **Access sets.**  For every ``self.<attr>`` read/write outside
   ``__init__`` the pass records the access kind and the lock set held
   there — lexical ``with`` scopes, ``# guarded-by`` held-marker
   methods, *and* a must-hold intersection propagated through call
   sites (a private helper only ever invoked under ``self._lock``
   inherits that lock).

3. **Findings.**  *Sufficiency*: an attribute **written from ≥ 2 roles
   with no common lock and no ``guarded-by`` annotation** is a race
   candidate (error).  *Necessity*: an annotated attribute only ever
   touched from one role is a stale annotation (info — it does not fail
   the build).  Two waivers cover the idioms that are safe without
   locks: ``# thread-confined: <role>`` on the attribute's declaration
   (publish-before-start — later writes happen-before the thread
   exists) and ``# handoff`` on a write site (queue-transfer — the
   queue provides the happens-before edge).

The runtime twin is :class:`repro.analysis.sanitizer.AccessRecorder`:
it tags guarded-class attribute accesses with the executing thread's
role (same taxonomy, via :func:`role_for_thread`) so chaos runs can
assert every *observed* cross-role attribute is in the static shared
set.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lockorder import (
    _attribute_types,
    _local_constructor_types,
    _looks_like_lock,
)
from repro.analysis.lockscope import iter_classes
from repro.analysis.source import SourceFile, dotted_name

THREAD_ROLES = "threadroles"

#: The fabric's thread-role taxonomy.  ``callback`` is the role of any
#: method reference that escapes as a value: it executes on whichever
#: thread fires it.
ROLES: Tuple[str, ...] = (
    "main",
    "forwarder-loop",
    "agent-loop",
    "manager-loop",
    "worker",
    "stream-delivery",
    "executor-batcher",
    "elasticity",
    "chaos-scheduler",
    "callback",
)

UNKNOWN_ROLE = "unknown"

#: Thread-name stem → canonical role.  The stems are the literal
#: ``name=`` prefixes at the eight live spawn sites, so the static
#: role graph and the runtime :func:`role_for_thread` tagger agree.
_ROLE_ALIASES: Dict[str, str] = {
    "forwarder": "forwarder-loop",
    "agent": "agent-loop",
    "manager": "manager-loop",
    "worker": "worker",
    "result-stream": "stream-delivery",
    "funcx-executor": "executor-batcher",
    "elasticity": "elasticity",
    "chaos-scheduler": "chaos-scheduler",
    "main": "main",
    "MainThread": "main",
}

_RACE_HINT = (
    "either guard every write with one lock and annotate the attribute "
    "`# guarded-by: self._lock`, or declare the idiom: "
    "`# thread-confined: <role>` on the declaration for "
    "publish-before-start state, `# handoff` on the write site for "
    "queue-transfer ownership moves; see docs/ANALYSIS.md \"Thread-role "
    "inference\""
)
_STALE_HINT = (
    "the annotation demands a lock for state the role graph says only "
    "one thread ever touches; drop the annotation (and its lock scopes) "
    "if the confinement is intentional, or leave it if the attribute is "
    "about to go cross-thread"
)
_UNKNOWN_HINT = (
    "give the thread a recognizable role: pass name=\"<role>\" (or a "
    "f\"<role>-{id}\" prefix) to threading.Thread so the role graph and "
    "the runtime AccessRecorder can attribute its accesses"
)


def canonical_role(raw: str) -> str:
    """Normalize a thread-name stem to its canonical role."""
    stem = raw.strip().strip("-_ ")
    if not stem:
        return UNKNOWN_ROLE
    if stem in _ROLE_ALIASES:
        return _ROLE_ALIASES[stem]
    for prefix, role in _ROLE_ALIASES.items():
        if stem.startswith(prefix + "-"):
            return role
    return stem.lower().replace("_", "-")


def role_for_thread(thread_name: str) -> str:
    """Runtime twin of :func:`canonical_role`: the role of a live thread.

    Thread names the taxonomy does not know (pool threads, test
    helpers) collapse onto ``callback`` — they are executing someone's
    callback, and collapsing them *under*-counts cross-role pairs, which
    keeps the runtime ⊆ static acceptance gate conservative.
    """
    role = canonical_role(thread_name)
    known = set(_ROLE_ALIASES.values())
    return role if role in known else "callback"


# ======================================================================
# extraction
# ======================================================================
#: A function's identity: (owner class name or module, dotted path of
#: the def inside that owner — ``"start.loop"`` for a closure).
Key = Tuple[str, str]


@dataclass(frozen=True)
class SpawnSite:
    """One ``threading.Thread(target=...)`` occurrence."""

    path: str
    line: int
    symbol: str
    role: str
    target: Optional[Key]


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` touch, attributed to one executing role."""

    role: str
    kind: str               # "read" | "write"
    locks: FrozenSet[str]
    path: str
    line: int
    symbol: str
    handoff: bool = False


@dataclass
class _FuncInfo:
    key: Key
    qualname: str
    path: str
    marker_locks: FrozenSet[str] = frozenset()
    #: (held locks at the call site, callee key)
    calls: List[Tuple[Tuple[str, ...], Key]] = field(default_factory=list)
    #: (attr, kind, held locks, line, handoff-waived)
    accesses: List[Tuple[str, str, Tuple[str, ...], int, bool]] = field(
        default_factory=list)


@dataclass
class RoleReport:
    """Everything the inference produced, for findings and for tests."""

    spawns: List[SpawnSite] = field(default_factory=list)
    roles: Dict[Key, FrozenSet[str]] = field(default_factory=dict)
    #: (ClassName, attr) -> attributed accesses
    accesses: Dict[Tuple[str, str], List[Access]] = field(default_factory=dict)
    #: (ClassName, attr) -> guard lock name, for annotated attributes
    guards: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: (ClassName, attr) -> declared confinement role
    confined: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: (ClassName, attr) -> (path, line) of the declaration to report on
    decl_sites: Dict[Tuple[str, str], Tuple[str, int]] = field(
        default_factory=dict)

    def roles_of(self, owner: str, func: str) -> FrozenSet[str]:
        return self.roles.get((owner, func), frozenset())

    def shared_attrs(self) -> Set[str]:
        """``ClassName.attr`` touched (read or write) from ≥ 2 roles —
        the static shared-state set the runtime AccessRecorder gate
        compares against."""
        shared: Set[str] = set()
        for (cls, attr), accesses in self.accesses.items():
            if len({a.role for a in accesses}) >= 2:
                shared.add(f"{cls}.{attr}")
        return shared


class _Extractor:
    """Walks one class (or module scope) collecting calls, spawn sites,
    attribute accesses with held locks, and callback escapes."""

    def __init__(self, source: SourceFile, class_name: Optional[str],
                 guard_locks: FrozenSet[str], attr_types: Dict[str, str],
                 attr_elem_types: Dict[str, str],
                 known_classes: Set[str], method_names: Set[str],
                 module_functions: Set[str],
                 functions: Dict[Key, _FuncInfo],
                 spawns: List[SpawnSite],
                 callback_seeds: Set[Key],
                 return_types: Dict[Key, str]) -> None:
        self.source = source
        self.class_name = class_name
        self.owner = class_name or source.module
        self.guard_locks = guard_locks
        self.attr_types = attr_types
        self.attr_elem_types = attr_elem_types
        self.known_classes = known_classes
        self.method_names = method_names
        self.module_functions = module_functions
        self.functions = functions
        self.spawns = spawns
        self.callback_seeds = callback_seeds
        self.return_types = return_types
        self._local_types: Dict[str, str] = {}
        self._local_elems: Dict[str, str] = {}
        self._closures: Dict[str, Key] = {}

    # -- entry ----------------------------------------------------------
    def scan_function(self, func: ast.AST, func_path: str, qualname: str,
                      initial_held: Tuple[str, ...],
                      marker_locks: FrozenSet[str],
                      base_types: Optional[Dict[str, str]] = None
                      ) -> _FuncInfo:
        info = _FuncInfo(key=(self.owner, func_path), qualname=qualname,
                         path=self.source.path, marker_locks=marker_locks)
        self.functions[info.key] = info
        saved_types = self._local_types
        saved_elems = self._local_elems
        saved_closures = self._closures
        self._local_types = dict(base_types or {})
        self._local_elems = dict(saved_elems) if base_types else {}
        self._closures = {}
        self._infer_local_types(func)
        for stmt in getattr(func, "body", []):
            self._walk(stmt, initial_held, info, func_path)
        self._local_types = saved_types
        self._local_elems = saved_elems
        self._closures = saved_closures
        return info

    def _infer_local_types(self, func: ast.AST) -> None:
        """Populate local name → class from constructor assignments,
        annotated parameters/locals, return annotations of resolvable
        calls (``queue = self.service.task_queue(ep)``), and elements
        pulled out of typed containers (``queue =
        self._task_queues[ep]``, ``for sub in self._subs.values():``)."""
        self._local_types.update(
            _local_constructor_types(func, self.known_classes))
        types = self._local_types
        for arg in (list(func.args.args) + list(func.args.kwonlyargs)
                    if hasattr(func, "args") else []):
            cls = _annotation_class(arg.annotation, self.known_classes)
            if cls is not None:
                types[arg.arg] = cls
        # Lexical (pre-order) traversal: a later loop over an earlier
        # assignment's container must see the element type already bound
        # (ast.walk is breadth-first and would visit siblings too early).
        for node in _pre_order(func):
            if (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)):
                cls = _annotation_class(node.annotation, self.known_classes)
                if cls is not None:
                    types[node.target.id] = cls
            elif (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                name = node.targets[0].id
                cls = self._instance_type(node.value)
                if cls is not None:
                    types[name] = cls
                else:
                    elem = self._container_elem(node.value)
                    if elem is not None:
                        self._local_elems[name] = elem
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._type_loop_target(node, types)

    def _self_container(self, expr: ast.expr) -> Optional[str]:
        """``self.<attr>`` whose declared annotation is a container of a
        known class → that element class."""
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return self.attr_elem_types.get(expr.attr)
        return None

    def _instance_type(self, value: ast.expr) -> Optional[str]:
        """Class of ``self._queues[k]`` / ``self._queues.get(k)`` /
        ``self._peer`` / ``self.service.task_queue(ep)``."""
        elem = self._element_type(value)
        if elem is not None:
            return elem
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"):
            return self.attr_types.get(value.attr)
        if isinstance(value, ast.Call):
            callee = self._resolve_callee(value)
            if callee is not None:
                return self.return_types.get(callee)
        return None

    def _element_type(self, value: ast.expr) -> Optional[str]:
        """Type of ``self._queues[k]`` / ``self._queues.get(k)``."""
        if isinstance(value, ast.Subscript):
            container = self._self_container(value.value)
            if container is not None:
                return container
            if isinstance(value.value, ast.Name):
                return self._local_elems.get(value.value.id)
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("get", "pop", "setdefault")):
            return self._self_container(value.func.value)
        return None

    def _container_elem(self, expr: ast.expr) -> Optional[str]:
        """Element class of an iterable expression, through ``list()``
        copies, ``.values()`` views, and comprehensions over typed
        containers."""
        if isinstance(expr, ast.Attribute):
            return self._self_container(expr)
        if isinstance(expr, ast.Name):
            return self._local_elems.get(expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            if (isinstance(func, ast.Name)
                    and func.id in ("list", "sorted", "tuple", "set")
                    and expr.args):
                return self._container_elem(expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr == "values":
                return self._self_container(func.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._element_type(expr.elt)
        return None

    def _type_loop_target(self, node: ast.AST,
                          types: Dict[str, str]) -> None:
        it = node.iter
        elem = None
        values_position = 0
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute)
                and it.func.attr == "items"):
            elem = self._self_container(it.func.value)
            values_position = 1
        else:
            elem = self._container_elem(it)
        if elem is None:
            return
        target = node.target
        if isinstance(target, ast.Name):
            types[target.id] = elem
        elif (isinstance(target, ast.Tuple)
                and len(target.elts) > values_position
                and isinstance(target.elts[values_position], ast.Name)):
            types[target.elts[values_position].id] = elem

    # -- traversal ------------------------------------------------------
    def _walk(self, node: ast.AST, held: Tuple[str, ...],
              info: _FuncInfo, func_path: str) -> None:
        if isinstance(node, ast.ClassDef):
            return  # nested classes are scanned as their own owner
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is its own role-graph node: its body runs when
            # someone (a thread, a callback dispatcher) invokes it, not
            # when it is defined — so held locks reset and accesses are
            # attributed to the closure's key, not the definer's.
            closure_path = f"{func_path}.{node.name}"
            self._closures[node.name] = (self.owner, closure_path)
            marker = self.source.guard_comments.get(node.lineno)
            marker_locks = (frozenset({self._qualify_lock(marker)})
                            if marker else frozenset())
            initial = tuple(sorted(marker_locks))
            saved_closures = dict(self._closures)
            self.scan_function(node, closure_path,
                               f"{info.qualname}.{node.name}", initial,
                               marker_locks, base_types=self._local_types)
            self._closures = saved_closures
            return
        if isinstance(node, ast.Lambda):
            for child in ast.iter_child_nodes(node):
                self._walk(child, (), info, func_path)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            current = held
            for item in node.items:
                self._walk(item.context_expr, held, info, func_path)
                lock = self._resolve_lock(item.context_expr)
                if lock is not None and lock not in current:
                    current = current + (lock,)
            for stmt in node.body:
                self._walk(stmt, current, info, func_path)
            return
        if isinstance(node, ast.Attribute):
            self._record_access(node, held, info)
        elif isinstance(node, ast.Call):
            if self._is_thread_spawn(node):
                self._record_spawn(node, info)
                # Still walk operands for accesses, but suppress the
                # callback-escape seeding of the target (its role comes
                # from the spawn, not from "escapes as a value").
                for child in ast.iter_child_nodes(node):
                    self._walk_no_escape(child, held, info, func_path)
                return
            callee = self._resolve_callee(node)
            if callee is not None:
                info.calls.append((held, callee))
            self._seed_escapes(
                list(node.args) + [kw.value for kw in node.keywords])
        elif isinstance(node, ast.Assign):
            self._seed_escapes([node.value])
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, info, func_path)

    def _walk_no_escape(self, node: ast.AST, held: Tuple[str, ...],
                        info: _FuncInfo, func_path: str) -> None:
        if isinstance(node, ast.Attribute):
            self._record_access(node, held, info)
        for child in ast.iter_child_nodes(node):
            self._walk_no_escape(child, held, info, func_path)

    # -- accesses -------------------------------------------------------
    def _record_access(self, node: ast.Attribute, held: Tuple[str, ...],
                       info: _FuncInfo) -> None:
        if self.class_name is None:
            return
        # Construction owns the object: writes inside __init__ happen
        # before the instance is published to any other thread.
        if info.key[1].split(".")[-1] == "__init__":
            return
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        attr = node.attr
        if attr in self.method_names:
            return
        if _looks_like_lock(attr) or attr in self.guard_locks:
            return
        kind = "read" if isinstance(node.ctx, ast.Load) else "write"
        handoff = node.lineno in self.source.handoff_lines
        info.accesses.append((attr, kind, held, node.lineno, handoff))

    # -- spawn sites ----------------------------------------------------
    @staticmethod
    def _is_thread_spawn(node: ast.Call) -> bool:
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        return (dotted.split(".")[-1] == "Thread"
                and any(kw.arg == "target" for kw in node.keywords))

    def _record_spawn(self, node: ast.Call, info: _FuncInfo) -> None:
        target_key: Optional[Key] = None
        raw_name: Optional[str] = None
        for kw in node.keywords:
            if kw.arg == "target":
                target_key = self._resolve_target(kw.value)
            elif kw.arg == "name":
                raw_name = _literal_name_stem(kw.value)
        if raw_name:
            role = canonical_role(raw_name)
        elif target_key is not None:
            role = canonical_role(target_key[1].split(".")[-1])
        else:
            role = UNKNOWN_ROLE
        self.spawns.append(SpawnSite(
            path=self.source.path, line=node.lineno, symbol=info.qualname,
            role=role, target=target_key))

    def _resolve_target(self, expr: ast.expr) -> Optional[Key]:
        if isinstance(expr, ast.Name):
            if expr.id in self._closures:
                return self._closures[expr.id]
            if expr.id in self.module_functions:
                return (self.source.module, expr.id)
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and self.class_name is not None:
            if len(parts) == 2:
                return (self.class_name, parts[1])
            if len(parts) == 3:
                owner = self.attr_types.get(parts[1])
                if owner is not None:
                    return (owner, parts[2])
        if len(parts) == 2:
            owner = self._local_types.get(parts[0])
            if owner is not None:
                return (owner, parts[1])
        return None

    # -- callback escapes ----------------------------------------------
    def _seed_escapes(self, exprs: List[ast.expr]) -> None:
        """A method reference used as a *value* (callback registration,
        stored handler) runs on whoever's thread fires it: seed the
        ``callback`` role on the referenced function.  Nested calls are
        pruned — they get their own visit, where a ``Thread(target=...)``
        suppresses the escape (the target's role comes from the spawn)."""
        for expr in exprs:
            self._seed_escape_expr(expr)

    def _seed_escape_expr(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            return
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.method_names
                and self.class_name is not None):
            self.callback_seeds.add((self.class_name, node.attr))
            return
        if (isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in self._closures):
            self.callback_seeds.add(self._closures[node.id])
            return
        for child in ast.iter_child_nodes(node):
            self._seed_escape_expr(child)

    # -- lock / callee resolution (lock-order vocabulary) ---------------
    def _qualify_lock(self, attr: str) -> str:
        return f"{self.owner}.{attr}"

    def _resolve_lock(self, expr: ast.expr) -> Optional[str]:
        target = expr
        if isinstance(target, ast.Call):
            target = target.func
            if isinstance(target, ast.Attribute):
                target = target.value
        dotted = dotted_name(target)
        if dotted is None:
            return None
        parts = dotted.split(".")
        attr = parts[-1]
        if not (_looks_like_lock(attr) or attr in self.guard_locks):
            return None
        if parts[0] == "self" and self.class_name is not None:
            if len(parts) == 2:
                return f"{self.class_name}.{attr}"
            if len(parts) == 3:
                owner = self.attr_types.get(parts[1])
                if owner is not None:
                    return f"{owner}.{attr}"
            return None
        if len(parts) == 1:
            return f"{self.source.module}.{attr}"
        if len(parts) == 2:
            owner = self._local_types.get(parts[0])
            if owner is not None:
                return f"{owner}.{attr}"
        return None

    def _resolve_callee(self, node: ast.Call) -> Optional[Key]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._closures:
                return self._closures[func.id]
            if func.id in self.module_functions:
                return (self.source.module, func.id)
            if func.id in self.known_classes:
                return (func.id, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            # self._queues[ep].put(...) — receiver through a typed container
            elem = self._element_type(func.value)
            if elem is not None:
                return (elem, func.attr)
        dotted = dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and self.class_name is not None:
            if len(parts) == 2:
                return (self.class_name, parts[1])
            if len(parts) == 3:
                owner = self.attr_types.get(parts[1])
                if owner is not None:
                    return (owner, parts[2])
            return None
        if len(parts) == 2:
            owner = self._local_types.get(parts[0])
            if owner is not None:
                return (owner, parts[1])
        return None


_CONTAINER_NAMES = {"dict", "Dict", "list", "List", "set", "Set",
                    "tuple", "Tuple", "deque", "OrderedDict", "defaultdict",
                    "Mapping", "MutableMapping", "Sequence", "Iterable"}

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _annotation_class(annotation: Optional[ast.expr],
                      known_classes: Set[str]) -> Optional[str]:
    """The known class named by a (possibly stringized, possibly
    optional/unioned) annotation: ``ChannelEnd``, ``"ChannelEnd |
    None"``, ``Optional[Worker]`` all resolve."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value,
                                                           str):
        for ident in _IDENT_RE.findall(annotation.value):
            if ident in known_classes:
                return ident
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op,
                                                        ast.BitOr):
        return (_annotation_class(annotation.left, known_classes)
                or _annotation_class(annotation.right, known_classes))
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        if base is not None and base.split(".")[-1] == "Optional":
            return _annotation_class(annotation.slice, known_classes)
        return None
    dotted = dotted_name(annotation)
    if dotted is not None and dotted.split(".")[-1] in known_classes:
        return dotted.split(".")[-1]
    return None


def _attribute_ann_types(node: ast.ClassDef,
                         known_classes: Set[str]) -> Dict[str, str]:
    """``self._peer: "ChannelEnd | None" = None`` → ``{"_peer":
    "ChannelEnd"}`` — instance typing from attribute annotations."""
    types: Dict[str, str] = {}
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(method):
            if (isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"):
                cls = _annotation_class(sub.annotation, known_classes)
                if cls is not None:
                    types[sub.target.attr] = cls
    return types


def _return_types(sources: Sequence[SourceFile],
                  known_classes: Set[str]) -> Dict[Key, str]:
    """(owner, method) → class, from ``-> ClassName`` annotations, so
    ``queue = self.service.task_queue(ep)`` types the local."""
    table: Dict[Key, str] = {}
    for source in sources:
        for node in source.class_defs():
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                cls = _annotation_class(method.returns, known_classes)
                if cls is not None:
                    table[(node.name, method.name)] = cls
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls = _annotation_class(stmt.returns, known_classes)
                if cls is not None:
                    table[(source.module, stmt.name)] = cls
    return table


def _attribute_element_types(node: ast.ClassDef,
                             known_classes: Set[str]) -> Dict[str, str]:
    """``self._queues: dict[str, ReliableQueue] = {}`` → ``{"_queues":
    "ReliableQueue"}`` — the element typing that lets container-mediated
    calls resolve."""
    types: Dict[str, str] = {}
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(method):
            if not (isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"):
                continue
            ann = sub.annotation
            if not isinstance(ann, ast.Subscript):
                continue
            base = dotted_name(ann.value)
            if base is None or base.split(".")[-1] not in _CONTAINER_NAMES:
                continue
            slice_expr = ann.slice
            candidates = (slice_expr.elts if isinstance(slice_expr, ast.Tuple)
                          else [slice_expr])
            # dict[K, V]: the value type is the element; list[T]: T.
            elem = dotted_name(candidates[-1])
            if elem is not None and elem.split(".")[-1] in known_classes:
                types[sub.target.attr] = elem.split(".")[-1]
    return types


def _pre_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first pre-order node traversal (source order)."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from _pre_order(child)


def _literal_name_stem(expr: ast.expr) -> Optional[str]:
    """The literal prefix of a thread ``name=``: a string constant, or
    the leading constant part of an f-string (``f"worker-{id}"`` →
    ``"worker-"``)."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr) and expr.values:
        first = expr.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


# ======================================================================
# inference
# ======================================================================
def _is_main_entry(name: str) -> bool:
    """Public methods/functions are callable from the caller's thread."""
    if name == "__init__":
        return False
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def build_role_report(sources: Sequence[SourceFile]) -> RoleReport:
    """Run the full inference over ``sources``."""
    report = RoleReport()
    functions: Dict[Key, _FuncInfo] = {}
    callback_seeds: Set[Key] = set()
    known_classes: Set[str] = set()
    for source in sources:
        for node in source.class_defs():
            known_classes.add(node.name)
    return_types = _return_types(sources, known_classes)

    for source in sources:
        module_functions = {
            stmt.name for stmt in source.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
        for info in _classes_of(source):
            node = info.node
            method_names = {
                s.name for s in node.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))}
            attr_types = dict(_attribute_types(node, known_classes))
            attr_types.update(_attribute_ann_types(node, known_classes))
            attr_elem_types = _attribute_element_types(node, known_classes)
            extractor = _Extractor(
                source, node.name, info.lock_names | frozenset(
                    info.guards.values()),
                attr_types, attr_elem_types, known_classes, method_names,
                module_functions, functions, report.spawns, callback_seeds,
                return_types)
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                markers = frozenset(
                    f"{node.name}.{lock}"
                    for lock in info.held_markers.get(method, frozenset()))
                extractor.scan_function(
                    method, method.name, f"{info.qualname}.{method.name}",
                    tuple(sorted(markers)), markers)
            _collect_declarations(source, info, report)
        extractor = _Extractor(
            source, None, frozenset(), {}, {}, known_classes, set(),
            module_functions, functions, report.spawns, callback_seeds,
            return_types)
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                extractor.scan_function(stmt, stmt.name, stmt.name, (),
                                        frozenset())

    # -- seeds ----------------------------------------------------------
    roles: Dict[Key, Set[str]] = {key: set() for key in functions}
    for spawn in report.spawns:
        if spawn.target is not None and spawn.target in roles:
            roles[spawn.target].add(spawn.role)
    for key in callback_seeds:
        if key in roles:
            roles[key].add("callback")
    for (owner, func_path), info in functions.items():
        name = func_path.split(".")[-1]
        if "." not in func_path and _is_main_entry(name):
            roles[(owner, func_path)].add("main")

    # -- role propagation (caller → callee fixpoint) --------------------
    changed = True
    rounds = 0
    while changed and rounds < 100:
        changed = False
        rounds += 1
        for key, info in functions.items():
            mine = roles[key]
            if not mine:
                continue
            for _held, callee in info.calls:
                target = roles.get(callee)
                if target is not None and not mine <= target:
                    target |= mine
                    changed = True

    # -- must-hold propagation (intersection over call sites) -----------
    # A helper only ever invoked under a lock inherits that lock for its
    # accesses.  Entry-seeded functions start from their own markers
    # (callers from other threads hold nothing); everything else starts
    # at ⊤ (None) and narrows by intersection.
    TOP = None
    must: Dict[Key, Optional[FrozenSet[str]]] = {}
    for key, info in functions.items():
        seeded = roles[key] and (
            key in callback_seeds
            or any(s.target == key for s in report.spawns)
            or ("." not in key[1] and _is_main_entry(key[1].split(".")[-1])))
        must[key] = info.marker_locks if seeded else TOP
    changed = True
    rounds = 0
    while changed and rounds < 100:
        changed = False
        rounds += 1
        for key, info in functions.items():
            incoming = must[key]
            if incoming is TOP:
                continue
            for held, callee in info.calls:
                if callee not in must:
                    continue
                arriving = (incoming | frozenset(held)
                            | functions[callee].marker_locks)
                current = must[callee]
                narrowed = (arriving if current is TOP
                            else current & arriving)
                if narrowed != current:
                    must[callee] = narrowed
                    changed = True

    report.roles = {key: frozenset(role_set)
                    for key, role_set in roles.items()}

    # -- attribute access attribution -----------------------------------
    for key, info in functions.items():
        role_set = roles[key]
        if not role_set:
            continue
        owner = key[0]
        inherited = must[key] or frozenset()
        for attr, kind, held, line, handoff in info.accesses:
            locks = frozenset(held) | inherited
            for role in sorted(role_set):
                report.accesses.setdefault((owner, attr), []).append(Access(
                    role=role, kind=kind, locks=locks, path=info.path,
                    line=line, symbol=info.qualname, handoff=handoff))
    return report


def _classes_of(source: SourceFile):
    """:func:`repro.analysis.lockscope.iter_classes` (cached there)."""
    return iter_classes(source)


def _collect_declarations(source: SourceFile, info, report: RoleReport) -> None:
    """Guard/confinement declarations plus a reportable site per attr."""
    cls = info.node.name
    for attr, lock in info.guards.items():
        report.guards[(cls, attr)] = lock
    for sub in ast.walk(info.node):
        if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (sub.targets if isinstance(sub, ast.Assign)
                   else [sub.target])
        for target in targets:
            attr = None
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                attr = target.attr
            if attr is None:
                continue
            report.decl_sites.setdefault((cls, attr),
                                         (source.path, sub.lineno))
            role = source.confined_roles.get(sub.lineno)
            if role is not None:
                report.confined[(cls, attr)] = canonical_role(role)
        # the _GUARDED registry form: declaration site is the dict line
        if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and sub.targets[0].id == "_GUARDED"
                and isinstance(sub.value, ast.Dict)):
            for k in sub.value.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    report.decl_sites.setdefault(
                        (cls, k.value), (source.path, k.lineno))


# ======================================================================
# the check
# ======================================================================
def check_thread_roles(sources: Sequence[SourceFile],
                       only_roles: Optional[FrozenSet[str]] = None
                       ) -> Iterator[Finding]:
    """Infer which thread roles execute which methods and flag the
    shared state nobody annotated.

    *Sufficiency* (error): an attribute **written from two or more
    thread roles with no lock common to every write and no
    ``guarded-by`` annotation** is a data race candidate — exactly the
    state the annotation-verifying checks cannot see.  *Necessity*
    (info): an annotated attribute only ever touched from one role is a
    stale annotation.  A spawn site whose role cannot be resolved (no
    ``name=`` and no resolvable target) is an error: unattributable
    threads make every inference unsound.  Waivers:
    ``# thread-confined: <role>`` on the attribute declaration
    (publish-before-start) and ``# handoff`` on a write site
    (queue-transfer); both are trusted, not verified.
    """
    report = build_role_report(sources)
    by_path = {source.path: source for source in sources}

    def line_text(path: str, line: int) -> str:
        source = by_path.get(path)
        return source.line_text(line) if source else ""

    for spawn in report.spawns:
        if spawn.role == UNKNOWN_ROLE:
            yield Finding(
                check=THREAD_ROLES, path=spawn.path, line=spawn.line, col=0,
                symbol=spawn.symbol,
                message=("thread spawned here has no resolvable role "
                         "(no name= and no resolvable target=); its "
                         "accesses cannot be attributed"),
                hint=_UNKNOWN_HINT,
                line_text=line_text(spawn.path, spawn.line),
            )

    for (cls, attr), accesses in sorted(report.accesses.items()):
        writes = [a for a in accesses if a.kind == "write" and not a.handoff]
        writer_roles = {a.role for a in writes}
        if only_roles is not None and not (writer_roles & only_roles):
            continue
        if len(writer_roles) < 2:
            continue
        if (cls, attr) in report.guards:
            continue
        if (cls, attr) in report.confined:
            continue
        common = frozenset.intersection(*(a.locks for a in writes))
        if common:
            continue
        first = min(writes, key=lambda a: (a.path, a.line))
        witnesses = []
        for role in sorted(writer_roles):
            site = min((a for a in writes if a.role == role),
                       key=lambda a: (a.path, a.line))
            witnesses.append(f"{role} at {site.path}:{site.line} "
                             f"in {site.symbol}")
        yield Finding(
            check=THREAD_ROLES, path=first.path, line=first.line, col=0,
            symbol=first.symbol,
            message=(f"self.{attr} is written from {len(writer_roles)} "
                     f"thread roles with no common lock and no guarded-by "
                     f"annotation: " + "; ".join(witnesses)),
            hint=_RACE_HINT,
            line_text=line_text(first.path, first.line),
        )

    for (cls, attr), lock in sorted(report.guards.items()):
        touched = {a.role for a in report.accesses.get((cls, attr), [])}
        if only_roles is not None and touched and not (touched & only_roles):
            continue
        if len(touched) >= 2:
            continue
        decl = report.decl_sites.get((cls, attr))
        if decl is None:
            continue
        path, line = decl
        roles_text = (f"only ever touched from role "
                      f"{next(iter(touched))!r}" if touched
                      else "never touched outside __init__")
        yield Finding(
            check=THREAD_ROLES, path=path, line=line, col=0,
            symbol=f"{cls}.{attr}",
            message=(f"self.{attr} is annotated guarded-by self.{lock} "
                     f"but {roles_text}: the annotation looks stale"),
            hint=_STALE_HINT,
            line_text=line_text(path, line),
            severity="info",
        )


def make_thread_roles_check(roles: Sequence[str]):
    """A ``threadroles`` check restricted to findings involving any of
    ``roles`` (the ``repro lint --roles`` subset filter)."""
    wanted = frozenset(canonical_role(r) for r in roles)

    def check(sources: Sequence[SourceFile]) -> Iterator[Finding]:
        yield from check_thread_roles(sources, only_roles=wanted)

    check.__doc__ = check_thread_roles.__doc__
    check.__name__ = "check_thread_roles"
    return check
