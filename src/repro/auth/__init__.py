"""Identity and access management (Globus Auth substitute).

The paper secures all funcX APIs with Globus Auth (section 4.8): the
service is a *resource server* with named scopes; users authenticate with
an identity provider and obtain scoped access tokens; endpoints are
themselves native clients that authenticate to register.  This package
reproduces that model: identity providers, OAuth-style token grants,
scope checking, token expiry/revocation, and group-based sharing of
functions.
"""

from repro.auth.scopes import Scope, ALL_SCOPES
from repro.auth.service import AccessToken, AuthClient, AuthService, Identity, Group

__all__ = [
    "Scope",
    "ALL_SCOPES",
    "AuthService",
    "AuthClient",
    "AccessToken",
    "Identity",
    "Group",
]
