"""funcX authorization scopes.

Mirrors the paper's example scope URNs, e.g.
``urn:globus:auth:scope:funcx:register_function`` (section 4.8).
"""

from __future__ import annotations

from enum import Enum


_PREFIX = "urn:globus:auth:scope:funcx"


class Scope(str, Enum):
    """Named authorization scopes understood by the funcX service."""

    REGISTER_FUNCTION = f"{_PREFIX}:register_function"
    REGISTER_ENDPOINT = f"{_PREFIX}:register_endpoint"
    EXECUTE = f"{_PREFIX}:execute"
    MONITOR = f"{_PREFIX}:monitor"
    RESULTS = f"{_PREFIX}:results"
    ADMIN = f"{_PREFIX}:admin"

    @classmethod
    def parse(cls, urn: str) -> "Scope":
        for scope in cls:
            if scope.value == urn:
                return scope
        raise ValueError(f"unknown scope URN: {urn!r}")


#: Every scope, in a stable order (used for "all" grants).
ALL_SCOPES: tuple[Scope, ...] = tuple(Scope)

#: The scopes a normal research user receives in a native-client flow.
USER_DEFAULT_SCOPES: tuple[Scope, ...] = (
    Scope.REGISTER_FUNCTION,
    Scope.EXECUTE,
    Scope.MONITOR,
    Scope.RESULTS,
)

#: The scopes an endpoint (itself a native client) depends on.
ENDPOINT_SCOPES: tuple[Scope, ...] = (
    Scope.REGISTER_ENDPOINT,
    Scope.MONITOR,
)
