"""The identity/token service and its client-side helper.

Implements the pieces of the Globus Auth model that funcX relies on
(paper section 4.8):

* identities from multiple providers (institution, Google, ORCID);
* OAuth-style *native client* flows producing scoped, expiring tokens;
* endpoints registered as native clients dependent on funcX scopes;
* groups, used to share function-invocation rights;
* token introspection, refresh and revocation.

There is no cryptography here — tokens are opaque random strings whose
validity lives server-side, exactly how an introspection-based resource
server treats them.
"""

from __future__ import annotations

import secrets
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.auth.scopes import ENDPOINT_SCOPES, Scope, USER_DEFAULT_SCOPES
from repro.errors import AuthenticationFailed, AuthorizationFailed


@dataclass(frozen=True)
class Identity:
    """An authenticated principal (user or endpoint client)."""

    identity_id: str
    username: str
    provider: str  # "institution" | "google" | "orcid" | "funcx-endpoint"

    @property
    def display(self) -> str:
        return f"{self.username}@{self.provider}"


@dataclass
class AccessToken:
    """A bearer token: opaque string + server-side grant record."""

    token: str
    identity: Identity
    scopes: frozenset[Scope]
    issued_at: float
    expires_at: float
    refresh_token: str | None = None
    revoked: bool = False

    def is_valid(self, now: float) -> bool:
        return not self.revoked and now < self.expires_at


@dataclass
class Group:
    """A set of identities that can be granted shared access."""

    group_id: str
    name: str
    members: set[str] = field(default_factory=set)  # identity ids


class AuthService:
    """Server side: issues, introspects, refreshes and revokes tokens.

    Parameters
    ----------
    token_lifetime:
        Access-token validity window, seconds.
    clock:
        Injectable time source.
    """

    KNOWN_PROVIDERS = ("institution", "google", "orcid", "funcx-endpoint")

    def __init__(self, token_lifetime: float = 3600.0, clock: Callable[[], float] | None = None):
        self.token_lifetime = token_lifetime
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._identities: dict[str, Identity] = {}
        self._tokens: dict[str, AccessToken] = {}
        self._refresh: dict[str, str] = {}  # refresh token -> access token
        self._groups: dict[str, Group] = {}

    # -- identities -----------------------------------------------------
    def register_identity(self, username: str, provider: str = "institution") -> Identity:
        if provider not in self.KNOWN_PROVIDERS:
            raise ValueError(f"unknown identity provider {provider!r}")
        identity = Identity(identity_id=str(uuid.uuid4()), username=username, provider=provider)
        self._identities[identity.identity_id] = identity
        return identity

    def get_identity(self, identity_id: str) -> Identity:
        identity = self._identities.get(identity_id)
        if identity is None:
            raise AuthenticationFailed(f"unknown identity {identity_id!r}")
        return identity

    # -- token flows ------------------------------------------------------
    def native_client_flow(
        self, identity: Identity, scopes: Iterable[Scope] | None = None
    ) -> AccessToken:
        """The native-client OAuth flow used by the SDK and endpoints."""
        if identity.identity_id not in self._identities:
            raise AuthenticationFailed("identity not registered with the auth service")
        requested = frozenset(scopes) if scopes is not None else frozenset(USER_DEFAULT_SCOPES)
        now = self._clock()
        token = AccessToken(
            token=secrets.token_urlsafe(32),
            identity=identity,
            scopes=requested,
            issued_at=now,
            expires_at=now + self.token_lifetime,
            refresh_token=secrets.token_urlsafe(32),
        )
        self._tokens[token.token] = token
        assert token.refresh_token is not None
        self._refresh[token.refresh_token] = token.token
        return token

    def endpoint_client_flow(self, endpoint_name: str) -> tuple[Identity, AccessToken]:
        """Register an endpoint as a native client with endpoint scopes.

        Endpoints "require the administrator to authenticate prior to
        registration in order to acquire access tokens" (section 4.8).
        """
        identity = self.register_identity(endpoint_name, provider="funcx-endpoint")
        token = self.native_client_flow(identity, scopes=ENDPOINT_SCOPES)
        return identity, token

    def refresh(self, refresh_token: str) -> AccessToken:
        """Exchange a refresh token for a fresh access token."""
        old_access = self._refresh.get(refresh_token)
        if old_access is None:
            raise AuthenticationFailed("unknown refresh token")
        old = self._tokens[old_access]
        if old.revoked:
            raise AuthenticationFailed("token chain has been revoked")
        del self._refresh[refresh_token]
        old.revoked = True
        return self.native_client_flow(old.identity, scopes=old.scopes)

    def revoke(self, token: str) -> bool:
        record = self._tokens.get(token)
        if record is None:
            return False
        record.revoked = True
        if record.refresh_token is not None:
            self._refresh.pop(record.refresh_token, None)
        return True

    # -- introspection / enforcement -----------------------------------------
    def introspect(self, token: str) -> AccessToken:
        """Validate a bearer token; raise on missing/expired/revoked."""
        record = self._tokens.get(token)
        if record is None:
            raise AuthenticationFailed("unknown token")
        if not record.is_valid(self._clock()):
            raise AuthenticationFailed("token expired or revoked")
        return record

    def authorize(self, token: str, required: Scope) -> Identity:
        """Introspect and check the token carries ``required``."""
        record = self.introspect(token)
        if required not in record.scopes and Scope.ADMIN not in record.scopes:
            raise AuthorizationFailed(record.identity.display, required.value)
        return record.identity

    # -- groups ------------------------------------------------------------------
    def create_group(self, name: str, members: Iterable[Identity] = ()) -> Group:
        group = Group(group_id=str(uuid.uuid4()), name=name)
        for member in members:
            group.members.add(member.identity_id)
        self._groups[group.group_id] = group
        return group

    def add_to_group(self, group_id: str, identity: Identity) -> None:
        group = self._groups.get(group_id)
        if group is None:
            raise AuthenticationFailed(f"unknown group {group_id!r}")
        group.members.add(identity.identity_id)

    def is_member(self, group_id: str, identity_id: str) -> bool:
        group = self._groups.get(group_id)
        return group is not None and identity_id in group.members


class AuthClient:
    """Client-side helper: holds a token, auto-refreshes near expiry."""

    #: Refresh when less than this fraction of the lifetime remains.
    REFRESH_THRESHOLD = 0.1

    def __init__(self, service: AuthService, identity: Identity, scopes: Iterable[Scope] | None = None):
        self._service = service
        self._identity = identity
        self._refresh_lock = threading.Lock()
        # Refresh swaps the token object; callers on executor/stream
        # threads race bearer_token() against each other and logout().
        self._token = service.native_client_flow(identity, scopes=scopes)  # guarded-by: self._refresh_lock

    @property
    def identity(self) -> Identity:
        return self._identity

    def bearer_token(self) -> str:
        """The current access token, refreshing it if close to expiry."""
        with self._refresh_lock:
            now = self._service._clock()
            remaining = self._token.expires_at - now
            lifetime = self._token.expires_at - self._token.issued_at
            if self._token.revoked or remaining <= 0:
                raise AuthenticationFailed("token no longer refreshable; re-authenticate")
            if remaining < lifetime * self.REFRESH_THRESHOLD and self._token.refresh_token:
                self._token = self._service.refresh(self._token.refresh_token)
            return self._token.token

    def logout(self) -> None:
        with self._refresh_lock:
            token = self._token.token
        self._service.revoke(token)
