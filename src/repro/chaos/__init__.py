"""Chaos harness: scripted fault injection + continuously-checked invariants.

See ``docs/CHAOS.md`` for the full guide.
"""

from repro.chaos.invariants import (
    BoundedInFlight,
    Invariant,
    InvariantRegistry,
    InvariantViolation,
    default_invariants,
)
from repro.chaos.plan import ACTIONS, FaultPlan, FaultStep, generate_plan
from repro.chaos.scheduler import AppliedStep, ChaosScheduler, ScheduleResult
from repro.chaos.world import ChaosReport, ChaosWorld

__all__ = [
    "ACTIONS",
    "AppliedStep",
    "BoundedInFlight",
    "ChaosReport",
    "ChaosScheduler",
    "ChaosWorld",
    "FaultPlan",
    "FaultStep",
    "Invariant",
    "InvariantRegistry",
    "InvariantViolation",
    "ScheduleResult",
    "default_invariants",
    "generate_plan",
]
