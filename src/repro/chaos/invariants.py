"""System-wide invariants checked continuously under fault injection.

The registry is the sink for every observation hook in the fabric
(queues, service, memoizer, forwarder, futures).  Each built-in
invariant consumes the event stream — or inspects the world at
quiescence — and records a structured :class:`InvariantViolation`
naming the fault-plan step that was being applied when it tripped.

Built-in invariants (tentpole spec):

* **queue-conservation** — ``enqueued = acked + in-flight + ready`` for
  every reliable queue, after every mutation.
* **no-double-completion** — a task reaches a terminal state exactly
  once at the service (later completions must be ignored, not applied).
* **no-double-delivery** — no future resolves twice.
* **memo-consistency** — a memoizer hit returns exactly the bytes last
  stored under that (function, payload) hash, never another entry's.
* **monotone-liveness** — per agent incarnation, liveness transitions
  alternate (alive→lost→alive…), a revival is justified by a
  registration or heartbeat, and incarnations strictly increase.
* **no-task-lost** — at quiescence, every non-terminal task is still
  reachable by the redelivery machinery (queue, open lease, agent, or
  manager); a task in limbo while retries remain was permanently lost.
* **bounded-in-flight** — credit-based backpressure holds: no dispatch
  wave exceeds the endpoint's remaining credit (``flow.wave`` events),
  and at quiescence the endpoint-side holdings (agent pending +
  assigned) fit the advertised window plus lease-redelivery slack.
* **shard-conservation** — every service shard's accounting identity
  (``open == received - terminated - forgotten_open``) closes on every
  ``shard.accounting`` event.
* **cross-shard-conservation** — at quiescence the shard partition
  covers the task population exactly: summed shard counters match the
  facade counters and a direct table scan, and every task record lives
  on the shard its id routes to.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.chaos.plan import FaultStep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.world import ChaosWorld


@dataclass(frozen=True)
class InvariantViolation:
    """A structured invariant-violation report.

    ``trace_ids`` carries the observability trace ids of the task(s)
    involved (when the registry has a trace resolver attached), so a
    violation can be followed into the per-stage span record of the
    exact request that tripped it.
    """

    invariant: str
    message: str
    fault_step: FaultStep | None = None
    details: dict[str, Any] = field(default_factory=dict)
    trace_ids: tuple[str, ...] = ()

    def describe(self) -> str:
        step = self.fault_step.describe() if self.fault_step else "no active fault step"
        text = f"[{self.invariant}] {self.message} (during: {step})"
        if self.trace_ids:
            text += f" [traces: {', '.join(self.trace_ids)}]"
        return text


class Invariant:
    """Base class: consume events and/or inspect the world at the end."""

    name = "invariant"

    def on_event(self, source: str, event: str, fields: dict[str, Any],
                 record: Callable[[str, dict[str, Any]], None]) -> None:
        """React to one probe event; call ``record(message, details)``."""

    def check_final(self, world: "ChaosWorld | None",
                    record: Callable[[str, dict[str, Any]], None]) -> None:
        """Inspect the quiesced world for terminal-state violations."""


class QueueConservation(Invariant):
    name = "queue-conservation"

    def on_event(self, source, event, fields, record):
        if not event.startswith("queue."):
            return
        if not all(k in fields for k in ("enqueued", "acked", "in_flight", "ready")):
            return
        delta = (fields["enqueued"] - fields["acked"]
                 - fields["in_flight"] - fields["ready"])
        if delta != 0:
            record(
                f"queue {fields.get('queue', source)} leaks {delta} item(s): "
                f"enqueued={fields['enqueued']} != acked={fields['acked']} "
                f"+ in_flight={fields['in_flight']} + ready={fields['ready']}",
                dict(fields),
            )


class NoDoubleCompletion(Invariant):
    name = "no-double-completion"

    def __init__(self) -> None:
        self._completed: dict[str, int] = {}

    def on_event(self, source, event, fields, record):
        if event != "task.completed":
            return
        task_id = fields["task_id"]
        count = self._completed.get(task_id, 0) + 1
        self._completed[task_id] = count
        if count > 1:
            record(
                f"task {task_id} reached a terminal state {count} times",
                dict(fields),
            )


class NoDoubleDelivery(Invariant):
    name = "no-double-delivery"

    def __init__(self) -> None:
        self._delivered: dict[str, int] = {}

    def on_event(self, source, event, fields, record):
        if event != "future.delivered":
            return
        task_id = fields["task_id"]
        count = self._delivered.get(task_id, 0) + 1
        self._delivered[task_id] = count
        if count > 1:
            record(
                f"future for task {task_id} resolved {count} times",
                dict(fields),
            )


class MemoConsistency(Invariant):
    name = "memo-consistency"

    def __init__(self) -> None:
        self._stored: dict[str, str] = {}

    def on_event(self, source, event, fields, record):
        if event == "memo.store":
            # Re-storing the same key is legal (re-executed deterministic
            # task); the cache must serve whatever was stored last.
            self._stored[fields["key"]] = fields["result_sha"]
        elif event == "memo.hit":
            expected = self._stored.get(fields["key"])
            if expected is None:
                record(
                    f"memo hit for key {fields['key'][:16]}… that was never stored",
                    dict(fields),
                )
            elif expected != fields["result_sha"]:
                record(
                    f"memo hit for key {fields['key'][:16]}… returned bytes for a "
                    "different argument hash",
                    {**fields, "expected_sha": expected},
                )


class MonotoneLiveness(Invariant):
    name = "monotone-liveness"

    def __init__(self) -> None:
        # Incarnations (from registrations) and alive/lost transitions are
        # tracked separately: a registration is always accompanied by its
        # own alive transition, so folding them together would make every
        # reconnect look like a duplicate.
        self._incarnation: dict[str, int] = {}
        self._transition: dict[str, tuple[int, bool]] = {}

    def on_event(self, source, event, fields, record):
        component = fields.get("component")
        if component is None:
            return
        if event == "liveness.registered":
            incarnation = fields["incarnation"]
            previous = self._incarnation.get(component)
            if previous is not None and incarnation <= previous:
                record(
                    f"incarnation of {component} went {previous} -> "
                    f"{incarnation} (must strictly increase)",
                    dict(fields),
                )
            self._incarnation[component] = incarnation
        elif event == "liveness.transition":
            alive = fields["alive"]
            incarnation = fields["incarnation"]
            previous = self._transition.get(component)
            if previous == (incarnation, alive):
                record(
                    f"duplicate liveness transition for {component}: already "
                    f"{'alive' if alive else 'lost'} in incarnation {incarnation}",
                    dict(fields),
                )
            if alive and fields.get("via") not in ("registration", "heartbeat"):
                record(
                    f"{component} revived without a registration or heartbeat "
                    f"(via={fields.get('via')!r})",
                    dict(fields),
                )
            self._transition[component] = (incarnation, alive)


class NoTaskLost(Invariant):
    name = "no-task-lost"

    def check_final(self, world, record):
        if world is None:
            return
        for task_id, state, endpoint_id in world.unaccounted_tasks():
            # Attribute the loss to the disruptive fault that plausibly
            # caused it (the quiescence check itself runs under no step).
            step = world.suspect_step(endpoint_id)
            record(
                f"task {task_id} is non-terminal ({state}) but unreachable by "
                "any redelivery path: not queued, not under an open lease, "
                "not held by the agent or a manager — permanently lost while "
                "retries remain",
                {"task_id": task_id, "state": state, "endpoint_id": endpoint_id},
                step,
            )


class BoundedInFlight(Invariant):
    """Credit-based flow control bounds the dispatch in-flight tables.

    Event check: every ``flow.wave`` the forwarder emits must fit the
    endpoint's remaining credit — ``size ≤ max(0, window - in_flight)``.
    Waves dispatched while the window is unknown (``-1``, flow control
    off or no credit report yet) are exempt.  Only dispatch instants are
    checked: a window *shrinking* below the current in-flight count
    (manager death) is a legal transient that drains, not a violation.

    Quiescence check: the endpoint-side holdings (agent pending +
    assigned) must fit the advertised window plus the queue's
    redelivery count — lease-timeout redelivery can legally leave stale
    duplicates parked at the agent, one per redelivery at worst.
    """

    name = "bounded-in-flight"

    def on_event(self, source, event, fields, record):
        if event != "flow.wave":
            return
        window = fields.get("window", -1)
        if window is None or window < 0:
            return
        size = fields.get("size", 0)
        in_flight = fields.get("in_flight", 0)
        if size > max(0, window - in_flight):
            record(
                f"dispatch wave of {size} exceeds remaining credit "
                f"(window={window}, in_flight={in_flight}): the forwarder "
                "overshot the endpoint's advertised window",
                dict(fields),
            )

    def check_final(self, world, record):
        if world is None:
            return
        for hooks in world.hooks.values():
            window = getattr(hooks.forwarder, "credit_window", -1)
            if window is None or window < 0:
                continue
            agent = hooks.endpoint.agent
            holdings = agent.pending_count() + agent.outstanding_count()
            slack = hooks.queue.total_redelivered
            if holdings > window + slack:
                record(
                    f"endpoint {hooks.name} holds {holdings} task(s) "
                    f"(pending+assigned) at quiescence, above its credit "
                    f"window {window} + redelivery slack {slack} — "
                    "backpressure failed to bound the in-flight tables",
                    {"endpoint_id": hooks.endpoint_id, "holdings": holdings,
                     "window": window, "redelivered": slack},
                )


class ShardConservation(Invariant):
    """Each service shard's accounting identity closes on every mutation.

    The sharded service plane emits ``shard.accounting`` snapshots from
    every task-table mutation (insert / terminal / forget).  Per shard::

        open == received - terminated - forgotten_open

    A drift means a task crossed shards (routing bug) or a counter was
    torn from the table it summarizes (locking bug).
    """

    name = "shard-conservation"

    def on_event(self, source, event, fields, record):
        if event != "shard.accounting":
            return
        if not all(k in fields for k in
                   ("received", "terminated", "forgotten_open", "open")):
            return
        expected = (fields["received"] - fields["terminated"]
                    - fields["forgotten_open"])
        if fields["open"] != expected:
            record(
                f"shard {fields.get('shard')} accounting drifted: open="
                f"{fields['open']} != received={fields['received']} - "
                f"terminated={fields['terminated']} - forgotten_open="
                f"{fields['forgotten_open']}",
                dict(fields),
            )


class CrossShardConservation(Invariant):
    """The shard partition covers the task population exactly.

    At quiescence, three independent views of the service plane must
    agree:

    * the **sum of shard counters** (received / open across partitions),
    * the **facade counters** (``tasks_received``, forgotten),
    * a **direct task-table scan** (every record lives on the shard its
      id routes to, and the non-terminal population matches the summed
      ``open``).

    Divergence means a task was double-counted across shards, landed on
    the wrong partition, or escaped the shard map entirely.
    """

    name = "cross-shard-conservation"

    def check_final(self, world, record):
        if world is None:
            return
        service = world.deployment.service
        counters = service.shard_counters()
        total_received = sum(c["received"] for c in counters)
        total_open = sum(c["open"] for c in counters)
        facade_received = service.tasks_received
        if total_received != facade_received:
            record(
                f"shards account for {total_received} received task(s) but "
                f"the facade counted {facade_received} — a submission "
                "bypassed (or double-entered) the shard partition",
                {"shards": counters, "facade_received": facade_received},
            )
        open_scan = 0
        misrouted = 0
        for shard in service.shards:
            for task in shard.iter_tasks():
                if not task.state.terminal:
                    open_scan += 1
                owner = service.shard_map.shard_for_task(task.task_id)
                if owner != shard.index:
                    misrouted += 1
                    record(
                        f"task {task.task_id} lives on shard {shard.index} "
                        f"but its id routes to shard {owner}",
                        {"task_id": task.task_id, "shard": shard.index,
                         "routed": owner},
                    )
        if misrouted == 0 and open_scan != total_open:
            record(
                f"shard counters say {total_open} open task(s) but the "
                f"table scan finds {open_scan} — the O(1) accounting "
                "diverged from the tables it summarizes",
                {"shards": counters, "open_scan": open_scan},
            )


def default_invariants() -> list[Invariant]:
    return [
        QueueConservation(),
        NoDoubleCompletion(),
        NoDoubleDelivery(),
        MemoConsistency(),
        MonotoneLiveness(),
        NoTaskLost(),
        BoundedInFlight(),
        ShardConservation(),
        CrossShardConservation(),
    ]


class InvariantRegistry:
    """Routes probe events to invariants and collects violations.

    Components emit through the callables returned by :meth:`probe`; the
    chaos scheduler calls :meth:`set_step` around each fault step so
    violations are attributed to the step that triggered them.
    """

    def __init__(self, invariants: Iterable[Invariant] | None = None,
                 trace_resolver: Callable[[str], str | None] | None = None):
        self.invariants: list[Invariant] = (
            list(invariants) if invariants is not None else default_invariants()
        )
        self._lock = threading.Lock()
        self.violations: list[InvariantViolation] = []
        self.current_step: FaultStep | None = None
        self.events_seen = 0
        # task_id -> trace_id lookup (typically ``TraceStore.trace_id_for``)
        # used to stamp violations with the traces of the tasks involved.
        self.trace_resolver = trace_resolver

    # ------------------------------------------------------------------
    def probe(self, source: str) -> Callable[[str, dict[str, Any]], None]:
        """A probe callable for one component, tagged with ``source``."""

        def _probe(event: str, fields: dict[str, Any]) -> None:
            self.dispatch(source, event, fields)

        return _probe

    def set_step(self, step: FaultStep | None) -> None:
        with self._lock:
            self.current_step = step

    def dispatch(self, source: str, event: str, fields: dict[str, Any]) -> None:
        with self._lock:
            step = self.current_step
            self.events_seen += 1
        for invariant in self.invariants:

            def record(message: str, details: dict[str, Any],
                       _inv: Invariant = invariant, _step: FaultStep | None = step) -> None:
                self.record(_inv.name, message, details, _step)

            try:
                invariant.on_event(source, event, fields, record)
            except Exception as exc:  # invariant bugs must never sink the fabric
                self.record(invariant.name,
                            f"invariant checker raised {type(exc).__name__}: {exc}",
                            {"source": source, "event": event}, step)

    def record(self, invariant: str, message: str,
               details: dict[str, Any] | None = None,
               step: FaultStep | None = None) -> None:
        details = details or {}
        violation = InvariantViolation(
            invariant=invariant, message=message,
            fault_step=step if step is not None else self.current_step,
            details=details,
            trace_ids=self._resolve_traces(details),
        )
        with self._lock:
            self.violations.append(violation)

    def _resolve_traces(self, details: dict[str, Any]) -> tuple[str, ...]:
        """Trace ids for the task(s) a violation's details name."""
        trace_ids: list[str] = []
        explicit = details.get("trace_id")
        if explicit:
            trace_ids.append(str(explicit))
        resolver = self.trace_resolver
        if resolver is not None:
            task_ids = [t for t in [details.get("task_id")] if t]
            task_ids.extend(details.get("task_ids") or ())
            for task_id in task_ids:
                try:
                    trace_id = resolver(str(task_id))
                except Exception:
                    trace_id = None
                if trace_id:
                    trace_ids.append(trace_id)
        # preserve order, drop duplicates
        return tuple(dict.fromkeys(trace_ids))

    # ------------------------------------------------------------------
    def check_final(self, world: "ChaosWorld | None" = None) -> list[InvariantViolation]:
        """Run every invariant's quiescence check; returns new violations."""
        before = len(self.violations)
        for invariant in self.invariants:

            def record(message: str, details: dict[str, Any],
                       step: FaultStep | None = None,
                       _inv: Invariant = invariant) -> None:
                self.record(_inv.name, message, details, step)

            try:
                invariant.check_final(world, record)
            except Exception as exc:
                self.record(invariant.name,
                            f"final check raised {type(exc).__name__}: {exc}", {})
        with self._lock:
            return self.violations[before:]

    @property
    def ok(self) -> bool:
        with self._lock:
            return not self.violations
