"""Seed-deterministic fault plans.

A :class:`FaultPlan` is a scripted schedule of fault-injection steps —
message-drop windows, endpoint disconnect/reconnect, latency spikes,
manager kills, clock-skewed heartbeats — applied against a live
:class:`~repro.chaos.world.ChaosWorld` or converted to a
:class:`~repro.sim.fabric.FailureSchedule` for the simulated fabric.

Plans are plain data: byte-identical under the same seed (the
determinism contract chaos CI relies on), JSON round-trippable (the
replay artifact), and composed of frozen :class:`FaultStep` records so a
violation report can name the exact step that triggered it.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

#: Actions the scheduler knows how to apply to a live world.
ACTIONS = frozenset({
    "set_drop",             # params: probability        target: endpoint name
    "set_latency",          # params: latency            target: endpoint name
    "disconnect_endpoint",  #                            target: endpoint name
    "reconnect_endpoint",   #                            target: endpoint name
    "kill_manager",         # params: index (optional)   target: endpoint name
    "restart_manager",      #                            target: endpoint name
    "skew_heartbeats",      # params: skew               target: endpoint name
    "kill_shard",           # params: shard (index)      target: "" (service-side)
    "restart_shard",        # params: shard (index)      target: "" (service-side)
    "pause",                # no-op marker step
})


@dataclass(frozen=True, order=True)
class FaultStep:
    """One scheduled fault action.

    ``params`` is a canonically-sorted tuple of ``(key, value)`` pairs so
    steps stay hashable and serialize to byte-identical JSON.
    """

    at: float
    action: str
    target: str = ""
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, at: float, action: str, target: str = "", **params: Any) -> "FaultStep":
        if action not in ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        return cls(at=float(at), action=action, target=target,
                   params=tuple(sorted(params.items())))

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def describe(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        target = f" @{self.target}" if self.target else ""
        return f"t+{self.at:.3f}s {self.action}{target}({params})"

    def to_record(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "action": self.action,
            "target": self.target,
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "FaultStep":
        return cls.make(record["at"], record["action"],
                        record.get("target", ""), **record.get("params", {}))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, named, seeded schedule of fault steps."""

    name: str
    seed: int
    steps: tuple[FaultStep, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(sorted(self.steps)))

    @property
    def duration(self) -> float:
        return self.steps[-1].at if self.steps else 0.0

    # -- serialization (replay artifacts) ------------------------------------
    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "steps": [step.to_record() for step in self.steps],
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "FaultPlan":
        return cls(
            name=record["name"],
            seed=record["seed"],
            steps=tuple(FaultStep.from_record(s) for s in record["steps"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_record(json.loads(text))

    def schedule_bytes(self) -> bytes:
        """Canonical byte encoding of the schedule.

        Two plans generated from the same seed and spec produce identical
        bytes — the determinism contract asserted by the chaos suite.
        """
        return json.dumps(self.to_record(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def checksum(self) -> str:
        return hashlib.sha256(self.schedule_bytes()).hexdigest()

    # -- sim bridge ----------------------------------------------------------
    def to_failure_schedule(self) -> "Any":
        """Convert disconnect/kill pairs to a sim ``FailureSchedule``.

        Endpoint ``disconnect_endpoint``/``reconnect_endpoint`` pairs and
        ``kill_manager``/``restart_manager`` pairs (matched in time order
        per target) become the simulated fabric's failure windows; other
        actions have no sim analogue and are skipped.
        """
        from repro.sim.fabric import FailureSchedule

        endpoint_failures: list[tuple[float, float]] = []
        manager_failures: list[tuple[float, float, int]] = []
        open_disconnects: list[float] = []
        open_kills: list[tuple[float, int]] = []
        for step in self.steps:
            if step.action == "disconnect_endpoint":
                open_disconnects.append(step.at)
            elif step.action == "reconnect_endpoint" and open_disconnects:
                endpoint_failures.append((open_disconnects.pop(0), step.at))
            elif step.action == "kill_manager":
                open_kills.append((step.at, int(step.param("index", 0))))
            elif step.action == "restart_manager" and open_kills:
                fail_at, index = open_kills.pop(0)
                manager_failures.append((fail_at, step.at, index))
        return FailureSchedule(
            manager_failures=tuple(manager_failures),
            endpoint_failures=tuple(endpoint_failures),
        )


def generate_plan(
    name: str,
    seed: int,
    duration: float,
    endpoints: Sequence[str] | Iterable[str] = ("ep",),
    *,
    drop_windows: int = 1,
    max_drop: float = 0.3,
    latency_spikes: int = 0,
    base_latency: float = 0.001,
    spike_latency: float = 0.05,
    disconnects: int = 0,
    manager_kills: int = 0,
    heartbeat_skews: int = 0,
    skew: float = 10.0,
) -> FaultPlan:
    """Generate a randomized fault plan, deterministically from ``seed``.

    Fault kinds are emitted in a fixed order and all randomness flows
    from one ``random.Random(seed)``, so the same arguments always yield
    a byte-identical schedule.
    """
    rng = random.Random(seed)
    steps: list[FaultStep] = []

    def window(max_width: float) -> tuple[float, float]:
        start = rng.uniform(0.0, max(0.0, duration * 0.7))
        width = rng.uniform(0.05, max(0.06, max_width))
        return start, min(duration, start + width)

    for endpoint in sorted(endpoints):
        for _ in range(drop_windows):
            start, end = window(duration * 0.5)
            probability = rng.uniform(0.05, max_drop)
            steps.append(FaultStep.make(start, "set_drop", endpoint,
                                        probability=round(probability, 6)))
            steps.append(FaultStep.make(end, "set_drop", endpoint,
                                        probability=0.0))
        for _ in range(latency_spikes):
            start, end = window(duration * 0.4)
            steps.append(FaultStep.make(start, "set_latency", endpoint,
                                        latency=spike_latency))
            steps.append(FaultStep.make(end, "set_latency", endpoint,
                                        latency=base_latency))
        for _ in range(disconnects):
            start, end = window(duration * 0.5)
            steps.append(FaultStep.make(start, "disconnect_endpoint", endpoint))
            steps.append(FaultStep.make(end, "reconnect_endpoint", endpoint))
        for _ in range(manager_kills):
            start, end = window(duration * 0.5)
            steps.append(FaultStep.make(start, "kill_manager", endpoint, index=0))
            steps.append(FaultStep.make(end, "restart_manager", endpoint))
        for _ in range(heartbeat_skews):
            start, end = window(duration * 0.5)
            steps.append(FaultStep.make(start, "skew_heartbeats", endpoint,
                                        skew=skew))
            steps.append(FaultStep.make(end, "skew_heartbeats", endpoint,
                                        skew=0.0))
    return FaultPlan(name=name, seed=seed, steps=tuple(steps))
