"""The fault scheduler: applies a :class:`FaultPlan` to a live world.

Steps fire at ``plan_start + step.at`` on the pacing clock (monotonic by
default, injectable for deterministic tests); before each
application the world's invariant registry is pointed at the step so any
violation the fault provokes is attributed to it in the report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.plan import FaultPlan, FaultStep


@dataclass
class AppliedStep:
    """One step as actually applied (or skipped) during a run."""

    step: FaultStep
    applied_at: float
    error: str | None = None


@dataclass
class ScheduleResult:
    """What the scheduler did with a plan."""

    plan: FaultPlan
    applied: list[AppliedStep] = field(default_factory=list)

    @property
    def errors(self) -> list[AppliedStep]:
        return [a for a in self.applied if a.error is not None]


class ChaosScheduler:
    """Replays a fault plan against a :class:`~repro.chaos.world.ChaosWorld`.

    The scheduler is deliberately dumb: the plan is the authority on what
    happens and when, the world knows how to apply each action, and the
    registry records which step was active.  ``run`` blocks until every
    step has fired; ``run_async`` drives the same loop on a daemon thread
    so the test can submit tasks while faults land.
    """

    def __init__(
        self,
        world: "ChaosWorld",  # noqa: F821 - forward ref
        clock: Callable[[], float] | None = None,
    ):
        self.world = world
        self._thread: threading.Thread | None = None
        self._abort = threading.Event()
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        # The drive thread publishes results that join()/report callers
        # on the main thread read back.
        self._result_lock = threading.Lock()
        self.last_result: ScheduleResult | None = None  # guarded-by: self._result_lock

    # ------------------------------------------------------------------
    def run(self, plan: FaultPlan) -> ScheduleResult:
        """Apply every step of ``plan`` in order, pacing on the clock."""
        result = ScheduleResult(plan=plan)
        registry = self.world.registry
        start = self._clock()
        for step in plan.steps:  # already sorted by FaultPlan
            if self._abort.is_set():
                break
            delay = (start + step.at) - self._clock()
            if delay > 0 and self._abort.wait(delay):
                break
            registry.set_step(step)
            applied = AppliedStep(step=step, applied_at=self._clock() - start)
            try:
                self.world.apply_step(step)
            except Exception as exc:
                applied.error = f"{type(exc).__name__}: {exc}"
            result.applied.append(applied)
        registry.set_step(None)
        with self._result_lock:
            self.last_result = result
        return result

    # ------------------------------------------------------------------
    def run_async(self, plan: FaultPlan) -> "threading.Thread":
        """Run the plan on a background thread; returns it for joining."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("a plan is already running")
        self._abort.clear()
        with self._result_lock:
            self.last_result = None

        def _drive() -> None:
            self.run(plan)  # run() publishes last_result under the lock

        self._thread = threading.Thread(target=_drive, name="chaos-scheduler",
                                        daemon=True)
        self._thread.start()
        return self._thread

    def join(self, timeout: float | None = None) -> ScheduleResult | None:
        if self._thread is not None:
            self._thread.join(timeout)
        with self._result_lock:
            return self.last_result

    def abort(self) -> None:
        """Stop firing further steps (already-applied faults stay applied)."""
        self._abort.set()
