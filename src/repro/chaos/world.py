"""A fully-instrumented live deployment for chaos testing.

:class:`ChaosWorld` wraps a :class:`~repro.fabric.LocalDeployment`,
attaches invariant probes to every observable component (queues,
channels, service, memoizer, forwarders, futures), knows how to apply
each fault-plan action, and can account for every non-terminal task at
quiescence — the basis of the *no-task-lost* invariant.

Typical use (also packaged as the ``chaos_world`` pytest fixture)::

    with ChaosWorld(seed=7) as world:
        world.add_endpoint("ep", nodes=2)
        plan = generate_plan("disconnect", seed=7, duration=1.0,
                             endpoints=["ep"], disconnects=1)
        client = world.client()
        ...submit tasks while world.start_plan(plan) runs...
        world.finish_plan()
        world.drain()
        report = world.check_final()
        assert report.ok, report.describe()
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chaos.invariants import Invariant, InvariantRegistry, InvariantViolation
from repro.chaos.plan import FaultPlan, FaultStep
from repro.chaos.scheduler import ChaosScheduler, ScheduleResult
from repro.core.futures import FuncXFuture
from repro.core.service import ServiceConfig
from repro.endpoint.config import EndpointConfig
from repro.fabric import LocalDeployment

ARTIFACT_VERSION = 1


@dataclass
class _EndpointHooks:
    """Everything the chaos machinery holds for one endpoint."""

    name: str
    endpoint_id: str
    endpoint: Any
    forwarder: Any
    channel: Any
    queue: Any
    spec: dict[str, Any]


@dataclass
class ChaosReport:
    """Outcome of a chaos run: invariant verdicts plus what was applied."""

    ok: bool
    violations: list[InvariantViolation] = field(default_factory=list)
    schedule: ScheduleResult | None = None
    events_seen: int = 0

    def describe(self) -> str:
        if self.ok:
            applied = len(self.schedule.applied) if self.schedule else 0
            return (f"all invariants held ({self.events_seen} events, "
                    f"{applied} fault steps applied)")
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines.extend(f"  - {v.describe()}" for v in self.violations)
        return "\n".join(lines)


class ChaosWorld:
    """A live deployment with invariant probes and fault-action hooks.

    Parameters
    ----------
    seed:
        Deployment seed (channel RNGs) — with the fault plan's seed, the
        full experiment is reproducible.
    max_retries:
        Service-side retry budget per task.
    invariants:
        Override the default invariant set (``None`` = all built-ins).
    sanitize_locks:
        Run the deployment with the runtime lock-order sanitizer
        (:mod:`repro.analysis.sanitizer`); the recorder is reachable as
        ``world.deployment.lock_recorder``.
    """

    def __init__(self, seed: int = 0, *, max_retries: int = 8,
                 invariants: list[Invariant] | None = None,
                 clock: Callable[[], float] | None = None,
                 sleeper: Callable[[float], None] | None = None,
                 sanitize_locks: bool = False,
                 shards: int = 1):
        self.seed = seed
        self.max_retries = max_retries
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.registry = InvariantRegistry(invariants)
        self.deployment = LocalDeployment(
            seed=seed,
            service_config=ServiceConfig(default_max_retries=max_retries,
                                         shards=shards),
            sanitize_locks=sanitize_locks,
        )
        service = self.deployment.service
        service.probe = self.registry.probe("service")
        service.memoizer.probe = self.registry.probe("memoizer")
        # Stamp invariant violations with the trace ids of the tasks they
        # name, so a failed run links straight into the span record.
        self.registry.trace_resolver = service.traces.trace_id_for
        self._saved_future_observer = FuncXFuture.observer
        FuncXFuture.observer = self.registry.probe("futures")
        self.scheduler = ChaosScheduler(self)
        self.hooks: dict[str, _EndpointHooks] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # world building
    # ------------------------------------------------------------------
    def add_endpoint(
        self,
        name: str,
        nodes: int = 1,
        workers_per_node: int = 4,
        drop_probability: float = 0.0,
        latency: float = 0.001,
        heartbeat_period: float = 0.05,
        heartbeat_grace: int = 6,
        lease_timeout: float | None = 0.5,
    ) -> str:
        """Deploy one instrumented endpoint; returns its endpoint id.

        The endpoint is brought up on a clean channel and the requested
        ``drop_probability`` is applied only once it is observably
        connected, so a lossy world never eats its own registration.
        """
        if name in self.hooks:
            raise ValueError(f"endpoint {name!r} already exists")
        spec = {
            "nodes": nodes,
            "workers_per_node": workers_per_node,
            "drop_probability": drop_probability,
            "latency": latency,
            "heartbeat_period": heartbeat_period,
            "heartbeat_grace": heartbeat_grace,
            "lease_timeout": lease_timeout,
        }
        config = EndpointConfig(
            workers_per_node=workers_per_node,
            heartbeat_period=heartbeat_period,
            heartbeat_grace=heartbeat_grace,
        )
        endpoint_id = self.deployment.create_endpoint(
            name, nodes=nodes, config=config, start=False
        )
        endpoint = self.deployment.endpoint(endpoint_id)
        forwarder = self.deployment.forwarder(endpoint_id)
        channel = self.deployment.network.find(f"svc<->{name}")
        assert channel is not None
        queue = self.deployment.service.task_queue(endpoint_id)
        # Instrument before starting so no event escapes the registry.
        forwarder.lease_timeout = lease_timeout
        forwarder.probe = self.registry.probe(f"forwarder:{name}")
        channel.probe = self.registry.probe(f"channel:{name}")
        channel.set_latency(latency)
        queue.probe = self.registry.probe(f"queue:{name}")

        forwarder.start()
        endpoint.start()
        endpoint.wait_ready()
        deadline = self._clock() + 10.0
        while self._clock() < deadline:
            if self.deployment.service.endpoints.get(endpoint_id).connected:
                break
            self._sleep(0.005)
        channel.drop_probability = drop_probability

        self.hooks[name] = _EndpointHooks(
            name=name, endpoint_id=endpoint_id, endpoint=endpoint,
            forwarder=forwarder, channel=channel, queue=queue, spec=spec,
        )
        return endpoint_id

    def client(self, username: str = "chaos-researcher"):
        return self.deployment.client(username)

    def endpoint_id(self, name: str) -> str:
        return self.hooks[name].endpoint_id

    def _hooks_for(self, target: str) -> _EndpointHooks:
        try:
            return self.hooks[target]
        except KeyError:
            raise KeyError(f"fault step targets unknown endpoint {target!r}") from None

    # ------------------------------------------------------------------
    # fault-action dispatch (called by the scheduler)
    # ------------------------------------------------------------------
    def apply_step(self, step: FaultStep) -> None:
        if step.action == "pause":
            return
        if step.action in ("kill_shard", "restart_shard"):
            # Service-side faults: the target is a shard index, not an
            # endpoint.  Killing a shard drains it and yanks every
            # outstanding queue lease (the shard process dying under its
            # forwarders); the at-least-once machinery must redeliver.
            service = self.deployment.service
            index = int(step.param("shard", 0))
            if not 0 <= index < len(service.shards):
                raise ValueError(
                    f"shard {index} out of range (0..{len(service.shards) - 1})")
            if step.action == "kill_shard":
                service.shards[index].kill()
            else:
                service.restart_shard(index)
            return
        hooks = self._hooks_for(step.target)
        if step.action == "set_drop":
            hooks.channel.drop_probability = float(step.param("probability", 0.0))
        elif step.action == "set_latency":
            hooks.channel.set_latency(float(step.param("latency", 0.0)))
        elif step.action == "disconnect_endpoint":
            hooks.endpoint.kill_endpoint()
        elif step.action == "reconnect_endpoint":
            hooks.endpoint.recover_endpoint()
        elif step.action == "kill_manager":
            managers = sorted(hooks.endpoint.managers)
            if not managers:
                raise RuntimeError(f"endpoint {step.target!r} has no manager to kill")
            index = min(int(step.param("index", 0)), len(managers) - 1)
            hooks.endpoint.kill_manager(managers[index])
        elif step.action == "restart_manager":
            hooks.endpoint.restart_manager()
        elif step.action == "skew_heartbeats":
            hooks.endpoint.skew_heartbeats(float(step.param("skew", 0.0)))
        else:
            raise ValueError(f"unhandled fault action {step.action!r}")

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------
    def run_plan(self, plan: FaultPlan) -> ScheduleResult:
        """Apply ``plan`` synchronously (blocks for its full duration)."""
        return self.scheduler.run(plan)

    def start_plan(self, plan: FaultPlan) -> None:
        """Apply ``plan`` on a background thread (submit tasks meanwhile)."""
        self.scheduler.run_async(plan)

    def finish_plan(self, timeout: float = 60.0) -> ScheduleResult | None:
        return self.scheduler.join(timeout)

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for every endpoint to have no outstanding tasks."""
        ok = True
        for hooks in self.hooks.values():
            ok = self.deployment.drain(hooks.endpoint_id, timeout=timeout) and ok
        return ok

    # ------------------------------------------------------------------
    # task accounting (the no-task-lost invariant)
    # ------------------------------------------------------------------
    def unaccounted_tasks(self) -> list[tuple[str, str, str]]:
        """Non-terminal tasks unreachable by any redelivery path.

        A live task must be in its endpoint's reliable queue (ready or
        under a lease), under the forwarder's open dispatch lease, or —
        while the endpoint is observably connected — held by the agent or
        a manager.  A dispatched task whose message is still in channel
        flight remains covered by the forwarder's open lease, so this
        accounting has no in-flight blind spot.  Tasks held only by a
        *disconnected* endpoint don't count: once the forwarder declares
        the agent lost, the service must own redelivery itself.  Anything
        outside that union can never complete nor be redelivered: it is
        permanently lost.
        """
        by_endpoint: dict[str, set[str]] = {}
        for hooks in self.hooks.values():
            accounted: set[str] = set()
            ready, leased = hooks.queue.snapshot_items()
            accounted.update(ready)
            accounted.update(leased)
            accounted.update(hooks.forwarder.open_task_ids())
            if hooks.forwarder.agent_connected:
                accounted.update(hooks.endpoint.agent.tracked_task_ids())
                for manager in list(hooks.endpoint.managers.values()):
                    accounted.update(manager.tracked_task_ids())
            by_endpoint[hooks.endpoint_id] = accounted
        lost: list[tuple[str, str, str]] = []
        for task in self.deployment.service.iter_tasks():
            if task.state.terminal:
                continue
            accounted = by_endpoint.get(task.endpoint_id, set())
            if task.task_id not in accounted:
                lost.append((task.task_id, task.state.name, task.endpoint_id))
        return lost

    # ------------------------------------------------------------------
    # verdicts & artifacts
    # ------------------------------------------------------------------
    def suspect_step(self, endpoint_id: str) -> FaultStep | None:
        """The applied fault step most plausibly behind a lost task.

        Quiescence checks run after the plan finishes (no step is
        current), so final violations are attributed to the last applied
        *disruptive* action against the task's endpoint — falling back to
        the last step targeting it at all.
        """
        result = self.scheduler.last_result
        if result is None:
            return None
        name = next((n for n, h in self.hooks.items()
                     if h.endpoint_id == endpoint_id), None)
        if name is None:
            return None
        disruptive = {"disconnect_endpoint", "kill_manager",
                      "skew_heartbeats", "set_drop"}
        fallback: FaultStep | None = None
        chosen: FaultStep | None = None
        for applied in result.applied:
            if applied.step.target != name:
                continue
            fallback = applied.step
            if applied.step.action in disruptive:
                chosen = applied.step
        return chosen or fallback

    def check_final(self, schedule: ScheduleResult | None = None) -> ChaosReport:
        """Run quiescence checks and produce the run's report."""
        self.registry.check_final(self)
        return ChaosReport(
            ok=self.registry.ok,
            violations=list(self.registry.violations),
            schedule=schedule if schedule is not None
            else self.scheduler.last_result,
            events_seen=self.registry.events_seen,
        )

    def artifact(self, plan: FaultPlan) -> dict[str, Any]:
        """A replayable failure artifact: world spec + fault plan."""
        return {
            "version": ARTIFACT_VERSION,
            "seed": self.seed,
            "world": {
                "max_retries": self.max_retries,
                "shards": len(self.deployment.service.shards),
                "endpoints": {name: dict(h.spec) for name, h in
                              sorted(self.hooks.items())},
            },
            "plan": plan.to_record(),
        }

    def save_artifact(self, path: str, plan: FaultPlan) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.artifact(plan), fh, sort_keys=True, indent=2)

    @classmethod
    def replay(cls, source: "str | dict[str, Any]",
               invariants: list[Invariant] | None = None,
               ) -> tuple["ChaosWorld", FaultPlan]:
        """Rebuild the world and plan recorded in a failure artifact.

        ``source`` is an artifact path or the already-loaded record.  The
        caller owns the returned world (use it as a context manager) and
        re-runs the plan to reproduce the failure deterministically.
        """
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        else:
            record = source
        if record.get("version") != ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {record.get('version')!r}")
        world_spec = record["world"]
        world = cls(seed=record["seed"],
                    max_retries=world_spec.get("max_retries", 8),
                    invariants=invariants,
                    shards=world_spec.get("shards", 1))
        try:
            for name, spec in sorted(world_spec.get("endpoints", {}).items()):
                world.add_endpoint(name, **spec)
        except Exception:
            world.close()
            raise
        return world, FaultPlan.from_record(record["plan"])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.abort()
        self.deployment.shutdown()
        FuncXFuture.observer = self._saved_future_observer

    def __enter__(self) -> "ChaosWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
