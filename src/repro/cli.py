"""Command-line interface for the reproduction.

Offline-friendly subcommands::

    python -m repro.cli demo                 # end-to-end live demo
    python -m repro.cli scale --platform cori --containers 1024
    python -m repro.cli elasticity           # figure-6 scenario
    python -m repro.cli casestudies          # figure-1 distributions
    python -m repro.cli platforms            # list platform models
    python -m repro.cli trace <task-id>      # per-stage latency breakdown
    python -m repro.cli metrics              # render an exported registry
    python -m repro.cli lint                 # fabric static analyzer
    python -m repro.cli bench --quick        # batched vs per-message A/B
    python -m repro.cli bench --backpressure # credit-flow overload plateau
    python -m repro.cli bench --result-stream  # push vs poll result delivery
    python -m repro.cli bench --shard-scale  # service-plane shard scaling

``demo --trace-out traces.jsonl --metrics-out metrics.jsonl`` exports the
observability artifacts the ``trace``/``metrics`` subcommands consume.

Each prints the same rows the corresponding benchmark regenerates, at a
smaller default scale suited to interactive use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import EndpointConfig, LocalDeployment

    def double(x):
        return 2 * x

    with LocalDeployment() as deployment:
        client = deployment.client("demo-user")
        ep = deployment.create_endpoint(
            "demo-ep", nodes=args.nodes,
            config=EndpointConfig(workers_per_node=args.workers),
        )
        fid = client.register_function(double)
        print(f"registered function {fid}")
        task = client.run(fid, ep, 21)
        print(f"double(21) -> {client.wait_for(task, timeout=30)}")
        print(f"task id: {task}")
        mapped = client.map(fid, range(args.tasks), ep, batch_size=16)
        values = mapped.result(timeout=60)
        print(f"map over {args.tasks} inputs -> first 5: {values[:5]}")
        # Executor-grade SDK: batched submits, push-streamed results.
        with client.executor(ep) as executor:
            futures = [executor.submit(fid, i) for i in range(5)]
            streamed = [f.result(timeout=30) for f in futures]
        print(f"executor (push stream) double(0..4) -> {streamed}")
        if args.trace_out:
            count = deployment.service.traces.dump_jsonl(args.trace_out)
            print(f"wrote {count} traces to {args.trace_out} "
                  f"(inspect with: repro trace {task} --input {args.trace_out})")
        if args.metrics_out:
            count = deployment.metrics.dump_jsonl(args.metrics_out)
            print(f"wrote {count} metrics to {args.metrics_out} "
                  f"(inspect with: repro metrics --input {args.metrics_out})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability.trace import STAGES, TraceStore

    try:
        contexts = TraceStore.load_jsonl(args.input)
    except OSError as exc:
        print(f"cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    wanted = [c for c in contexts
              if c.task_id == args.task_id or c.trace_id == args.task_id
              or c.task_id.startswith(args.task_id)
              or c.trace_id.startswith(args.task_id)]
    if not wanted:
        print(f"no trace for task or trace id {args.task_id!r} in {args.input}",
              file=sys.stderr)
        return 1
    for ctx in wanted:
        print(f"trace {ctx.trace_id}  task {ctx.task_id}")
        spans = ctx.completed_spans()
        if spans:
            print(f"  {'stage':<20s} {'component':<24s} {'duration':>12s}  notes")
            for span in spans:
                duration = span.duration
                text = f"{duration * 1e3:9.3f}ms" if duration is not None else "   (open)"
                notes = ", ".join(f"{k}={v}" for k, v in sorted(span.annotations.items()))
                if span.attempt:
                    notes = f"attempt={span.attempt}" + (f", {notes}" if notes else "")
                print(f"  {span.name:<20s} {span.component:<24s} {text:>12s}  {notes}")
        breakdown = ctx.breakdown()
        if breakdown:
            ordered = [s for s in STAGES if s in breakdown]
            ordered += [s for s in breakdown if s not in STAGES]
            parts = " + ".join(f"{s}={breakdown[s] * 1e3:.3f}ms" for s in ordered)
            print(f"  breakdown: {parts}")
        total = ctx.total()
        if total is not None:
            print(f"  end-to-end: {total * 1e3:.3f}ms")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.metrics.registry import MetricsRegistry, render_records

    try:
        records = MetricsRegistry.load_jsonl(args.input)
    except OSError as exc:
        print(f"cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    if args.name:
        records = [r for r in records if args.name in r["name"]]
    if not records:
        print("no matching metrics", file=sys.stderr)
        return 1
    print(render_records(records))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.sim import SimFabric
    from repro.sim.platform import PLATFORMS

    platform = PLATFORMS[args.platform]
    managers = platform.nodes_for(args.containers)
    workers = min(args.containers, platform.containers_per_node)
    fab = SimFabric(platform, managers=managers, workers_per_manager=workers,
                    prefetch=args.prefetch, seed=1)
    total = args.tasks if args.tasks else args.containers * 10
    fab.submit_batch(total, duration=args.duration)
    report = fab.run()
    print(f"platform={platform.name} containers={args.containers} "
          f"managers={managers}")
    print(f"tasks={report.tasks_completed:,} duration={args.duration}s each")
    print(f"completion: {report.completion_time:.2f}s "
          f"throughput: {report.throughput:,.0f} tasks/s "
          f"(agent ceiling {platform.agent_throughput_ceiling:,.0f}/s)")
    return 0


def _cmd_elasticity(args: argparse.Namespace) -> int:
    from repro.sim import ElasticitySimulation
    from repro.workloads.generators import burst_arrivals

    sim = ElasticitySimulation()
    sim.submit(list(burst_arrivals(
        120.0, args.bursts, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)]
    )))
    timelines = sim.run(until=args.bursts * 120.0 + 60.0)
    print("image  peak-pods  (cap 10)")
    for image in ("1s", "10s", "20s"):
        print(f"{image:>5s}  {timelines.peak_pods(image):9.0f}")
    print(f"functions completed: {timelines.completed}")
    return 0


def _cmd_casestudies(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.workloads import CASE_STUDIES

    print(f"{'case study':<14s} {'median':>8s} {'p95':>8s}  description")
    for name, study in sorted(CASE_STUDIES.items()):
        samples = study.sample_many(args.samples, seed=1)
        print(f"{name:<14s} {np.median(samples):8.3f} "
              f"{np.percentile(samples, 95):8.3f}  {study.description}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error."""
    import inspect
    import json
    from pathlib import Path

    from repro.analysis import Baseline, run_analysis
    from repro.analysis.baseline import BASELINE_VERSION
    from repro.analysis.runner import ALL_CHECKS, GLOBAL_CHECKS

    if args.explain:
        known = {**ALL_CHECKS, **GLOBAL_CHECKS}
        check = known.get(args.explain)
        if check is None:
            print(f"unknown check {args.explain!r}; available: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2
        print(f"[{args.explain}]")
        print(inspect.getdoc(check))
        return 0

    roles = None
    if args.roles:
        from repro.analysis.threadroles import ROLES, canonical_role

        roles = [canonical_role(name) for spec in args.roles
                 for name in spec.split(",") if name.strip()]
        unknown_roles = sorted(set(roles) - set(ROLES))
        if unknown_roles:
            print(f"unknown role(s): {', '.join(unknown_roles)}; available: "
                  f"{', '.join(ROLES)}", file=sys.stderr)
            return 2

    checks = global_checks = None
    if args.protocols:
        names = [name.strip()
                 for spec in args.protocols for name in spec.split(",")
                 if name.strip()]
        unknown = sorted(set(names) - set(ALL_CHECKS) - set(GLOBAL_CHECKS))
        if unknown:
            print(f"unknown check(s): {', '.join(unknown)}; available: "
                  f"{', '.join(sorted({**ALL_CHECKS, **GLOBAL_CHECKS}))}",
                  file=sys.stderr)
            return 2
        checks = {n: ALL_CHECKS[n] for n in ALL_CHECKS if n in names}
        global_checks = {n: GLOBAL_CHECKS[n] for n in GLOBAL_CHECKS
                         if n in names}

    repo_root = Path(args.root).resolve()
    paths = [Path(p) for p in args.paths]
    for pattern in args.path_globs or []:
        matched = sorted(repo_root.glob(pattern))
        if not matched:
            print(f"--paths pattern {pattern!r} matched nothing under "
                  f"{repo_root}", file=sys.stderr)
            return 2
        paths.extend(matched)
    if args.changed:
        import subprocess
        try:
            diff = subprocess.run(
                ["git", "diff", "--name-only", "HEAD"],
                cwd=repo_root, capture_output=True, text=True, check=True)
            untracked = subprocess.run(
                ["git", "ls-files", "--others", "--exclude-standard"],
                cwd=repo_root, capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"--changed requires a git checkout at {repo_root}: {exc}",
                  file=sys.stderr)
            return 2
        changed = sorted({
            line.strip()
            for out in (diff.stdout, untracked.stdout)
            for line in out.splitlines() if line.strip().endswith(".py")
        })
        changed_paths = [repo_root / rel for rel in changed
                         if (repo_root / rel).exists()]
        if not changed_paths:
            print("no changed Python files; nothing to lint")
            return 0
        paths.extend(changed_paths)
    if not paths:
        paths = [repo_root / "src"]
    baseline_path = Path(args.baseline) if args.baseline else (
        repo_root / "analysis-baseline.json")

    if args.no_baseline:
        baseline = None
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    report = run_analysis(paths, repo_root=repo_root, baseline=baseline,
                          checks=checks, global_checks=global_checks,
                          roles=roles)

    if args.update_baseline:
        refreshed = Baseline.from_findings(report.all_findings())
        refreshed.save(baseline_path)
        print(f"baseline updated: {len(refreshed)} entr"
              f"{'y' if len(refreshed) == 1 else 'ies'} -> {baseline_path}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_record(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if args.format == "sarif":
        from repro.analysis.sarif import to_sarif
        print(json.dumps(to_sarif(report), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    for error in report.errors:
        print(f"error: {error}")
    for finding in report.findings:
        print(finding.format())
    for finding in report.infos:
        print(finding.format())
    parts = [f"{report.files_analyzed} files analyzed",
             f"{len(report.findings)} violation(s)"]
    if report.infos:
        parts.append(f"{len(report.infos)} advisory")
    if report.suppressed:
        parts.append(f"{len(report.suppressed)} baselined")
    if report.stale:
        parts.append(f"{len(report.stale)} stale baseline entr"
                     f"{'y' if len(report.stale) == 1 else 'ies'}")
    print("; ".join(parts))
    for entry in report.stale:
        print(f"  stale: [{entry.check}] {entry.path} {entry.symbol}: "
              f"{entry.line_text!r} (run --update-baseline to prune)")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """A/B the batched, event-driven fabric against per-message polling."""
    from repro.perf import LEGACY_POLL_INTERVAL, compare_modes

    if args.backpressure:
        return _bench_backpressure(quick=args.quick)
    if args.result_stream:
        return _bench_result_stream(quick=args.quick)
    if args.shard_scale:
        return _bench_shard_scale(quick=args.quick)
    if args.quick:
        tasks, samples, pairs = 16, 6, 1
    else:
        tasks, samples, pairs = args.tasks, args.samples, args.pairs
    comparison = compare_modes(
        tasks=tasks, samples=samples, latency=args.latency,
        transfer_cost=args.transfer_cost, pairs=pairs)
    throughput = comparison["throughput"]
    latency = comparison["latency"]
    print(f"{'mode':<12s} {'tasks/s':>9s} {'p50(ms)':>9s} {'p99(ms)':>9s}")
    for mode in ("per-message", "batched"):
        print(f"{mode:<12s} {throughput[mode]['tasks_per_second']:9,.0f} "
              f"{latency[mode]['p50_s'] * 1e3:9.2f} "
              f"{latency[mode]['p99_s'] * 1e3:9.2f}")
    print(f"speedup: {comparison['speedup']:.2f}x  "
          f"p50 improvement: {comparison['p50_improvement_s'] * 1e3:.2f}ms "
          f"(legacy poll quantum {LEGACY_POLL_INTERVAL * 1e3:.0f}ms)")
    print("full gate: PYTHONPATH=src:. python -m pytest "
          "benchmarks/bench_e2e_throughput.py")
    return 0


def _bench_backpressure(quick: bool) -> int:
    """Overload a credited endpoint; report the in-flight plateau."""
    from repro.perf import measure_backpressure

    if quick:
        result = measure_backpressure(tasks=24, task_duration=0.01)
    else:
        result = measure_backpressure()
    print(f"{'metric':<22s} {'value':>10s}")
    print(f"{'credit window':<22s} {result['window']:>10d}")
    print(f"{'peak in-flight':<22s} {result['peak_in_flight']:>10d}")
    print(f"{'plateau (1st/2nd)':<22s} "
          f"{result['first_half_peak']:>4d}/{result['second_half_peak']:<5d}")
    print(f"{'queue high watermark':<22s} {result['queue_high_watermark']:>10d}")
    print(f"{'credit stalls':<22s} {result['credit_stalls']:>10d}")
    print(f"{'tasks/s':<22s} {result['tasks_per_second']:>10.1f}")
    bounded = result["peak_in_flight"] <= result["window"]
    print(f"bounded in flight: {'yes' if bounded else 'NO'} "
          f"({result['mismatch']:.0f}:1 offered/window mismatch)")
    print("full gate: PYTHONPATH=src:. python -m pytest "
          "benchmarks/bench_backpressure.py")
    return 0 if bounded else 1


def _bench_result_stream(quick: bool) -> int:
    """Push-based result delivery vs the polling client."""
    from repro.perf import measure_result_stream

    if quick:
        result = measure_result_stream(tasks=16, samples=8)
    else:
        result = measure_result_stream()
    poll_floor = result["params"]["poll_interval_s"]
    print(f"{'path':<8s} {'p50(ms)':>9s} {'p99(ms)':>9s} {'mean(ms)':>9s}")
    for mode in ("poll", "push"):
        stats = result[mode]
        print(f"{mode:<8s} {stats['p50_s'] * 1e3:9.2f} "
              f"{stats['p99_s'] * 1e3:9.2f} {stats['mean_s'] * 1e3:9.2f}")
    stream = result["stream"]
    print(f"push wave: {result['throughput']['tasks_per_second']:,.0f} tasks/s "
          f"({stream['results_delivered']} results in "
          f"{stream['batches_delivered']} batches, "
          f"mean {stream['mean_batch_size']:.1f}/batch)")
    below_floor = result["push"]["p50_s"] < poll_floor
    print(f"push p50 below the {poll_floor * 1e3:.0f}ms poll floor: "
          f"{'yes' if below_floor else 'NO'} "
          f"({result['p50_speedup']:.1f}x faster than polling)")
    print("full gate: PYTHONPATH=src:. python -m pytest "
          "benchmarks/bench_result_stream.py")
    return 0 if below_floor else 1


def _bench_shard_scale(quick: bool) -> int:
    """Aggregate tasks/s 1 → 4 shards + 10:1 tenant fairness."""
    from repro.perf import measure_shard_scale

    if quick:
        result = measure_shard_scale(tasks=128, fairness_rounds=30)
    else:
        result = measure_shard_scale()
    print(f"{'shards':<8s} {'tasks':>7s} {'seconds':>9s} {'tasks/s':>9s}")
    for run in result["scaling"]["runs"]:
        print(f"{run['shards']:<8d} {run['tasks']:>7d} "
              f"{run['seconds']:>9.3f} {run['tasks_per_second']:>9,.0f}")
    fairness = result["fairness"]
    speedup = result["scaling"]["speedup"]
    print(f"speedup 1->{result['params']['shard_counts'][-1]}: {speedup:.2f}x")
    print(f"fairness p99 gap: {fairness['p99_gap']:.3f} "
          f"(polite share {fairness['polite_share']:.2f} of service vs "
          f"{1 / (result['params']['fairness_mix'] + 1):.2f} of arrivals)")
    scaled = speedup >= 2.5 and fairness["p99_gap"] <= 0.35
    print(f"near-linear and fair: {'yes' if scaled else 'NO'}")
    print("full gate: PYTHONPATH=src:. python -m pytest "
          "benchmarks/bench_shard_scale.py")
    return 0 if scaled else 1


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.sim.platform import PLATFORMS

    print(f"{'platform':<8s} {'ctr/node':>8s} {'ceiling/s':>10s} {'cold(s)':>8s}")
    for name, platform in PLATFORMS.items():
        print(f"{name:<8s} {platform.containers_per_node:8d} "
              f"{platform.agent_throughput_ceiling:10.0f} "
              f"{platform.container_cold_start:8.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="funcX reproduction (HPDC 2020) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a live end-to-end demo")
    demo.add_argument("--nodes", type=int, default=1)
    demo.add_argument("--workers", type=int, default=4)
    demo.add_argument("--tasks", type=int, default=50)
    demo.add_argument("--trace-out", default="",
                      help="write per-task traces (JSON lines) to this path")
    demo.add_argument("--metrics-out", default="",
                      help="write the metrics registry (JSON lines) to this path")
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser(
        "trace", help="show a task's per-stage latency breakdown")
    trace.add_argument("task_id", help="task id or trace id (prefix accepted)")
    trace.add_argument("--input", default="traces.jsonl",
                       help="trace dump written by 'demo --trace-out' "
                            "(default: traces.jsonl)")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="render an exported metrics registry")
    metrics.add_argument("--input", default="metrics.jsonl",
                         help="metrics dump written by 'demo --metrics-out' "
                              "(default: metrics.jsonl)")
    metrics.add_argument("--name", default="",
                         help="only show metrics whose name contains this")
    metrics.set_defaults(func=_cmd_metrics)

    scale = sub.add_parser("scale", help="simulate an agent scaling run")
    scale.add_argument("--platform", choices=["theta", "cori", "ec2", "k8s"],
                       default="theta")
    scale.add_argument("--containers", type=int, default=256)
    scale.add_argument("--tasks", type=int, default=0,
                       help="total tasks (default: 10 per container)")
    scale.add_argument("--duration", type=float, default=0.0)
    scale.add_argument("--prefetch", type=int, default=0)
    scale.set_defaults(func=_cmd_scale)

    elas = sub.add_parser("elasticity", help="simulate the figure-6 scenario")
    elas.add_argument("--bursts", type=int, default=3)
    elas.set_defaults(func=_cmd_elasticity)

    cases = sub.add_parser("casestudies", help="sample the figure-1 distributions")
    cases.add_argument("--samples", type=int, default=100)
    cases.set_defaults(func=_cmd_casestudies)

    plats = sub.add_parser("platforms", help="list platform models")
    plats.set_defaults(func=_cmd_platforms)

    bench = sub.add_parser(
        "bench",
        help="A/B the batched, event-driven dispatch fabric against "
             "per-message polling on a live deployment")
    bench.add_argument("--quick", action="store_true",
                       help="scaled-down run finishing in a few seconds")
    bench.add_argument("--tasks", type=int, default=96,
                       help="tasks per throughput wave (default: 96)")
    bench.add_argument("--samples", type=int, default=20,
                       help="sequential round trips for latency percentiles "
                            "(default: 20)")
    bench.add_argument("--pairs", type=int, default=2,
                       help="interleaved A/B repetitions, best-of per mode "
                            "(default: 2)")
    bench.add_argument("--latency", type=float, default=0.001,
                       help="one-way channel latency in seconds (default: 1 ms)")
    bench.add_argument("--backpressure", action="store_true",
                       help="run the credit-flow overload benchmark instead "
                            "of the batching A/B")
    bench.add_argument("--result-stream", dest="result_stream",
                       action="store_true",
                       help="run the push-vs-poll result delivery benchmark "
                            "instead of the batching A/B")
    bench.add_argument("--shard-scale", dest="shard_scale",
                       action="store_true",
                       help="run the service-plane shard-scaling benchmark "
                            "instead of the A/B comparison")
    bench.add_argument("--transfer-cost", dest="transfer_cost", type=float,
                       default=0.001,
                       help="serial per-transfer link occupancy in seconds "
                            "(default: 1 ms); what coalescing amortizes")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run the fabric static analyzer (guarded-by, determinism, "
             "wire-compat, blocking-under-lock, clock-domain, lease-ack, "
             "span-lifecycle, subscription-lifecycle, spill-lifecycle, "
             "future-resolution, lock-order, credit-balance, "
             "handler-exhaustiveness, threadroles)",
        description="Exit codes: 0 = clean, 1 = findings reported, "
                    "2 = usage or internal error (bad baseline, unknown "
                    "check, glob matched nothing).")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to analyze (default: src/)")
    lint.add_argument("--paths", dest="path_globs", action="append",
                      metavar="GLOB", default=[],
                      help="glob (relative to --root) selecting files to "
                           "analyze; repeatable; a pattern matching nothing "
                           "is an error (exit 2)")
    lint.add_argument("--changed", action="store_true",
                      help="analyze only Python files changed in the git "
                           "checkout (vs HEAD, plus untracked); exits 0 "
                           "when nothing changed, 2 outside a git repo")
    lint.add_argument("--protocols", dest="protocols", action="append",
                      metavar="NAME[,NAME]", default=[],
                      help="run only the named checks (comma-separated, "
                           "repeatable); unknown names are an error (exit 2)")
    lint.add_argument("--explain", metavar="CHECK", default="",
                      help="print what CHECK enforces and exit (exit 2 if "
                           "unknown)")
    lint.add_argument("--roles", action="append", metavar="ROLE[,ROLE]",
                      default=[],
                      help="restrict the threadroles pass to findings "
                           "involving these thread roles (comma-separated, "
                           "repeatable); unknown roles are an error (exit 2)")
    lint.add_argument("--root", default=".",
                      help="repository root for relative paths and the "
                           "default baseline location (default: .)")
    lint.add_argument("--baseline", default="",
                      help="baseline file (default: <root>/analysis-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to grandfather current findings")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="output format (default: text); sarif emits a "
                           "SARIF 2.1.0 document for code-scanning upload")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
