"""Command-line interface for the reproduction.

Offline-friendly subcommands::

    python -m repro.cli demo                 # end-to-end live demo
    python -m repro.cli scale --platform cori --containers 1024
    python -m repro.cli elasticity           # figure-6 scenario
    python -m repro.cli casestudies          # figure-1 distributions
    python -m repro.cli platforms            # list platform models

Each prints the same rows the corresponding benchmark regenerates, at a
smaller default scale suited to interactive use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import EndpointConfig, LocalDeployment

    def double(x):
        return 2 * x

    with LocalDeployment() as deployment:
        client = deployment.client("demo-user")
        ep = deployment.create_endpoint(
            "demo-ep", nodes=args.nodes,
            config=EndpointConfig(workers_per_node=args.workers),
        )
        fid = client.register_function(double)
        print(f"registered function {fid}")
        task = client.run(fid, ep, 21)
        print(f"double(21) -> {client.wait_for(task, timeout=30)}")
        mapped = client.map(fid, range(args.tasks), ep, batch_size=16)
        values = mapped.result(timeout=60)
        print(f"map over {args.tasks} inputs -> first 5: {values[:5]}")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.sim import SimFabric
    from repro.sim.platform import PLATFORMS

    platform = PLATFORMS[args.platform]
    managers = platform.nodes_for(args.containers)
    workers = min(args.containers, platform.containers_per_node)
    fab = SimFabric(platform, managers=managers, workers_per_manager=workers,
                    prefetch=args.prefetch, seed=1)
    total = args.tasks if args.tasks else args.containers * 10
    fab.submit_batch(total, duration=args.duration)
    report = fab.run()
    print(f"platform={platform.name} containers={args.containers} "
          f"managers={managers}")
    print(f"tasks={report.tasks_completed:,} duration={args.duration}s each")
    print(f"completion: {report.completion_time:.2f}s "
          f"throughput: {report.throughput:,.0f} tasks/s "
          f"(agent ceiling {platform.agent_throughput_ceiling:,.0f}/s)")
    return 0


def _cmd_elasticity(args: argparse.Namespace) -> int:
    from repro.sim import ElasticitySimulation
    from repro.workloads.generators import burst_arrivals

    sim = ElasticitySimulation()
    sim.submit(list(burst_arrivals(
        120.0, args.bursts, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)]
    )))
    timelines = sim.run(until=args.bursts * 120.0 + 60.0)
    print("image  peak-pods  (cap 10)")
    for image in ("1s", "10s", "20s"):
        print(f"{image:>5s}  {timelines.peak_pods(image):9.0f}")
    print(f"functions completed: {timelines.completed}")
    return 0


def _cmd_casestudies(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.workloads import CASE_STUDIES

    print(f"{'case study':<14s} {'median':>8s} {'p95':>8s}  description")
    for name, study in sorted(CASE_STUDIES.items()):
        samples = study.sample_many(args.samples, seed=1)
        print(f"{name:<14s} {np.median(samples):8.3f} "
              f"{np.percentile(samples, 95):8.3f}  {study.description}")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.sim.platform import PLATFORMS

    print(f"{'platform':<8s} {'ctr/node':>8s} {'ceiling/s':>10s} {'cold(s)':>8s}")
    for name, platform in PLATFORMS.items():
        print(f"{name:<8s} {platform.containers_per_node:8d} "
              f"{platform.agent_throughput_ceiling:10.0f} "
              f"{platform.container_cold_start:8.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="funcX reproduction (HPDC 2020) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a live end-to-end demo")
    demo.add_argument("--nodes", type=int, default=1)
    demo.add_argument("--workers", type=int, default=4)
    demo.add_argument("--tasks", type=int, default=50)
    demo.set_defaults(func=_cmd_demo)

    scale = sub.add_parser("scale", help="simulate an agent scaling run")
    scale.add_argument("--platform", choices=["theta", "cori", "ec2", "k8s"],
                       default="theta")
    scale.add_argument("--containers", type=int, default=256)
    scale.add_argument("--tasks", type=int, default=0,
                       help="total tasks (default: 10 per container)")
    scale.add_argument("--duration", type=float, default=0.0)
    scale.add_argument("--prefetch", type=int, default=0)
    scale.set_defaults(func=_cmd_scale)

    elas = sub.add_parser("elasticity", help="simulate the figure-6 scenario")
    elas.add_argument("--bursts", type=int, default=3)
    elas.set_defaults(func=_cmd_elasticity)

    cases = sub.add_parser("casestudies", help="sample the figure-1 distributions")
    cases.add_argument("--samples", type=int, default=100)
    cases.set_defaults(func=_cmd_casestudies)

    plats = sub.add_parser("platforms", help="list platform models")
    plats.set_defaults(func=_cmd_platforms)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
