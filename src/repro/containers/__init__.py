"""Container technologies and warm pools.

funcX packages functions in Docker, Singularity or Shifter containers
(paper section 4.2) and keeps containers *warm* for a short period after
execution to avoid cold-start costs (section 4.7).  Real container
binaries are absent here; instead :class:`ContainerRuntime` models the
cold-instantiation time of each (system, technology) pair, calibrated to
the paper's Table 2 measurements, and :class:`WarmPool` implements the
warming policy both fabrics share.
"""

from repro.containers.builder import BuildRequest, ContainerBuilder
from repro.containers.spec import ContainerSpec, ContainerTechnology
from repro.containers.runtime import (
    ColdStartModel,
    ContainerInstance,
    ContainerRuntime,
    TABLE2_MODELS,
    cold_start_model_for,
)
from repro.containers.warming import WarmPool

__all__ = [
    "ContainerBuilder",
    "BuildRequest",
    "ContainerSpec",
    "ContainerTechnology",
    "ContainerRuntime",
    "ContainerInstance",
    "ColdStartModel",
    "TABLE2_MODELS",
    "cold_start_model_for",
    "WarmPool",
]
