"""Dynamic container building (paper §4.2 / §8 future work).

"In future work, we intend to make this process dynamic, using
repo2docker to build Docker images and convert them to site-specific
container formats as needed" and "sharing containers among functions
with similar dependencies" (§8).

:class:`ContainerBuilder` implements both: it turns an *environment
specification* (python + system packages) into a Docker-format
:class:`ContainerSpec`, converts specs to a target site's technology,
caches builds so identical environments share one image, and can find an
existing image that *satisfies* a requirement set (container sharing).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.containers.spec import ContainerSpec, ContainerTechnology


@dataclass(frozen=True)
class BuildRequest:
    """An environment specification to build an image for."""

    python_packages: frozenset[str] = frozenset()
    system_packages: frozenset[str] = frozenset()
    gpu: bool = False
    base_image: str = "python:3.11-slim"

    @classmethod
    def from_requirements(cls, requirements: Iterable[str], gpu: bool = False) -> "BuildRequest":
        """Parse a requirements-style list (version pins are stripped)."""
        packages = set()
        for line in requirements:
            name = line.split("==")[0].split(">=")[0].split("<=")[0].strip()
            if name and not name.startswith("#"):
                packages.add(name.lower())
        return cls(python_packages=frozenset(packages), gpu=gpu)

    @property
    def environment_hash(self) -> str:
        """Stable digest of the environment — the image cache key."""
        digest = hashlib.sha256()
        digest.update(self.base_image.encode())
        digest.update(b"\x00gpu" if self.gpu else b"\x00cpu")
        for pkg in sorted(self.python_packages):
            digest.update(b"\x01" + pkg.encode())
        for pkg in sorted(self.system_packages):
            digest.update(b"\x02" + pkg.encode())
        return digest.hexdigest()[:16]

    def render_dockerfile(self) -> str:
        """The Dockerfile repo2docker would emit for this environment."""
        lines = [f"FROM {self.base_image}"]
        if self.system_packages:
            lines.append(
                "RUN apt-get update && apt-get install -y "
                + " ".join(sorted(self.system_packages))
            )
        lines.append("RUN pip install funcx-worker")
        if self.python_packages:
            lines.append("RUN pip install " + " ".join(sorted(self.python_packages)))
        lines.append('ENTRYPOINT ["funcx-worker"]')
        return "\n".join(lines)


@dataclass
class BuildRecord:
    """Provenance of one completed build."""

    request: BuildRequest
    spec: ContainerSpec
    dockerfile: str
    conversions: dict[ContainerTechnology, ContainerSpec] = field(default_factory=dict)


class ContainerBuilder:
    """Builds, caches, converts and *shares* container images.

    Parameters
    ----------
    registry_prefix:
        Image-name prefix, e.g. ``"funcx"`` → ``funcx/env-<hash>``.
    """

    def __init__(self, registry_prefix: str = "funcx"):
        self.registry_prefix = registry_prefix
        self._lock = threading.RLock()
        self._builds: dict[str, BuildRecord] = {}
        self.builds_performed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def build(self, request: BuildRequest) -> ContainerSpec:
        """Build (or reuse) the Docker image for an environment."""
        key = request.environment_hash
        with self._lock:
            record = self._builds.get(key)
            if record is not None:
                self.cache_hits += 1
                return record.spec
            spec = ContainerSpec(
                image=f"{self.registry_prefix}/env-{key}",
                technology=ContainerTechnology.DOCKER,
                python_packages=request.python_packages,
                system_packages=request.system_packages,
                gpu=request.gpu,
            )
            self._builds[key] = BuildRecord(
                request=request, spec=spec, dockerfile=request.render_dockerfile()
            )
            self.builds_performed += 1
            return spec

    def build_for_function(
        self, requirements: Iterable[str], gpu: bool = False
    ) -> ContainerSpec:
        """Convenience: requirements list → built Docker spec."""
        return self.build(BuildRequest.from_requirements(requirements, gpu=gpu))

    # ------------------------------------------------------------------
    def convert_for_site(
        self, spec: ContainerSpec, technology: ContainerTechnology
    ) -> ContainerSpec:
        """Convert a built image to a site's technology (cached per build).

        Mirrors converting "from a common representation (e.g., a
        Dockerfile) to both formats" (§4.2).
        """
        if technology is spec.technology:
            return spec
        with self._lock:
            for record in self._builds.values():
                if record.spec.spec_id == spec.spec_id:
                    cached = record.conversions.get(technology)
                    if cached is None:
                        cached = spec.convert(technology)
                        record.conversions[technology] = cached
                    return cached
        # Unknown to this builder (externally supplied spec): plain convert.
        return spec.convert(technology)

    # ------------------------------------------------------------------
    def find_satisfying(
        self, required_packages: Iterable[str], gpu: bool = False
    ) -> ContainerSpec | None:
        """An existing image whose environment covers the requirements.

        Implements §8's "sharing containers among functions with similar
        dependencies": among satisfying images, the one with the fewest
        extra packages is preferred (tightest fit).
        """
        required = frozenset(p.lower() for p in required_packages)
        with self._lock:
            candidates = [
                record.spec
                for record in self._builds.values()
                if record.spec.satisfies(required) and (record.spec.gpu or not gpu)
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: len(s.software))

    def build_or_share(
        self, requirements: Iterable[str], gpu: bool = False
    ) -> tuple[ContainerSpec, bool]:
        """Prefer a shared satisfying image; build only when none fits.

        Returns ``(spec, shared)``.
        """
        request = BuildRequest.from_requirements(requirements, gpu=gpu)
        existing = self.find_satisfying(request.python_packages, gpu=gpu)
        if existing is not None:
            with self._lock:
                self.cache_hits += 1
            return existing, True
        return self.build(request), False

    # ------------------------------------------------------------------
    def dockerfile_for(self, spec: ContainerSpec) -> str | None:
        with self._lock:
            for record in self._builds.values():
                if record.spec.spec_id == spec.spec_id:
                    return record.dockerfile
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._builds)
