"""Container runtime models calibrated to the paper's Table 2.

Table 2 reports cold-instantiation time (start container + import the
funcX worker modules) per (system, technology):

=========  ============  =======  =======  ========
System     Container     Min (s)  Max (s)  Mean (s)
=========  ============  =======  =======  ========
Theta      Singularity      9.83    14.06     10.40
Cori       Shifter          7.25    31.26      8.49
EC2        Docker           1.74     1.88      1.79
EC2        Singularity      1.19     1.26      1.22
=========  ============  =======  =======  ========

:class:`ColdStartModel` reproduces each row with a scaled Beta
distribution whose support is ``[min, max]`` and whose mean matches the
reported mean — right-skewed where the reported mean hugs the minimum
(Cori's shared-filesystem contention tail), tight where min≈max (EC2).
"""

from __future__ import annotations

import itertools
import random
import uuid
from dataclasses import dataclass, field

from repro.containers.spec import ContainerSpec, ContainerTechnology


@dataclass(frozen=True)
class ColdStartModel:
    """Samples cold container-instantiation times.

    Parameters
    ----------
    minimum, maximum, mean:
        The Table 2 row being modelled (seconds).
    concentration:
        Beta concentration (a+b); larger → tighter around the mean.
    """

    minimum: float
    maximum: float
    mean: float
    concentration: float = 8.0

    def __post_init__(self) -> None:
        if not (self.minimum <= self.mean <= self.maximum):
            raise ValueError("mean must lie within [minimum, maximum]")
        if self.minimum < 0:
            raise ValueError("instantiation times cannot be negative")

    def sample(self, rng: random.Random) -> float:
        """One cold-start duration, in seconds."""
        span = self.maximum - self.minimum
        if span <= 0:
            return self.minimum
        mu = (self.mean - self.minimum) / span
        a = max(1e-6, mu * self.concentration)
        b = max(1e-6, (1.0 - mu) * self.concentration)
        return self.minimum + span * rng.betavariate(a, b)


#: Calibrated models for every Table 2 row, keyed by (system, technology).
TABLE2_MODELS: dict[tuple[str, ContainerTechnology], ColdStartModel] = {
    ("theta", ContainerTechnology.SINGULARITY): ColdStartModel(9.83, 14.06, 10.40),
    ("cori", ContainerTechnology.SHIFTER): ColdStartModel(7.25, 31.26, 8.49),
    ("ec2", ContainerTechnology.DOCKER): ColdStartModel(1.74, 1.88, 1.79),
    ("ec2", ContainerTechnology.SINGULARITY): ColdStartModel(1.19, 1.26, 1.22),
}

#: Bare-environment "instantiation" is just a fork+import; near-free.
_BARE_MODEL = ColdStartModel(0.005, 0.020, 0.010)


def cold_start_model_for(system: str, technology: ContainerTechnology) -> ColdStartModel:
    """The calibrated model for a platform/technology pair.

    Unknown pairs fall back to the nearest measured technology: Docker-like
    for clouds, Singularity-like for HPC systems.
    """
    if technology is ContainerTechnology.NONE:
        return _BARE_MODEL
    model = TABLE2_MODELS.get((system.lower(), technology))
    if model is not None:
        return model
    if technology is ContainerTechnology.DOCKER:
        return TABLE2_MODELS[("ec2", ContainerTechnology.DOCKER)]
    if technology is ContainerTechnology.SHIFTER:
        return TABLE2_MODELS[("cori", ContainerTechnology.SHIFTER)]
    return TABLE2_MODELS[("theta", ContainerTechnology.SINGULARITY)]


@dataclass
class ContainerInstance:
    """A running (or warm) container on a node."""

    spec: ContainerSpec
    instance_id: str = field(default_factory=lambda: str(uuid.uuid4()))
    started_at: float = 0.0
    cold_start_time: float = 0.0
    executions: int = 0
    warm_since: float | None = None

    @property
    def key(self) -> str:
        return self.spec.key


class ContainerRuntime:
    """Instantiates containers on a given system with modelled cold starts.

    Parameters
    ----------
    system:
        Platform name ("theta", "cori", "ec2", ...) selecting Table 2 rows.
    seed:
        RNG seed for reproducible sampling.
    concurrency_limit:
        Some HPC centers "place limitations on the number of concurrent
        requests" for container instantiation (section 4.7); instantiations
        beyond this in-flight cap queue behind each other (the model adds
        the backlog wait to the sampled time via :meth:`queued_cold_start`).
    """

    def __init__(self, system: str = "ec2", seed: int | None = None, concurrency_limit: int | None = None):
        self.system = system.lower()
        self._rng = random.Random(seed)
        self.concurrency_limit = concurrency_limit
        self._instance_seq = itertools.count(1)
        self.total_cold_starts = 0
        self.total_cold_time = 0.0

    def sample_cold_start(self, technology: ContainerTechnology) -> float:
        """Sample a single cold-instantiation duration."""
        return cold_start_model_for(self.system, technology).sample(self._rng)

    def queued_cold_start(self, technology: ContainerTechnology, concurrent: int) -> float:
        """Cold-start duration when ``concurrent`` instantiations are in flight.

        With a concurrency limit L, request number k waits for floor(k/L)
        earlier batches; contention also inflates individual starts.
        """
        base = self.sample_cold_start(technology)
        if self.concurrency_limit is None or concurrent < self.concurrency_limit:
            return base
        waves = concurrent // self.concurrency_limit
        return base * (1 + waves)

    def instantiate(self, spec: ContainerSpec, now: float = 0.0, concurrent: int = 0) -> ContainerInstance:
        """Create a container instance, recording its modelled cold start."""
        cold = self.queued_cold_start(spec.technology, concurrent)
        self.total_cold_starts += 1
        self.total_cold_time += cold
        return ContainerInstance(
            spec=spec,
            instance_id=f"ctr-{next(self._instance_seq)}",
            started_at=now,
            cold_start_time=cold,
        )

    def measure(self, technology: ContainerTechnology, samples: int) -> list[float]:
        """Draw ``samples`` cold starts (the Table 2 benchmark harness)."""
        if samples < 1:
            raise ValueError("need at least one sample")
        return [self.sample_cold_start(technology) for _ in range(samples)]
