"""Container specifications.

A registered function may name a container image providing its
dependencies (paper section 3).  A :class:`ContainerSpec` captures the
image, its technology and declared software, and supports conversion
between technologies — the paper notes Singularity and Shifter "implement
similar models and thus it is easy to convert from a common representation
(e.g., a Dockerfile) to both formats".
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field, replace
from enum import Enum


class ContainerTechnology(str, Enum):
    """Supported container technologies (paper section 4.2)."""

    DOCKER = "docker"
    SINGULARITY = "singularity"
    SHIFTER = "shifter"
    NONE = "none"  # bare worker Python environment


#: Software every funcX container must include (paper section 4.2).
BASE_SOFTWARE: frozenset[str] = frozenset({"python3", "funcx-worker"})


@dataclass(frozen=True)
class ContainerSpec:
    """An immutable description of a container image.

    Attributes
    ----------
    image:
        Image name, e.g. ``"dlhub/mnist:latest"``.
    technology:
        Which container technology the image is built for.
    python_packages:
        Python modules baked into the image.
    system_packages:
        OS-level packages baked into the image.
    gpu:
        Whether the container mounts accelerator devices.
    """

    image: str
    technology: ContainerTechnology = ContainerTechnology.DOCKER
    python_packages: frozenset[str] = frozenset()
    system_packages: frozenset[str] = frozenset()
    gpu: bool = False
    spec_id: str = field(default_factory=lambda: str(uuid.uuid4()))

    def __post_init__(self) -> None:
        if not self.image and self.technology is not ContainerTechnology.NONE:
            raise ValueError("container spec requires an image name")

    @property
    def software(self) -> frozenset[str]:
        """All software available inside the container."""
        return BASE_SOFTWARE | self.python_packages | self.system_packages

    def satisfies(self, required_packages: frozenset[str] | set[str]) -> bool:
        """Whether this image provides every required package."""
        return set(required_packages) <= self.software

    def convert(self, technology: ContainerTechnology) -> "ContainerSpec":
        """Convert to another technology (new spec id, same contents).

        Mirrors repo2docker-style conversion from a common representation
        to site-specific formats (paper sections 4.2, 8).
        """
        if technology is ContainerTechnology.NONE:
            raise ValueError("cannot convert a real image to the bare environment")
        return replace(self, technology=technology, spec_id=str(uuid.uuid4()))

    @classmethod
    def bare(cls) -> "ContainerSpec":
        """The no-container execution environment."""
        return cls(image="", technology=ContainerTechnology.NONE)

    @property
    def key(self) -> str:
        """Routing key used by schedulers to match tasks to containers."""
        if self.technology is ContainerTechnology.NONE:
            return "RAW"
        return f"{self.technology.value}:{self.image}"
