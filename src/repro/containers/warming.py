"""Container warming policy (paper section 4.7).

"Function containers are kept warm by leaving them running for a short
period of time (5-10 minutes) following the execution of a function."

:class:`WarmPool` is the time-agnostic policy object shared by the live
and simulated fabrics: it tracks warm instances per container key, hands
them out on acquire, and expires them after the warm TTL.
"""

from __future__ import annotations

from collections import defaultdict

from repro.containers.runtime import ContainerInstance


class WarmPool:
    """Pool of warm container instances with TTL-based expiry.

    Parameters
    ----------
    ttl:
        Seconds a container stays warm after release.  The paper cites
        5–10 minutes; the default is 300 s.  ``0`` disables warming (every
        acquire is a cold start), which is the ablation baseline.
    capacity:
        Maximum warm instances retained per container key (a node cannot
        keep unbounded containers resident).
    """

    def __init__(self, ttl: float = 300.0, capacity: int = 64):
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.ttl = ttl
        self.capacity = capacity
        self._warm: dict[str, list[ContainerInstance]] = defaultdict(list)
        # A pool belongs to one manager; only its loop thread acquires
        # and releases instances once the manager has started.
        self.hits = 0  # thread-confined: manager-loop
        self.misses = 0  # thread-confined: manager-loop
        self.expired = 0  # thread-confined: manager-loop

    # ------------------------------------------------------------------
    def acquire(self, key: str, now: float) -> ContainerInstance | None:
        """Take a warm instance for ``key``, or ``None`` (cold start needed).

        The most recently released instance is preferred (LIFO) so the
        pool's working set stays small and older instances age out.
        """
        self.evict_expired(now)
        pool = self._warm.get(key)
        if not pool:
            self.misses += 1
            return None
        instance = pool.pop()
        instance.warm_since = None
        self.hits += 1
        return instance

    def release(self, instance: ContainerInstance, now: float) -> bool:
        """Return an instance to the pool; returns False if not retained."""
        if self.ttl == 0:
            return False
        pool = self._warm[instance.key]
        if len(pool) >= self.capacity:
            return False
        instance.warm_since = now
        pool.append(instance)
        return True

    # ------------------------------------------------------------------
    def evict_expired(self, now: float) -> int:
        """Drop instances warm for longer than the TTL; returns count."""
        evicted = 0
        for key, pool in list(self._warm.items()):
            kept = [
                inst
                for inst in pool
                if inst.warm_since is not None and (now - inst.warm_since) <= self.ttl
            ]
            evicted += len(pool) - len(kept)
            if kept:
                self._warm[key] = kept
            else:
                del self._warm[key]
        self.expired += evicted
        return evicted

    def warm_count(self, key: str | None = None) -> int:
        if key is not None:
            return len(self._warm.get(key, ()))
        return sum(len(pool) for pool in self._warm.values())

    def warm_keys(self) -> tuple[str, ...]:
        """Container keys with at least one warm instance (advertised
        by managers to the agent scheduler)."""
        return tuple(sorted(key for key, pool in self._warm.items() if pool))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> int:
        count = self.warm_count()
        self._warm.clear()
        return count
