"""The funcX core: cloud-hosted service, SDK client, and task machinery.

This package implements the paper's primary contribution — the federated
function-serving fabric:

* :mod:`repro.core.tasks` — the task lifecycle (figure 3).
* :mod:`repro.core.registry` — function/endpoint/user registries (§4.1).
* :mod:`repro.core.service` — the REST-facade web service (§4.1).
* :mod:`repro.core.forwarder` — per-endpoint forwarders (§4.1).
* :mod:`repro.core.memoization` — result memoization (§4.7).
* :mod:`repro.core.batch` — user-driven batching / ``map`` (§4.7).
* :mod:`repro.core.client` — the ``FuncXClient`` SDK (§3).
* :mod:`repro.core.futures` — asynchronous result handles.
"""

from repro.core.tasks import Task, TaskState
from repro.core.registry import (
    EndpointRecord,
    EndpointRegistry,
    FunctionRecord,
    FunctionRegistry,
)
from repro.core.memoization import Memoizer
from repro.core.service import FuncXService, ServiceConfig
from repro.core.forwarder import Forwarder
from repro.core.futures import FuncXFuture
from repro.core.batch import partition_iterator, MapResult
from repro.core.client import FuncXClient

__all__ = [
    "Task",
    "TaskState",
    "FunctionRecord",
    "FunctionRegistry",
    "EndpointRecord",
    "EndpointRegistry",
    "Memoizer",
    "FuncXService",
    "ServiceConfig",
    "Forwarder",
    "FuncXFuture",
    "FuncXClient",
    "MapResult",
    "partition_iterator",
]
