"""Per-tenant admission control for the service facade.

The funcX SDK throttles itself client-side (``ThrottledBaseClient``:
a token bucket over outbound calls).  A multi-tenant hosted service
cannot rely on polite clients, so the same shape is enforced
server-side, in front of the sharded service plane:

* **Token-bucket rate limiting** — each tenant sustains ``rate``
  submissions/s with bursts up to ``burst``; beyond that, submissions
  fail fast with :class:`~repro.errors.ThrottleExceeded` (the REST
  facade maps it to 429) instead of queueing unboundedly.
* **Max-outstanding quota** — a cap on a tenant's open (non-terminal)
  tasks across the whole service, bounding the memory/queue share any
  one tenant can pin.
* **DRR weights** — the per-endpoint task queues dequeue fairly across
  tenant lanes (see :class:`~repro.store.queues.FairReliableQueue`);
  the weight each lane earns per round comes from the tenant's policy
  here.

The default policy is unlimited, so a deployment without configured
tenants behaves exactly as before; ``strict=True`` flips the default to
reject-unknown (:class:`~repro.errors.UnknownTenant`).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ThrottleExceeded, UnknownTenant


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant (identity).

    ``rate`` is the sustained submission allowance in tasks/s and
    ``burst`` the bucket capacity; ``max_outstanding`` caps open tasks
    (``None`` = unlimited); ``weight`` scales the tenant's DRR share of
    dispatch slots on contended endpoint queues.
    """

    rate: float = math.inf
    burst: float = math.inf
    max_outstanding: int | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


class _Bucket:
    """Lazily-refilled token bucket plus the tenant's outstanding count."""

    __slots__ = ("tokens", "refilled_at", "outstanding")

    def __init__(self, tokens: float, refilled_at: float):
        self.tokens = tokens
        self.refilled_at = refilled_at
        self.outstanding = 0


class AdmissionController:
    """Gate in front of ``FuncXService.submit`` / ``submit_batch``.

    Thread-safe: the facade calls :meth:`admit` from client threads and
    :meth:`release` from forwarder/stream delivery threads as tasks
    reach terminal states.
    """

    # admit()/release() race from *multiple* REST/client threads that
    # all classify as role "main"; the lock is load-bearing even though
    # role inference sees a single role.
    _GUARDED = {
        "_policies": "_lock",  # lint: ignore[threadroles]
        "_buckets": "_lock",  # lint: ignore[threadroles]
    }

    def __init__(
        self,
        policies: dict[str, TenantPolicy] | None = None,
        default: TenantPolicy | None = None,
        strict: bool = False,
        clock: Callable[[], float] | None = None,
    ):
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Lock()
        self._policies: dict[str, TenantPolicy] = dict(policies or {})
        self._default = default or TenantPolicy()
        self._strict = strict
        self._buckets: dict[str, _Bucket] = {}
        self.metrics: Any | None = None  # MetricsRegistry, wired by the service

    # -- policy management ---------------------------------------------------
    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            self._policies[tenant] = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy; raises :class:`UnknownTenant` in strict mode."""
        with self._lock:
            policy = self._policies.get(tenant)
        if policy is None:
            if self._strict:
                raise UnknownTenant(tenant)
            return self._default
        return policy

    def weight_for(self, tenant: str) -> float:
        """DRR lane weight; never raises (queues must not throw on dequeue)."""
        with self._lock:
            policy = self._policies.get(tenant)
        return (policy or self._default).weight

    # -- admission -----------------------------------------------------------
    def admit(self, tenant: str, count: int = 1) -> None:
        """Charge ``count`` submissions to ``tenant`` or raise.

        All-or-nothing: a batch either fits the bucket and quota entirely
        or is rejected without consuming anything (so a rejected batch
        does not degrade the tenant's later allowance).
        """
        policy = self.policy_for(tenant)  # raises UnknownTenant in strict mode
        with self._lock:
            bucket = self._refill(tenant, policy)
            if (
                policy.max_outstanding is not None
                and bucket.outstanding + count > policy.max_outstanding
            ):
                self._count_throttle(tenant, "quota")
                raise ThrottleExceeded(
                    tenant,
                    f"max-outstanding quota reached "
                    f"({bucket.outstanding}/{policy.max_outstanding} open)",
                )
            if bucket.tokens < count:
                retry_after = (
                    (count - bucket.tokens) / policy.rate
                    if math.isfinite(policy.rate)
                    else 0.0
                )
                self._count_throttle(tenant, "rate")
                raise ThrottleExceeded(
                    tenant, "submission rate limit exceeded", retry_after=retry_after
                )
            if math.isfinite(bucket.tokens):
                bucket.tokens -= count
            bucket.outstanding += count
            outstanding = bucket.outstanding
        if self.metrics is not None:
            self.metrics.counter("tenant.admitted", tenant=tenant).inc(count)
            self.metrics.gauge("tenant.outstanding", tenant=tenant).set(outstanding)

    def release(self, tenant: str, count: int = 1) -> None:
        """Return quota as the tenant's tasks reach terminal states."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                return
            bucket.outstanding = max(0, bucket.outstanding - count)
            outstanding = bucket.outstanding
        if self.metrics is not None:
            self.metrics.gauge("tenant.outstanding", tenant=tenant).set(outstanding)

    def outstanding(self, tenant: str) -> int:
        with self._lock:
            bucket = self._buckets.get(tenant)
            return bucket.outstanding if bucket is not None else 0

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-tenant admission state (diagnostics)."""
        with self._lock:
            return {
                tenant: {
                    "tokens": bucket.tokens,
                    "outstanding": bucket.outstanding,
                }
                for tenant, bucket in self._buckets.items()
            }

    # -- internals -----------------------------------------------------------
    def _refill(self, tenant: str, policy: TenantPolicy) -> _Bucket:  # guarded-by: self._lock
        now = self._clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _Bucket(policy.burst, now)
            return bucket
        if math.isfinite(policy.rate) and math.isfinite(policy.burst):
            elapsed = max(0.0, now - bucket.refilled_at)
            bucket.tokens = min(policy.burst, bucket.tokens + elapsed * policy.rate)
        else:
            bucket.tokens = policy.burst
        bucket.refilled_at = now
        return bucket

    def _count_throttle(self, tenant: str, reason: str) -> None:  # guarded-by: self._lock
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("tenant.throttled", tenant=tenant, reason=reason).inc()
