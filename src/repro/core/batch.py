"""User-driven batching: the ``map`` command (paper section 4.7).

``f = fmap(func_id, iterator, ep_id, batch_size, batch_count)`` partitions
the computation's iterator into memory-efficient batches of tasks,
exploiting that "1) iterators are evaluated in a lazy fashion and use
minimal memory before being called; and 2) islice operators can partition
iterators without evaluating them".  ``batch_count`` takes precedence
over ``batch_size``.

A batch travels as a *single* task whose payload is the item list tagged
``map`` — workers detect the tag and apply the function per item, which
is what amortizes per-task overhead into >1M functions/s (figure 9).
"""

from __future__ import annotations

import operator
from itertools import islice
from typing import Any, Iterable, Iterator

from repro.core.futures import FuncXFuture
from repro.errors import TaskExecutionFailed

#: Routing tag marking a payload as a map batch.
MAP_TAG = "map"


def partition_iterator(
    iterable: Iterable[Any],
    batch_size: int | None = None,
    batch_count: int | None = None,
) -> Iterator[list[Any]]:
    """Lazily partition ``iterable`` into batches via ``islice``.

    Parameters
    ----------
    batch_size:
        Items per batch (last batch may be short).
    batch_count:
        Total number of batches; *takes precedence* over ``batch_size``.
        Needs the input length: uses ``len()``/``length_hint`` when
        available, otherwise materializes the iterable once.

    Yields
    ------
    Non-empty lists of items.
    """
    if batch_count is None and batch_size is None:
        raise ValueError("one of batch_size or batch_count is required")
    if batch_count is not None:
        if batch_count < 1:
            raise ValueError("batch_count must be positive")
        hint = operator.length_hint(iterable, -1)
        if hint < 0:
            iterable = list(iterable)
            hint = len(iterable)
        batch_size = max(1, -(-hint // batch_count))  # ceil division
    assert batch_size is not None
    if batch_size < 1:
        raise ValueError("batch_size must be positive")

    iterator = iter(iterable)
    while True:
        batch = list(islice(iterator, batch_size))
        if not batch:
            return
        yield batch


def apply_batch(func: Any, items: list[Any]) -> list[Any]:
    """Worker-side execution of one map batch.

    Each item is either a bare positional value or an ``(args, kwargs)``
    pair.  Per-item failures become :class:`RemoteExceptionWrapper`
    entries in the result list so one bad input does not void the batch.
    """
    from repro.serialize.traceback import RemoteExceptionWrapper

    results: list[Any] = []
    for item in items:
        try:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], (list, tuple))
                and isinstance(item[1], dict)
            ):
                results.append(func(*item[0], **item[1]))
            else:
                results.append(func(item))
        except Exception as exc:
            results.append(RemoteExceptionWrapper(exc))
    return results


class MapResult:
    """Aggregated handle over the batch futures of one ``map`` call."""

    def __init__(self, batch_futures: list[FuncXFuture], batch_sizes: list[int]):
        if len(batch_futures) != len(batch_sizes):
            raise ValueError("futures/sizes length mismatch")
        self._futures = batch_futures
        self._sizes = batch_sizes

    @property
    def batch_count(self) -> int:
        return len(self._futures)

    @property
    def total_items(self) -> int:
        return sum(self._sizes)

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def wait(self, timeout: float | None = None) -> bool:
        from repro.core.futures import wait_all

        return wait_all(self._futures, timeout)

    def result(self, timeout: float | None = None) -> list[Any]:
        """All item results, flattened in input order.

        Per-item remote failures re-raise on access — callers that want
        partial results should use :meth:`result_or_exceptions`.
        """
        flat = self.result_or_exceptions(timeout)
        from repro.serialize.traceback import RemoteExceptionWrapper

        for value in flat:
            if isinstance(value, RemoteExceptionWrapper):
                value.reraise()
        return flat

    def result_or_exceptions(self, timeout: float | None = None) -> list[Any]:
        """Flattened results; failed items appear as exception wrappers."""
        if not self.wait(timeout):
            from repro.errors import TaskPending

            pending = [f.task_id for f in self._futures if not f.done()]
            raise TaskPending(pending[0], "pending") if pending else TaskPending("?", "pending")
        flat: list[Any] = []
        for future, size in zip(self._futures, self._sizes):
            batch_result = future.result()
            if not isinstance(batch_result, list) or len(batch_result) != size:
                raise TaskExecutionFailed(
                    f"map batch for task {future.task_id} returned "
                    f"{type(batch_result).__name__} instead of {size} results"
                )
            flat.extend(batch_result)
        return flat

    def __iter__(self) -> Iterator[FuncXFuture]:
        return iter(self._futures)
