"""The funcX SDK: ``FuncXClient`` (paper section 3, listing 1).

.. code-block:: python

    fc = FuncXClient(service, identity)
    func_id = fc.register_function(automo_preview)
    task_id = fc.run(func_id, endpoint_id, fname="test.h5", start=0)
    res = fc.get_result(task_id, timeout=30)

The client wraps the service's REST-style API: it serializes functions
and arguments, attaches the bearer token, and deserializes results
(re-raising remote exceptions with their tracebacks).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.auth.scopes import Scope
from repro.auth.service import AuthClient, Identity
from repro.core.batch import MAP_TAG, MapResult, partition_iterator
from repro.core.futures import FuncXFuture
from repro.core.service import FuncXService
from repro.core.tasks import TaskState
from repro.errors import TaskPending
from repro.serialize import FuncXSerializer
from repro.serialize.traceback import RemoteExceptionWrapper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import FuncXExecutor


class FuncXClient:
    """SDK handle bound to one authenticated identity.

    Parameters
    ----------
    service:
        The funcX web service instance to talk to.
    identity:
        The caller's identity; a native-client token is obtained from the
        service's auth system on construction.
    scopes:
        Override the default user scopes (for least-privilege tests).
    """

    def __init__(
        self,
        service: FuncXService,
        identity: Identity,
        scopes: Iterable[Scope] | None = None,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.service = service
        self._auth_client = AuthClient(service.auth, identity, scopes=scopes)
        self.serializer = FuncXSerializer()
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep

    @property
    def identity(self) -> Identity:
        return self._auth_client.identity

    def _token(self) -> str:
        return self._auth_client.bearer_token()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_function(
        self,
        function: Callable[..., Any],
        name: str | None = None,
        container_image: str | None = None,
        public: bool = False,
        allowed_users: tuple[str, ...] = (),
        allowed_groups: tuple[str, ...] = (),
        description: str = "",
    ) -> str:
        """Serialize and register a Python function; returns its UUID."""
        buffer = self.serializer.serialize_function(function)
        return self.service.register_function(
            self._token(),
            name=name or getattr(function, "__name__", "anonymous"),
            function_buffer=buffer,
            container_image=container_image,
            public=public,
            allowed_users=allowed_users,
            allowed_groups=allowed_groups,
            description=description,
        )

    def update_function(self, function_id: str, function: Callable[..., Any]) -> int:
        buffer = self.serializer.serialize_function(function)
        return self.service.update_function(self._token(), function_id, buffer)

    def register_endpoint(
        self,
        name: str,
        description: str = "",
        public: bool = True,
        metadata: dict[str, Any] | None = None,
    ) -> str:
        return self.service.register_endpoint(
            self._token(), name=name, description=description, public=public,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        function_id: str,
        endpoint_id: str,
        *args: Any,
        memoize: bool = False,
        **kwargs: Any,
    ) -> str:
        """Invoke a function asynchronously; returns the task id."""
        payload = self.serializer.serialize((list(args), kwargs))
        return self.service.submit(
            self._token(), function_id, endpoint_id, payload, memoize=memoize
        )

    def submit(
        self,
        function_id: str,
        endpoint_id: str,
        *args: Any,
        memoize: bool = False,
        **kwargs: Any,
    ) -> FuncXFuture:
        """Like :meth:`run` but returns a future resolving to the result."""
        task_id = self.run(function_id, endpoint_id, *args, memoize=memoize, **kwargs)
        return self._future_for(task_id)

    def batch_run(
        self,
        calls: list[tuple[str, str, tuple, dict]],
        memoize: bool = False,
    ) -> list[str]:
        """Submit many calls in one request: ``(func_id, ep_id, args, kwargs)``."""
        requests = [
            (fid, eid, self.serializer.serialize((list(args), kwargs)))
            for fid, eid, args, kwargs in calls
        ]
        return self.service.submit_batch(self._token(), requests, memoize=memoize)

    def map(
        self,
        function_id: str,
        iterator: Iterable[Any],
        endpoint_id: str,
        batch_size: int | None = None,
        batch_count: int | None = None,
        memoize: bool = False,
    ) -> MapResult:
        """The ``fmap`` command: user-driven batching over an iterator.

        Each batch ships as one task tagged ``map``; workers apply the
        function per item.  ``batch_count`` takes precedence over
        ``batch_size`` (paper section 4.7).
        """
        futures: list[FuncXFuture] = []
        sizes: list[int] = []
        batches = list(partition_iterator(iterator, batch_size=batch_size,
                                          batch_count=batch_count))
        requests = [
            (function_id, endpoint_id, self.serializer.serialize(batch, routing_tag=MAP_TAG))
            for batch in batches
        ]
        task_ids = self.service.submit_batch(self._token(), requests, memoize=memoize)
        for task_id, batch in zip(task_ids, batches):
            futures.append(self._future_for(task_id))
            sizes.append(len(batch))
        return MapResult(futures, sizes)

    def fmap(
        self,
        function_id: str,
        iterator: Iterable[Any],
        endpoint_id: str,
        batch_size: int | None = None,
        batch_count: int | None = None,
    ) -> MapResult:
        """The paper's SDK spelling (§4.7)::

            f = fmap(func_id, iterator, ep_id, batch_size, batch_count)
        """
        return self.map(function_id, iterator, endpoint_id,
                        batch_size=batch_size, batch_count=batch_count)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def get_status(self, task_id: str) -> TaskState:
        return self.service.status(self._token(), task_id)

    def get_status_batch(self, task_ids: list[str]) -> dict[str, TaskState]:
        """States for many tasks in one request.

        The service fans the lookup out across its shards (tasks in one
        batch routinely live on different shards — the shard map keys on
        the target endpoint), so a polling client pays one round trip
        regardless of how the batch scattered.
        """
        states = self.service.status_batch(self._token(), task_ids)
        return {task_id: TaskState(value) for task_id, value in states.items()}

    def get_result(self, task_id: str, timeout: float = 0.0) -> Any:
        """Fetch and deserialize a result; re-raise remote exceptions."""
        buffer = self.service.get_result(self._token(), task_id, timeout=timeout)
        value = self.serializer.deserialize(buffer)
        if isinstance(value, RemoteExceptionWrapper):
            value.reraise()
        return value

    def cancel(self, task_id: str) -> bool:
        """Propagate a cancellation to the service.

        Returns ``True`` when this call cancelled the task, ``False``
        when it had already finished (first outcome wins).
        """
        return self.service.cancel_task(self._token(), task_id)

    def _future_for(self, task_id: str) -> FuncXFuture:
        future = FuncXFuture(task_id)
        future.bind_canceller(self.cancel)

        def resolve(_topic: str, _message: Any) -> None:
            if future.done():
                return
            try:
                future.set_result(self._fetch_value(task_id))
            except Exception as exc:
                try:
                    future.set_exception(exc)
                except RuntimeError:
                    pass

        token = self.service.pubsub.subscribe(f"task.{task_id}", resolve)
        try:
            future.add_done_callback(
                lambda _f: self.service.pubsub.unsubscribe(token))
            # The task may have completed before we subscribed (memo hits
            # do).
            task = self.service.task_by_id(task_id)
            if task.state.terminal and not future.done():
                try:
                    future.set_result(self._fetch_value(task_id))
                except RuntimeError:
                    pass
                except Exception as exc:
                    try:
                        future.set_exception(exc)
                    except RuntimeError:
                        pass
        except BaseException:
            # Nothing above may leak the subscription: if the done-callback
            # never registered, nothing else will ever unsubscribe it.
            # Unconditional on purpose — unsubscribe is idempotent, and a
            # future that resolved *before* add_done_callback raised has no
            # callback registered either.
            self.service.pubsub.unsubscribe(token)
            raise
        return future

    def _fetch_value(self, task_id: str) -> Any:
        buffer = self.service.get_result(self._token(), task_id, timeout=0.0)
        return self.serializer.deserialize(buffer)

    def executor(self, endpoint_id: str, **kwargs: Any) -> "FuncXExecutor":
        """A :class:`~repro.core.executor.FuncXExecutor` bound to this
        client and ``endpoint_id`` (push-based results, batched submits)."""
        from repro.core.executor import FuncXExecutor

        return FuncXExecutor(self, endpoint_id, **kwargs)

    # ------------------------------------------------------------------
    def wait_for(self, task_id: str, timeout: float = 30.0, poll: float = 0.01) -> Any:
        """Poll until the task completes; returns the deserialized result.

        The per-iteration block is clamped to the *remaining* budget so
        the call returns within ``timeout`` of being made, and one final
        non-blocking check runs after the deadline — a task completing
        exactly at the deadline yields its result, not ``TaskPending``.
        """
        deadline = self._clock() + timeout
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            try:
                return self.get_result(task_id, timeout=min(0.5, remaining))
            except TaskPending:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._sleep(min(poll, remaining))
        try:
            return self.get_result(task_id, timeout=0.0)
        except TaskPending:
            pass
        raise TaskPending(task_id, self.get_status(task_id).value)

    def wait_all(self, task_ids: list[str], timeout: float = 30.0,
                 poll: float = 0.01) -> list[Any]:
        """Wait for many tasks (any mix of shards); results in order.

        Polls with :meth:`get_status_batch` — one fan-out request per
        iteration instead of one request per task — then fetches each
        result.  Raises :class:`TaskPending` for the first unfinished
        task at the deadline.
        """
        deadline = self._clock() + timeout
        pending = set(task_ids)
        while pending:
            states = self.get_status_batch(sorted(pending))
            pending = {tid for tid, state in states.items()
                       if not state.terminal}
            if not pending:
                break
            remaining = deadline - self._clock()
            if remaining <= 0:
                tid = sorted(pending)[0]
                raise TaskPending(tid, self.get_status(tid).value)
            self._sleep(min(poll, remaining))
        return [self.get_result(tid, timeout=0.0) for tid in task_ids]
