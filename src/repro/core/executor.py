"""``concurrent.futures``-grade SDK facade over the push fabric.

The journal follow-up to the paper shipped a ``FuncXExecutor`` whose
``submit()`` hands back a stdlib-compatible future immediately, batches
submissions in a background thread (gated by an ``AtomicController``),
and resolves futures from a subscription-based result stream instead of
polling.  This module is that shape on this codebase:

* :meth:`FuncXExecutor.submit` accepts a callable (auto-registered once
  and cached) or a registered function id, appends the call to a pending
  wave, and returns a :class:`~repro.core.futures.FuncXFuture`.
* A background batching thread — woken by the
  :class:`AtomicController`'s 0→1 edge, held briefly so a burst
  coalesces — drains pending calls into ``submit_batch`` waves (one
  authenticated request per wave, amortizing per-request overhead,
  §5.2.4).
* Task ids returned by the wave are watched on the executor's
  :class:`~repro.core.stream.ResultSubscription`; completions stream
  back as ``ResultBatchMessage``\\ s and resolve the futures.  No
  polling anywhere on the happy path.
* ``future.cancel()`` on a not-yet-submitted call removes it from the
  pending wave (a true stdlib-style cancel: the task never exists);
  after submission it propagates to ``service.cancel_task``.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.core.futures import FuncXFuture, wait_all
from repro.core.stream import DEFAULT_WINDOW, ResultSubscription
from repro.errors import TaskCancelled, TaskExecutionFailed
from repro.metrics.registry import COUNT_BUCKETS
from repro.staging.transfer import fetch_ref
from repro.transport.messages import ResultBatchMessage, ResultMessage
from repro.transport.wakeup import Wakeup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.client import FuncXClient

logger = logging.getLogger(__name__)


class AtomicController:
    """Threshold-edge counter gating the batching thread (journal SDK).

    ``increment`` counts enqueued-but-unsubmitted calls; the 0→1 edge
    fires ``start_callback`` (wake the batcher).  ``reset`` zeroes the
    count when the batcher drains a wave and fires ``stop_callback`` if
    anything was drained.  Callbacks run outside the internal lock.
    """

    def __init__(
        self,
        start_callback: Callable[[], None],
        stop_callback: Callable[[], None],
    ):
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: self._lock
        self._start_callback = start_callback
        self._stop_callback = stop_callback

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            previous = self._value
            self._value += amount
        if previous == 0 and amount > 0:
            self._start_callback()
        return previous + amount

    def reset(self) -> int:
        """Zero the counter; returns the drained count."""
        with self._lock:
            drained = self._value
            self._value = 0
        if drained:
            self._stop_callback()
        return drained

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


@dataclass
class _PendingCall:
    """One submitted-but-not-yet-dispatched call riding the next wave."""

    function_id: str
    args: tuple
    kwargs: dict
    future: FuncXFuture = field(default_factory=lambda: FuncXFuture(""))


class FuncXExecutor:
    """Executor-shaped SDK: batched submits, push-streamed results.

    Parameters
    ----------
    client:
        The authenticated :class:`~repro.core.client.FuncXClient`.
    endpoint_id:
        Every submission targets this endpoint.
    batch_size:
        Cap on calls per ``submit_batch`` wave.
    batch_interval:
        Nagle hold: after the first call arrives the batcher waits this
        long before draining, so a burst coalesces into one wave.
    window:
        Credit window for the result subscription (delivered-unacked
        results the stream may hold against this executor).
    memoize:
        Forwarded to ``submit_batch``.
    """

    def __init__(
        self,
        client: "FuncXClient",
        endpoint_id: str,
        batch_size: int = 64,
        batch_interval: float = 0.002,
        window: int = DEFAULT_WINDOW,
        memoize: bool = False,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.client = client
        self.endpoint_id = endpoint_id
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.memoize = memoize
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self._heartbeat = 0.05
        self._wakeup = Wakeup(clock=self._clock)
        self._lock = threading.Lock()
        self._pending: list[_PendingCall] = []          # guarded-by: self._lock
        self._futures: dict[str, FuncXFuture] = {}      # guarded-by: self._lock
        # Statically only submit() (main) touches the id cache, but the
        # lock also serializes concurrent user-thread submitters.
        self._function_ids: dict[Any, str] = {}         # guarded-by: self._lock  # lint: ignore[threadroles]
        self._shutdown = False                          # guarded-by: self._lock
        self.controller = AtomicController(self._wakeup.set, lambda: None)
        metrics = client.service.metrics
        self._h_wave = metrics.histogram(
            "executor.submit_batch_size", buckets=COUNT_BUCKETS)
        self._c_submitted = metrics.counter("executor.tasks_submitted")
        self._c_suppressed = metrics.counter("executor.suppressed_deliveries")
        # Stream wiring: the subscription delivers straight into
        # _on_result_batch on the service's delivery thread.
        self.subscription: ResultSubscription = (
            client.service.result_stream.subscribe(window=window))
        self.subscription.attach(self._on_result_batch)
        self._thread = threading.Thread(
            target=self._batcher, name="funcx-executor", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, function: Callable[..., Any] | str,
               *args: Any, **kwargs: Any) -> FuncXFuture:
        """Queue one call for the next wave; returns its future now."""
        function_id = self._resolve_function(function)
        entry = _PendingCall(function_id, args, dict(kwargs))
        entry.future.bind_canceller(
            lambda _task_id, entry=entry: self._cancel_pending(entry))
        with self._lock:
            if self._shutdown:
                raise RuntimeError("cannot submit to a shut-down executor")
            self._pending.append(entry)
        self.controller.increment()
        return entry.future

    def map(self, function: Callable[..., Any] | str, *iterables: Iterable[Any],
            timeout: float | None = None) -> Iterator[Any]:
        """Stdlib-style map: submit everything now, yield results in order."""
        futures = [self.submit(function, *call_args)
                   for call_args in zip(*iterables)]
        deadline = None if timeout is None else self._clock() + timeout

        def results() -> Iterator[Any]:
            for future in futures:
                remaining = (None if deadline is None
                             else max(0.0, deadline - self._clock()))
                yield future.result(timeout=remaining)

        return results()

    def _resolve_function(self, function: Callable[..., Any] | str) -> str:
        if isinstance(function, str):
            return function
        with self._lock:
            function_id = self._function_ids.get(function)
        if function_id is None:
            function_id = self.client.register_function(function)
            with self._lock:
                self._function_ids[function] = function_id
        return function_id

    def _cancel_pending(self, entry: _PendingCall) -> bool:
        """Canceller for not-yet-submitted calls: pull it off the wave."""
        with self._lock:
            try:
                self._pending.remove(entry)
                return True
            except ValueError:
                # Already drained into a wave; the drain loop notices the
                # resolved future and propagates a remote cancel.
                return False

    # ------------------------------------------------------------------
    # batching thread
    # ------------------------------------------------------------------
    def _batcher(self) -> None:
        while True:
            self._wakeup.wait(self._heartbeat)
            with self._lock:
                have_pending = bool(self._pending)
                stopping = self._shutdown
            if have_pending:
                if self.batch_interval > 0 and not stopping:
                    # Nagle hold: let the burst finish joining the wave.
                    self._sleep(self.batch_interval)
                self._drain()
            elif stopping:
                return

    def _drain(self) -> int:
        with self._lock:
            wave = self._pending
            self._pending = []
        self.controller.reset()
        total = 0
        for start in range(0, len(wave), self.batch_size):
            total += self._submit_chunk(wave[start:start + self.batch_size])
        return total

    def _submit_chunk(self, chunk: list[_PendingCall]) -> int:
        live = [entry for entry in chunk if not entry.future.done()]
        if not live:
            return 0
        calls = [(entry.function_id, self.endpoint_id, entry.args, entry.kwargs)
                 for entry in live]
        try:
            task_ids = self.client.batch_run(calls, memoize=self.memoize)
        except Exception as exc:
            for entry in live:
                try:
                    entry.future.set_exception(exc)
                except RuntimeError:
                    pass  # cancelled while the wave was being rejected
            return 0
        self._h_wave.observe(float(len(task_ids)))
        self._c_submitted.inc(len(task_ids))
        for entry, task_id in zip(live, task_ids):
            entry.future.task_id = task_id
            if entry.future.done():
                # Cancelled while the wave was in flight; the task exists
                # now, so propagate the cancel and never watch it.
                if entry.future.cancelled:
                    try:
                        self.client.cancel(task_id)
                    except Exception:
                        logger.exception(
                            "late cancel propagation failed for %s", task_id)
                continue
            entry.future.bind_canceller(self.client.cancel)
            with self._lock:
                self._futures[task_id] = entry.future
            self.subscription.watch(task_id)
        return len(task_ids)

    # ------------------------------------------------------------------
    # result stream consumer
    # ------------------------------------------------------------------
    def _on_result_batch(self, batch: ResultBatchMessage) -> None:
        for message in batch.results:
            with self._lock:
                future = self._futures.pop(message.task_id, None)
            if future is None or future.done():
                # Cancelled locally (or a redelivered duplicate): the
                # outcome is suppressed, not an error.
                self._c_suppressed.inc()
                continue
            self._resolve(future, message)
        self.subscription.ack(batch.delivery_id)

    def _resolve(self, future: FuncXFuture, message: ResultMessage) -> None:
        try:
            if message.cancelled:
                outcome: Any = TaskCancelled(
                    message.exception_text or
                    f"task {message.task_id} cancelled")
            else:
                buffer = message.result_buffer
                if message.result_ref is not None:
                    # Spilled payload: pull it from the staging store.
                    buffer = fetch_ref(message.result_ref)
                if not message.success and not buffer:
                    outcome = TaskExecutionFailed(
                        message.exception_text or "remote execution failed")
                else:
                    future.set_result(
                        self.client.serializer.deserialize(buffer))
                    return
            future.set_exception(outcome)
        except RuntimeError:
            self._c_suppressed.inc()  # resolved concurrently (cancel race)
        except Exception as exc:
            try:
                future.set_exception(exc)
            except RuntimeError:
                self._c_suppressed.inc()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Submitted-but-unresolved tasks riding the stream."""
        with self._lock:
            return len(self._futures)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Stop accepting submissions; optionally wait for completion.

        ``cancel_futures=True`` cancels every call still waiting in the
        pending wave (their tasks never exist).  With ``wait=True`` the
        batcher flushes, outstanding futures resolve off the stream, and
        the subscription closes; with ``wait=False`` the subscription
        stays open so in-flight results can still resolve (it is closed
        with the service).
        """
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            doomed = list(self._pending) if cancel_futures else []
            if cancel_futures:
                self._pending = []
        for entry in doomed:
            entry.future.cancel()
        self._wakeup.set()
        if already or not wait:
            return
        self._thread.join()
        with self._lock:
            outstanding = list(self._futures.values())
        wait_all(outstanding, timeout=None, clock=self._clock)
        self.subscription.close()

    def __enter__(self) -> "FuncXExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True)
