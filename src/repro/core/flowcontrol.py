"""Credit accounting and adaptive wave sizing for the dispatch fabric.

Two cooperating mechanisms bound the in-flight population of the
forwarder → agent → manager → worker pipeline (the funcX batching
analysis, §5.5.2, and ROADMAP open item 1):

* :class:`CreditLedger` — the manager-side source of truth for execution
  credits.  Every worker slot is one credit: granted when the worker
  deploys, consumed when a task is handed to the worker, released *by
  the worker itself* the moment execution finishes (so capacity is
  returned before the manager's collect pass runs, preserving the §4.7
  transfer/compute overlap).  The ledger never goes negative and always
  conserves ``granted == consumed + available``.

* :class:`WavePolicy` — a Nagle-style hold-down for the forwarder's
  dispatch waves.  On a serial link a transfer occupies the wire for
  ``transfer_cost`` seconds regardless of batch size, so dispatching a
  lone task the instant it arrives costs the same link time as a full
  wave.  The policy holds a wave up to ``T = min(hold_cap,
  hold_scale × transfer_cost)`` seconds or until ``N_fill =
  clamp(ceil(λ̂·T), 1, budget)`` tasks accumulate, where ``λ̂`` is an
  EWMA of the observed arrival rate.  With ``transfer_cost == 0`` the
  hold collapses to zero and dispatch is immediate — zero-latency
  deployments see no behavior change.

The aggregate credit *window* (sum of per-manager windows, advertised
upstream on heartbeats) is enforced by the forwarder against its own
open-lease table, so enforcement is local and race-free: a lost or
reordered heartbeat can only make the forwarder temporarily more
conservative, never overshoot.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable


class CreditLedger:
    """Thread-safe execution-credit accounting (never negative, conserved).

    ``granted`` credits exist in total; ``consumed`` are held by in-flight
    tasks; ``available = granted - consumed`` may be handed out.  All four
    transitions clamp rather than raise, so a duplicate release (e.g. a
    redelivered task completing twice) cannot corrupt the books — it is
    simply ignored beyond the outstanding amount.
    """

    # Credit counters move together: conservation (granted = consumed +
    # available) only holds if they are never torn.  Enforced by
    # `repro lint` (guarded-by).
    _GUARDED = {
        "_granted": "_lock",
        "_consumed": "_lock",
    }

    def __init__(self, granted: int = 0):
        if granted < 0:
            raise ValueError("granted must be non-negative")
        self._lock = threading.Lock()
        self._granted = granted
        self._consumed = 0

    # -- views ---------------------------------------------------------------
    @property
    def granted(self) -> int:
        with self._lock:
            return self._granted

    @property
    def consumed(self) -> int:
        with self._lock:
            return self._consumed

    @property
    def available(self) -> int:
        with self._lock:
            return self._granted - self._consumed

    # -- transitions ---------------------------------------------------------
    def grant(self, n: int = 1) -> int:
        """Add ``n`` credits (a worker slot came online); returns granted."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            self._granted += n
            return n

    def revoke(self, n: int = 1) -> int:
        """Remove up to ``n`` *idle* credits (a worker slot went away).

        Credits held by in-flight tasks cannot be revoked; the grant
        shrinks by at most ``available``.  Returns the number revoked.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            revoked = min(n, self._granted - self._consumed)
            self._granted -= revoked
            return revoked

    def consume(self, n: int = 1) -> int:
        """Take up to ``n`` available credits; returns the number taken."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            taken = min(n, self._granted - self._consumed)
            self._consumed += taken
            return taken

    def release(self, n: int = 1) -> int:
        """Return up to ``n`` consumed credits; returns the number returned.

        Releasing more than is outstanding (duplicate completion of a
        redelivered task) is clamped, keeping ``consumed >= 0``.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            returned = min(n, self._consumed)
            self._consumed -= returned
            return returned

    def snapshot(self) -> tuple[int, int, int]:
        """Atomic ``(granted, consumed, available)`` — the conservation
        triple; ``granted == consumed + available`` in every snapshot."""
        with self._lock:
            return (self._granted, self._consumed,
                    self._granted - self._consumed)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        with self._lock:
            return (f"CreditLedger(granted={self._granted}, "
                    f"consumed={self._consumed})")


@dataclass(frozen=True)
class WaveDecision:
    """Outcome of one :meth:`WavePolicy.decide` evaluation.

    ``size`` tasks should be leased and dispatched now (0 = nothing).
    When ``size == 0`` and ``hold_until`` is set, the caller should
    schedule a wakeup for that instant (``Wakeup.set_at``) and retry —
    the wave is being held to fill.  ``held_for`` reports how long a
    dispatching wave was held (0 for immediate dispatch).
    """

    size: int
    hold_until: float | None = None
    held_for: float = 0.0


class WavePolicy:
    """Adaptive Nagle policy for dispatch-wave sizing.

    Single-consumer: ``decide`` is only ever called from the owning
    dispatch loop, so the policy keeps plain (unlocked) state.

    Parameters
    ----------
    link_cost:
        Callable returning the link's current per-transfer occupancy
        (the serial-link ``transfer_cost``); 0 disables holding.
    hold_scale:
        Hold budget as a multiple of the transfer cost.  Holding longer
        than a few transfer times cannot be amortized away, so the
        default caps the added latency at ~4 transfer costs.
    hold_cap:
        Absolute ceiling on any hold (seconds) — the liveness bound.
    rate_alpha:
        EWMA smoothing factor for the observed arrival rate.
    """

    def __init__(
        self,
        link_cost: Callable[[], float],
        hold_scale: float = 4.0,
        hold_cap: float = 0.005,
        rate_alpha: float = 0.3,
    ):
        if hold_scale < 0 or hold_cap < 0:
            raise ValueError("hold parameters must be non-negative")
        if not 0.0 < rate_alpha <= 1.0:
            raise ValueError("rate_alpha must be in (0, 1]")
        self._link_cost = link_cost
        self.hold_scale = hold_scale
        self.hold_cap = hold_cap
        self.rate_alpha = rate_alpha
        self._rate = 0.0                 # EWMA arrivals/second
        self._last_enqueued: int | None = None
        self._last_observed_at: float | None = None
        self._hold_started_at: float | None = None

    @property
    def arrival_rate(self) -> float:
        """The smoothed arrival-rate estimate λ̂ (tasks/second)."""
        return self._rate

    def hold_budget(self) -> float:
        """Current hold ceiling T = min(hold_cap, hold_scale × cost)."""
        cost = max(0.0, float(self._link_cost()))
        return min(self.hold_cap, self.hold_scale * cost)

    def _observe(self, enqueued_total: int, now: float) -> None:
        """Fold the enqueue-counter delta into the EWMA arrival rate."""
        if self._last_enqueued is None or self._last_observed_at is None:
            self._last_enqueued = enqueued_total
            self._last_observed_at = now
            return
        elapsed = now - self._last_observed_at
        if elapsed <= 0:
            return
        arrived = max(0, enqueued_total - self._last_enqueued)
        sample = arrived / elapsed
        self._rate += self.rate_alpha * (sample - self._rate)
        self._last_enqueued = enqueued_total
        self._last_observed_at = now

    def decide(self, depth: int, budget: int, enqueued_total: int,
               now: float) -> WaveDecision:
        """Size the next wave, or hold it to fill.

        ``depth`` is the ready-queue depth, ``budget`` the dispatch cap
        (credit window remainder ∧ per-step bound), ``enqueued_total``
        the queue's monotone enqueue counter (arrival-rate observation).

        Liveness: any hold is bounded by :meth:`hold_budget` (itself
        capped by ``hold_cap``); a zero budget never starts a hold, so a
        stalled consumer cannot park the policy — dispatch resumes the
        moment credit returns.
        """
        self._observe(enqueued_total, now)
        if depth <= 0 or budget <= 0:
            self._hold_started_at = None
            return WaveDecision(size=0)
        hold = self.hold_budget()
        wave = min(depth, budget)
        if hold <= 0.0:
            self._hold_started_at = None
            return WaveDecision(size=wave)
        fill = min(budget, max(1, math.ceil(self._rate * hold)))
        if depth >= fill:
            held = (now - self._hold_started_at
                    if self._hold_started_at is not None else 0.0)
            self._hold_started_at = None
            return WaveDecision(size=wave, held_for=max(0.0, held))
        if self._hold_started_at is None:
            self._hold_started_at = now
        deadline = self._hold_started_at + hold
        if now >= deadline:
            held = now - self._hold_started_at
            self._hold_started_at = None
            return WaveDecision(size=wave, held_for=max(0.0, held))
        return WaveDecision(size=0, hold_until=deadline)
