"""Per-endpoint forwarders (paper section 4.1, figure 3).

"When an endpoint registers with the funcX service a unique forwarder
process is created for each endpoint.  Endpoints establish ZeroMQ
connections with their forwarder to receive tasks, return results, and
perform heartbeats. ... The forwarder dispatches tasks to the agent only
when an agent is connected.  The forwarder uses heartbeats to detect if
an agent is disconnected and then returns outstanding tasks back into the
task queue."

The forwarder here is a state machine advanced by :meth:`step`, runnable
either on its own thread (:meth:`start`/:meth:`stop`, the live fabric) or
stepped manually under test control.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.core.flowcontrol import WavePolicy
from repro.core.service import FuncXService
from repro.errors import TaskNotFound
from repro.metrics.registry import COUNT_BUCKETS
from repro.store.queues import Lease, ReliableQueue
from repro.transport.channel import ChannelEnd
from repro.transport.heartbeat import HeartbeatTracker
from repro.transport.messages import (
    Heartbeat,
    Registration,
    ResultBatchMessage,
    ResultMessage,
    TaskBatchMessage,
    TaskMessage,
)
from repro.transport.wakeup import Wakeup

_logger = logging.getLogger(__name__)


class Forwarder:
    """Routes tasks service→agent and results agent→service for one endpoint.

    Parameters
    ----------
    service:
        The funcX web service (owns the queues and task records).
    endpoint_id:
        The endpoint this forwarder serves.
    channel_end:
        The service side of the ZeroMQ-substitute channel to the agent.
    heartbeat_period / heartbeat_grace:
        Agent-liveness parameters; an agent silent for
        ``period × grace`` seconds is declared disconnected and its
        outstanding tasks are requeued (at-least-once semantics).
    max_dispatch_per_step:
        Dispatch batch bound per step (keeps step latency bounded).
    lease_timeout:
        Optional visibility timeout (seconds) on dispatched tasks.  On a
        *lossy but live* channel (messages dropped without a disconnect),
        heartbeats alone never trigger redelivery; with a lease timeout
        the forwarder re-dispatches any task whose result hasn't arrived
        in time.  Duplicated execution is safe: the service keeps the
        first completion (at-least-once semantics).  ``None`` disables.
    batching:
        Coalesce each ``lease_many`` batch into one
        :class:`TaskBatchMessage` with function-buffer deduplication
        (each distinct body ships once per batch, then is cached
        per-agent-incarnation).  Disabling reproduces the per-message
        seed behavior.
    event_driven:
        Block the :meth:`start` loop on a :class:`Wakeup` fed by channel
        deliveries and task-queue puts instead of sleep-polling; the
        poll interval becomes a liveness fallback only.
    flow_control:
        Enforce the endpoint's advertised credit window (piggybacked on
        agent heartbeats): never hold more open leases than the window,
        so overload sheds into the service-side queue — bounded and
        observable — instead of ballooning agent/manager in-flight
        tables.  An endpoint that never reports credit (window ``-1``)
        is treated as unlimited, the pre-credit behavior.
    adaptive_batching:
        Size dispatch waves with the adaptive Nagle policy
        (:class:`~repro.core.flowcontrol.WavePolicy`): hold a wave up to
        T seconds or N tasks, T scaled from the link's transfer cost and
        N from the observed arrival rate, with holds scheduled through
        the existing :class:`Wakeup` (no new polling).  On a
        zero-transfer-cost link the hold collapses to zero, reproducing
        plain batching exactly.
    """

    def __init__(
        self,
        service: FuncXService,
        endpoint_id: str,
        channel_end: ChannelEnd,
        heartbeat_period: float = 1.0,
        heartbeat_grace: int = 3,
        max_dispatch_per_step: int = 1024,
        lease_timeout: float | None = None,
        batching: bool = True,
        event_driven: bool = True,
        flow_control: bool = True,
        adaptive_batching: bool = True,
        wave_policy: WavePolicy | None = None,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.service = service
        self.endpoint_id = endpoint_id
        # The service shard this endpoint's queues live on (consistent-hash
        # placement, fixed for the endpoint's lifetime).  One forwarder loop
        # drains one shard's queue, so dispatch parallelism scales with the
        # shard count; the index tags trace spans for per-shard attribution.
        self.shard_index = service.shard_map.shard_for_endpoint(endpoint_id)
        self.channel = channel_end
        self._clock = clock or service.now  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.heartbeats = HeartbeatTracker(
            period=heartbeat_period, grace_periods=heartbeat_grace, clock=self._clock
        )
        self._heartbeat_period = heartbeat_period
        self.max_dispatch_per_step = max_dispatch_per_step
        self.lease_timeout = lease_timeout
        self.batching = batching
        self.event_driven = event_driven
        self.flow_control = flow_control
        self.adaptive_batching = adaptive_batching
        self._wave_policy = wave_policy or WavePolicy(
            link_cost=lambda: channel_end.transfer_cost)
        self._wakeup = Wakeup(clock=self._clock)
        self._agent_connected = False     # guarded-by: self._lock
        self._agent_name: str | None = None  # guarded-by: self._lock
        # The endpoint's advertised credit window (from the latest agent
        # heartbeat); -1 = unreported = unlimited.  Enforced locally
        # against the open-lease table, so dispatch never overshoots
        # even when heartbeats are dropped or reordered.
        self._credit_window = -1          # guarded-by: self._lock
        self._open_leases: dict[str, Lease] = {}  # guarded-by: self._lock
        # function_id -> buffer digest already shipped to the connected
        # agent incarnation; cleared on every (re-)registration so a new
        # agent lifetime always receives bodies afresh.
        self._shipped_buffers: dict[str, int] = {}  # guarded-by: self._lock
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # counters live in the deployment-wide registry, labelled by endpoint
        metrics = service.metrics
        self._c_forwarded = metrics.counter(
            "forwarder.tasks_forwarded", endpoint=endpoint_id)
        self._c_results = metrics.counter(
            "forwarder.results_returned", endpoint=endpoint_id)
        self._c_requeues = metrics.counter(
            "forwarder.requeue_events", endpoint=endpoint_id)
        self._c_duplicates = metrics.counter(
            "forwarder.duplicate_results", endpoint=endpoint_id)
        self._c_orphans = metrics.counter(
            "forwarder.orphan_leases", endpoint=endpoint_id)
        self._c_stale_beats = metrics.counter(
            "forwarder.stale_beats", endpoint=endpoint_id)
        self._c_coalesced = metrics.counter(
            "channel.coalesced_messages", component="forwarder",
            endpoint=endpoint_id)
        self._c_credit_stalls = metrics.counter(
            "forwarder.credit_stalls", endpoint=endpoint_id)
        self._h_batch_size = metrics.histogram(
            "dispatch.batch_size", buckets=COUNT_BUCKETS,
            component="forwarder", endpoint=endpoint_id)
        self._h_wave_hold = metrics.histogram(
            "dispatch.wave_hold_seconds",
            component="forwarder", endpoint=endpoint_id)
        metrics.gauge("forwarder.outstanding_leases",
                      endpoint=endpoint_id).set_function(lambda: self.outstanding)
        metrics.gauge("forwarder.credit_window",
                      endpoint=endpoint_id).set_function(
            lambda: self.credit_window)
        task_queue = service.task_queue(endpoint_id)
        metrics.gauge("queue.depth", queue=task_queue.name).set_function(
            lambda: task_queue.depth)
        metrics.gauge("queue.high_watermark",
                      queue=task_queue.name).set_function(
            lambda: task_queue.high_watermark)
        # Agent-liveness incarnation: bumped on every (re-)registration so
        # liveness transitions can be attributed to one agent lifetime.
        # Registration handling runs on the forwarder loop once start()
        # is called; direct register calls only happen before that.
        self.incarnation = 0  # thread-confined: forwarder-loop
        # The agent-supplied incarnation from the latest accepted
        # registration; heartbeats tagged with an older one are from a
        # prior agent lifetime and must not revive the connection.
        self._registered_incarnation = 0  # thread-confined: forwarder-loop
        # Observation hook: ``probe(event, fields)`` for liveness and
        # requeue events (chaos invariant probes attach here).
        self.probe: Callable[[str, dict[str, Any]], None] | None = None

    # -- registry-backed counters (compat with the former int attributes) ----
    @property
    def tasks_forwarded(self) -> int:
        return int(self._c_forwarded.value)

    @property
    def results_returned(self) -> int:
        return int(self._c_results.value)

    @property
    def requeue_events(self) -> int:
        return int(self._c_requeues.value)

    @property
    def duplicate_results(self) -> int:
        return int(self._c_duplicates.value)

    @property
    def orphan_leases(self) -> int:
        return int(self._c_orphans.value)

    @property
    def stale_beats(self) -> int:
        return int(self._c_stale_beats.value)

    @property
    def credit_stalls(self) -> int:
        return int(self._c_credit_stalls.value)

    @property
    def credit_window(self) -> int:
        """The endpoint's advertised credit window (-1 = unlimited)."""
        with self._lock:
            return self._credit_window

    def _emit(self, event: str, **fields: Any) -> None:
        probe = self.probe
        if probe is not None:
            probe(event, {"endpoint_id": self.endpoint_id, **fields})

    # ------------------------------------------------------------------
    @property
    def agent_connected(self) -> bool:
        with self._lock:
            return self._agent_connected

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._open_leases)

    def open_task_ids(self) -> list[str]:
        """Task ids currently dispatched under an open queue lease."""
        with self._lock:
            return list(self._open_leases)

    # ------------------------------------------------------------------
    def step(self) -> int:
        """One forwarder iteration: drain agent messages, check liveness,
        dispatch queued tasks.  Returns the number of events processed."""
        events = self._drain_agent_messages()
        self._check_agent_liveness()
        if self.lease_timeout is not None:
            events += self._reclaim_expired_leases()
        if self.agent_connected:
            events += self._dispatch_tasks()
        return events

    def _reclaim_expired_leases(self) -> int:
        """Roll back tasks whose dispatch lease timed out (lossy links)."""
        queue = self.service.task_queue(self.endpoint_id)
        now = self._clock()
        with self._lock:
            expired = [
                (task_id, lease)
                for task_id, lease in self._open_leases.items()
                if lease.deadline is not None and lease.deadline <= now
            ]
            for task_id, _lease in expired:
                del self._open_leases[task_id]
        for task_id, lease in expired:
            if self.service.requeue_task(task_id, reason="lease timeout",
                                         enqueue=False):
                queue.nack(lease.lease_id)
                self._c_requeues.inc()
                self._emit("forwarder.lease_timeout", task_id=task_id)
            else:
                queue.ack(lease.lease_id)
                self._emit("forwarder.dropped", task_id=task_id,
                           reason="lease timeout")
        return len(expired)

    # -- inbound ------------------------------------------------------------
    def _drain_agent_messages(self) -> int:
        count = 0
        for message in self.channel.recv_all_ready():
            count += 1
            if isinstance(message, Registration):
                self._on_agent_registered(message)
            elif isinstance(message, Heartbeat):
                self._on_heartbeat(message)
            elif isinstance(message, ResultBatchMessage):
                for result in message.results:
                    self._on_result(result)
            elif isinstance(message, ResultMessage):
                self._on_result(message)
        return count

    def _on_agent_registered(self, message: Registration) -> None:
        if (message.incarnation
                and message.incarnation < self._registered_incarnation):
            # A delayed registration from an agent lifetime we have
            # already superseded — accepting it would roll liveness back.
            self._c_stale_beats.inc()
            self._emit("liveness.stale_registration", component=message.sender,
                       incarnation=message.incarnation,
                       registered=self._registered_incarnation)
            return
        with self._lock:
            was_connected = self._agent_connected
            self._agent_name = message.sender
            self._agent_connected = True
            # New agent lifetime: its buffer table started empty, so the
            # per-incarnation dedup cache must start empty too.
            self._shipped_buffers.clear()
        self.incarnation += 1
        self._registered_incarnation = message.incarnation
        self.heartbeats.beat(message.sender)
        self.service.endpoints.set_connected(self.endpoint_id, True, self._clock())
        self._emit("liveness.registered", component=message.sender,
                   incarnation=self.incarnation)
        if not was_connected:
            self._emit("liveness.transition", component=message.sender,
                       alive=True, incarnation=self.incarnation,
                       via="registration")

    def _on_heartbeat(self, message: Heartbeat) -> None:
        with self._lock:
            agent_name = self._agent_name
        if (message.sender == agent_name
                and message.incarnation
                and message.incarnation < self._registered_incarnation):
            # A late beat from a dead incarnation must not feed the
            # liveness tracker: it would revive a connection whose tasks
            # were already requeued, double-executing them against a
            # departed agent.
            self._c_stale_beats.inc()
            self._emit("liveness.stale_beat", component=message.sender,
                       incarnation=message.incarnation,
                       registered=self._registered_incarnation)
            return
        self.heartbeats.beat(message.sender)
        if message.sender == agent_name:
            with self._lock:
                was_connected = self._agent_connected
                self._agent_connected = True
                if self.flow_control and message.credit != self._credit_window:
                    self._credit_window = message.credit
                    window_changed = True
                else:
                    window_changed = False
            if window_changed:
                self._emit("flow.window", window=message.credit)
            self.service.endpoint_heartbeat(self.endpoint_id)
            self.service.endpoints.set_connected(self.endpoint_id, True, self._clock())
            self._emit("liveness.beat", component=message.sender,
                       timestamp=message.timestamp,
                       incarnation=self.incarnation)
            if not was_connected:
                self._emit("liveness.transition", component=message.sender,
                           alive=True, incarnation=self.incarnation,
                           via="heartbeat")

    def _on_result(self, message: ResultMessage) -> None:
        with self._lock:
            lease = self._open_leases.pop(message.task_id, None)
        queue = self.service.task_queue(self.endpoint_id)
        if lease is not None:
            queue.ack(lease.lease_id)
        now = self._clock()
        return_time = max(0.0, now - message.completed_at)
        trace = message.trace or self.service.traces.context_for(message.task_id)
        if trace is not None:
            trace.record("result_return", f"forwarder:{self.endpoint_id[:8]}",
                         start=message.completed_at, end=now,
                         worker_id=message.worker_id)
        try:
            applied = self.service.complete_task(
                message.task_id,
                success=message.success,
                result_buffer=message.result_buffer,
                exception_text=None if message.success else self._failure_text(message),
                execution_time=message.execution_time,
                result_return_time=return_time,
            )
        except TaskNotFound:
            # The task record was administratively purged while the result
            # was in flight; the lease (if any) is already acked above.
            self._c_orphans.inc()
            self._emit("forwarder.orphan_result", task_id=message.task_id)
            return
        if applied:
            self._c_results.inc()
        else:
            self._c_duplicates.inc()
            self._emit("forwarder.duplicate_result", task_id=message.task_id,
                       success=message.success)

    @staticmethod
    def _failure_text(message: ResultMessage) -> str:
        try:
            from repro.serialize import FuncXSerializer
            from repro.serialize.traceback import RemoteExceptionWrapper

            obj = FuncXSerializer().deserialize(message.result_buffer)
            if isinstance(obj, RemoteExceptionWrapper):
                return obj.format()
        except Exception:
            pass
        return "remote execution failed"

    # -- liveness ---------------------------------------------------------------
    def _check_agent_liveness(self) -> None:
        with self._lock:
            connected = self._agent_connected
            agent_name = self._agent_name
        if not connected or agent_name is None:
            return
        if self.heartbeats.is_alive(agent_name):
            return
        # Agent lost: return outstanding tasks to the task queue ("the
        # forwarder ... returns outstanding tasks back into the task
        # queue", §4.1) and mark the endpoint disconnected.
        with self._lock:
            self._agent_connected = False
        self.service.endpoints.set_connected(self.endpoint_id, False)
        self._emit("liveness.transition", component=agent_name,
                   alive=False, incarnation=self.incarnation,
                   via="heartbeat-timeout")
        self._requeue_outstanding("agent heartbeat lost")

    def _requeue_outstanding(self, reason: str) -> None:
        queue = self.service.task_queue(self.endpoint_id)
        with self._lock:
            leases = dict(self._open_leases)
            self._open_leases.clear()
        for task_id, lease in leases.items():
            # Roll the task state back; the nack puts the id back in queue.
            kept = self.service.requeue_task(task_id, reason=reason, enqueue=False)
            if kept:
                queue.nack(lease.lease_id)
                self._c_requeues.inc()
                self._emit("forwarder.requeued", task_id=task_id, reason=reason)
            else:
                queue.ack(lease.lease_id)  # retries exhausted; drop for good
                self._emit("forwarder.dropped", task_id=task_id, reason=reason)

    # -- outbound -------------------------------------------------------------------
    def _wave_budget(self, queue: ReliableQueue) -> tuple[int, int, int]:
        """``(budget, window, in_flight)`` for the next dispatch wave.

        The budget is the per-step bound capped by the remaining credit
        (``window - in_flight``); a zero-credit truncation with backlog
        waiting is counted, logged, and emitted so backlog growth under
        a stalled endpoint is visible long before memory pressure.
        """
        budget = self.max_dispatch_per_step
        with self._lock:
            window = self._credit_window
            in_flight = len(self._open_leases)
        if self.flow_control and window >= 0:
            budget = min(budget, max(0, window - in_flight))
            if budget == 0:
                depth = queue.depth
                if depth > 0:
                    self._c_credit_stalls.inc()
                    _logger.debug(
                        "forwarder %s: wave truncated by zero credit "
                        "(window=%d in_flight=%d backlog=%d)",
                        self.endpoint_id, window, in_flight, depth)
                    self._emit("flow.credit_exhausted", window=window,
                               in_flight=in_flight, depth=depth)
        return budget, window, in_flight

    def _dispatch_tasks(self) -> int:
        """Dispatch leased tasks to the agent; every lease is disposed.

        Each lease obtained from the queue ends this method either acked
        (orphaned/terminal task), nacked (send failure, or unprocessed
        when a later lease blows up), or registered in ``_open_leases``
        awaiting its result.  Without that discipline a single bad queue
        entry — e.g. a task id whose record was purged — would strand
        every lease behind it until the visibility timeout, or forever
        when leases don't expire.

        With flow control the wave is capped by the endpoint's remaining
        credit; with adaptive batching the wave may additionally be held
        (bounded, via ``Wakeup.set_at`` — no polling) to fill closer to
        the arrival rate × hold-budget product before paying the link's
        per-transfer cost.
        """
        queue = self.service.task_queue(self.endpoint_id)
        budget, window, in_flight = self._wave_budget(queue)
        if budget <= 0:
            return 0
        if self.adaptive_batching:
            decision = self._wave_policy.decide(
                depth=queue.depth, budget=budget,
                enqueued_total=queue.total_enqueued, now=self._clock())
            if decision.size <= 0:
                if decision.hold_until is not None:
                    # Wave held to fill; re-evaluate when the hold ripens.
                    self._wakeup.set_at(decision.hold_until)
                return 0
            budget = min(budget, decision.size)
            self._h_wave_hold.observe(decision.held_for)
        pending = deque(queue.lease_many(budget,
                                         lease_timeout=self.lease_timeout))
        if not pending:
            return 0
        if self.batching:
            dispatched = self._dispatch_batch(queue, pending)
            self._note_wave(dispatched, in_flight, window)
            return dispatched
        # Per-batch function-buffer memo: N tasks sharing a function hit
        # the service store once per step, not once per task, even on the
        # per-message fallback path.
        memo: dict[str, bytes] = {}
        dispatched = 0
        lease = None
        try:
            while pending:
                lease = pending.popleft()
                dispatched += self._dispatch_one(queue, lease, memo)
        except Exception:
            # An unexpected failure mid-batch: the in-flight lease was
            # popped but may have escaped _dispatch_one undisposed (e.g.
            # mark_dispatched raced a forget_task), so nack it unless it
            # already reached _open_leases, then return every unprocessed
            # lease so the tasks redeliver next step instead of hanging
            # open against a crashed dispatch loop.
            if lease is not None:
                with self._lock:
                    registered = self._open_leases.get(lease.item) is lease
                if not registered:
                    queue.nack(lease.lease_id)
            for unprocessed in pending:
                queue.nack(unprocessed.lease_id)
            raise
        self._note_wave(dispatched, in_flight, window)
        return dispatched

    def _note_wave(self, size: int, in_flight: int, window: int) -> None:
        """Emit the ``flow.wave`` probe for a committed dispatch wave.

        ``size`` is the count actually sent (orphaned leases a wave acks
        in passing are not in flight); ``in_flight``/``window`` are the
        values the wave's budget was computed from, so the bounded-in-
        flight invariant can re-check ``size <= window - in_flight``
        exactly as the forwarder saw it.
        """
        if size > 0:
            self._emit("flow.wave", size=size, in_flight=in_flight,
                       window=window)

    def _dispatch_batch(self, queue: ReliableQueue,
                        pending: "deque[Lease]") -> int:
        """Coalesce one ``lease_many`` batch into a single envelope.

        Every lease in ``pending`` is disposed on every path: acked by
        ``_prepare_task`` (orphan/terminal), nacked on send failure or a
        mid-batch exception, or registered in ``_open_leases`` by
        ``_commit_batch``.
        """
        memo: dict[str, bytes] = {}
        ship: dict[str, bytes] = {}
        prepared: list[tuple[Lease, TaskMessage, Any, Any]] = []
        lease: Lease | None = None
        try:
            while pending:
                lease = pending.popleft()
                entry = self._prepare_task(queue, lease, memo, ship)
                if entry is not None:
                    prepared.append(entry)
                lease = None
            if not prepared:
                return 0
            batch = TaskBatchMessage(
                sender=f"forwarder:{self.endpoint_id}",
                tasks=tuple(message for _, message, _t, _k in prepared),
                function_buffers=dict(ship),
                incarnation=self._registered_incarnation,
            )
            if not self.channel.send(batch):
                # Transfer dropped (peer down mid-step).  Nothing was
                # marked dispatched, so the leases just go back.
                for entry in prepared:
                    queue.nack(entry[0].lease_id)
                return 0
            return self._commit_batch(queue, prepared, ship)
        except Exception:
            if lease is not None:
                queue.nack(lease.lease_id)
            for unprocessed in pending:
                queue.nack(unprocessed.lease_id)
            for entry in prepared:
                held = entry[0]
                with self._lock:
                    registered = self._open_leases.get(held.item) is held
                if not registered:
                    queue.nack(held.lease_id)
            raise

    def _prepare_task(self, queue: ReliableQueue, lease: Lease,
                      memo: dict[str, bytes], ship: dict[str, bytes]):
        """Resolve one lease into a stripped task message for the batch.

        Returns ``(lease, message, trace, task)`` or ``None`` when the
        lease was disposed here (orphaned or terminal task).  The task's
        function body is added to ``ship`` unless this agent incarnation
        already holds it; redeliveries always ship the body so a cache
        divergence (an envelope lost after the cache recorded it) heals
        on the retry.
        """
        task_id: str = lease.item
        try:
            task = self.service.task_by_id(task_id)
        except TaskNotFound:
            queue.ack(lease.lease_id)
            self._c_orphans.inc()
            self._emit("forwarder.orphan_lease", task_id=task_id)
            return None
        if task.state.terminal:
            queue.ack(lease.lease_id)  # cancelled/failed while queued
            return None
        function_id = task.function_id
        buffer = memo.get(function_id)
        if buffer is None:
            buffer = self.service.function_buffer(function_id)
            memo[function_id] = buffer
        if function_id not in ship:
            digest = hash(buffer)
            with self._lock:
                cached = self._shipped_buffers.get(function_id) == digest
            if not cached or lease.deliveries > 1:
                ship[function_id] = buffer
        trace = self.service.traces.context_for(task_id)
        message = TaskMessage(
            sender=f"forwarder:{self.endpoint_id}",
            task_id=task.task_id,
            function_id=function_id,
            function_buffer=b"",  # shipped once per batch, cached after
            payload_buffer=task.payload_buffer,
            container_image=self._site_container(task.container_image),
            submitted_at=task.state_times.get("received", self._clock()),
            trace=trace,
        )
        return lease, message, trace, task

    def _commit_batch(self, queue: ReliableQueue, prepared: list,
                      ship: dict[str, bytes]) -> int:
        """Post-send bookkeeping for a delivered batch envelope."""
        now = self._clock()
        dispatched = 0
        for lease, message, trace, task in prepared:
            try:
                self.service.mark_dispatched(message.task_id)
            except TaskNotFound:
                # forget_task raced the send; the agent will produce an
                # orphan result the service ignores.
                queue.ack(lease.lease_id)
                self._c_orphans.inc()
                self._emit("forwarder.orphan_lease", task_id=message.task_id)
                continue
            with self._lock:
                self._open_leases[message.task_id] = lease
            if trace is not None:
                trace.record("forwarder.dispatch",
                             f"forwarder:{self.endpoint_id[:8]}",
                             start=lease.enqueued_at, end=now,
                             attempt=task.attempts, shard=self.shard_index)
            self._c_forwarded.inc()
            dispatched += 1
        with self._lock:
            for function_id, buffer in ship.items():
                self._shipped_buffers[function_id] = hash(buffer)
        self._h_batch_size.observe(float(len(prepared)))
        if len(prepared) > 1:
            self._c_coalesced.inc(len(prepared))
        return dispatched

    def _dispatch_one(self, queue: ReliableQueue, lease: Lease,
                      memo: dict[str, bytes] | None = None) -> int:
        """Send one leased task; returns 1 if dispatched, 0 otherwise."""
        task_id: str = lease.item
        try:
            task = self.service.task_by_id(task_id)
        except TaskNotFound:
            # The record behind this queue entry is gone (forget_task /
            # TTL purge raced the dispatch).  Ack the lease so the orphan
            # id stops cycling through the queue.
            queue.ack(lease.lease_id)
            self._c_orphans.inc()
            self._emit("forwarder.orphan_lease", task_id=task_id)
            return 0
        if task.state.terminal:
            queue.ack(lease.lease_id)  # cancelled/failed while queued
            return 0
        buffer = memo.get(task.function_id) if memo is not None else None
        if buffer is None:
            buffer = self.service.function_buffer(task.function_id)
            if memo is not None:
                memo[task.function_id] = buffer
        trace = self.service.traces.context_for(task_id)
        message = TaskMessage(
            sender=f"forwarder:{self.endpoint_id}",
            task_id=task.task_id,
            function_id=task.function_id,
            function_buffer=buffer,
            payload_buffer=task.payload_buffer,
            container_image=self._site_container(task.container_image),
            submitted_at=task.state_times.get("received", self._clock()),
            trace=trace,
        )
        if not self.channel.send(message):
            # Message dropped (peer down mid-step).  The task was never
            # marked dispatched, so only the queue lease needs returning.
            queue.nack(lease.lease_id)
            return 0
        # Order matters: mark dispatched *before* registering the lease so
        # an exception can never leave a lease both registered here and
        # nacked by the _dispatch_tasks outer handler.
        self.service.mark_dispatched(task_id)
        with self._lock:
            self._open_leases[task_id] = lease
        if trace is not None:
            trace.record("forwarder.dispatch", f"forwarder:{self.endpoint_id[:8]}",
                         start=lease.enqueued_at, end=self._clock(),
                         attempt=task.attempts, shard=self.shard_index)
        self._c_forwarded.inc()
        self._h_batch_size.observe(1.0)
        return 1

    def _site_container(self, container_image: str | None) -> str | None:
        """Convert a container key to the endpoint's site technology.

        Functions are registered with a common representation (a Docker
        image key like ``docker:repo/img``); "it is easy to convert from a
        common representation ... to both formats" (§4.2).  An endpoint
        that declares ``container_technology`` in its registration
        metadata receives keys rewritten to its format; the image name is
        unchanged.
        """
        if not container_image or ":" not in container_image:
            return container_image
        record = self.service.endpoints.get(self.endpoint_id)
        site_tech = record.metadata.get("container_technology")
        if not site_tech:
            return container_image
        current_tech, _, image = container_image.partition(":")
        if current_tech == site_tech:
            return container_image
        return f"{site_tech}:{image}"

    # ------------------------------------------------------------------
    # threaded operation (live fabric)
    # ------------------------------------------------------------------
    def start(self, poll_interval: float | None = None) -> None:
        """Run the forwarder loop on a thread.

        Event-driven (the default): the loop blocks on a wakeup fed by
        agent-channel deliveries and task-queue puts, and
        ``poll_interval`` (default: half the heartbeat period) is only
        the liveness/lease-reclaim fallback.  With ``event_driven``
        disabled the loop sleep-polls at ``poll_interval`` (default
        2 ms), the seed behavior.
        """
        if self._thread is not None:
            raise RuntimeError("forwarder already started")
        if poll_interval is None:
            poll_interval = (max(0.001, 0.5 * self._heartbeat_period)
                             if self.event_driven else 0.002)
        fallback = poll_interval
        self._stop.clear()
        if self.event_driven:
            # Wire the wakeup sources: messages ripening on the agent
            # channel and tasks landing in the endpoint's queue.
            self.channel.wakeup = self._wakeup.set_at
            self.service.task_queue(self.endpoint_id).wakeup = self._wakeup.set

        def loop() -> None:
            import logging

            while not self._stop.is_set():
                try:
                    events = self.step()
                except Exception:
                    logging.getLogger(__name__).exception(
                        "forwarder step failed; continuing"
                    )
                    events = 0
                if events == 0:
                    if self.event_driven:
                        self._wakeup.wait(fallback)
                    else:
                        self._sleep(fallback)

        self._thread = threading.Thread(
            target=loop, name=f"forwarder-{self.endpoint_id[:8]}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wakeup.set()  # unblock an idle event-driven loop promptly
        self._thread.join(timeout)
        self._thread = None
