"""Asynchronous result handles.

"Functions are executed asynchronously: each invocation returns an
identifier via which progress may be monitored and results retrieved"
(paper section 3).  :class:`FuncXFuture` is the SDK-side handle: it
resolves when the service publishes the task's terminal state.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, ClassVar

from repro.errors import TaskCancelled, TaskExecutionFailed, TaskPending


class FuncXFuture:
    """A waitable handle for one task's result.

    The future resolves with either a deserialized result value or a
    failure; :meth:`result` re-raises remote exceptions on the caller's
    stack (via the deserializer's :class:`RemoteExceptionWrapper`).
    """

    #: Observation hook shared by all futures: when set, invoked as
    #: ``observer(event, fields)`` on every delivery attempt and success,
    #: so an external checker can assert no future resolves twice.
    observer: ClassVar[Callable[[str, dict[str, Any]], None] | None] = None

    def _emit(self, event: str) -> None:
        observer = type(self).observer
        if observer is not None:
            observer(event, {"task_id": self.task_id})

    def __init__(self, task_id: str):
        self.task_id = task_id
        self._event = threading.Event()
        self._value: Any = None
        self._exception: BaseException | None = None
        self._cancelled = False
        self._callbacks: list[Callable[["FuncXFuture"], None]] = []
        self._lock = threading.Lock()

    # -- producer side (service/client plumbing) ----------------------------
    def set_result(self, value: Any) -> None:
        self._emit("future.deliver_attempt")
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(f"future for task {self.task_id} already resolved")
            self._value = value
            self._event.set()
            callbacks = list(self._callbacks)
        self._emit("future.delivered")
        for callback in callbacks:
            callback(self)

    def set_exception(self, exc: BaseException) -> None:
        self._emit("future.deliver_attempt")
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(f"future for task {self.task_id} already resolved")
            self._exception = exc
            self._event.set()
            callbacks = list(self._callbacks)
        self._emit("future.delivered")
        for callback in callbacks:
            callback(self)

    def cancel(self) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._cancelled = True
            self._exception = TaskCancelled(f"task {self.task_id} cancelled")
            self._event.set()
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(self)

    # -- consumer side --------------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """Block for the result; re-raise remote failures.

        Raises
        ------
        TaskPending
            If ``timeout`` elapses first.
        TaskExecutionFailed
            If the user function raised remotely (original exception type
            is restored when it round-trips pickling).
        """
        if not self._event.wait(timeout):
            raise TaskPending(self.task_id, "pending")
        if self._exception is not None:
            raise self._exception
        value = self._value
        # A RemoteExceptionWrapper as the value means remote failure.
        from repro.serialize.traceback import RemoteExceptionWrapper

        if isinstance(value, RemoteExceptionWrapper):
            value.reraise()
        return value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TaskPending(self.task_id, "pending")
        if self._exception is not None:
            return self._exception
        from repro.serialize.traceback import RemoteExceptionWrapper

        if isinstance(self._value, RemoteExceptionWrapper):
            return TaskExecutionFailed(self._value.format())
        return None

    def add_done_callback(self, callback: Callable[["FuncXFuture"], None]) -> None:
        """Invoke ``callback(self)`` on resolution (immediately if done)."""
        fire = False
        with self._lock:
            if self._event.is_set():
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"FuncXFuture({self.task_id}, {state})"


def wait_all(futures: list[FuncXFuture], timeout: float | None = None,
             clock: Callable[[], float] | None = None) -> bool:
    """Block until every future resolves; returns False on timeout."""
    now = clock or time.monotonic  # clock-domain: monotonic
    deadline = None if timeout is None else now() + timeout
    for future in futures:
        remaining = None if deadline is None else max(0.0, deadline - now())
        if not future.wait(remaining):
            return False
    return True
