"""Asynchronous result handles.

"Functions are executed asynchronously: each invocation returns an
identifier via which progress may be monitored and results retrieved"
(paper section 3).  :class:`FuncXFuture` is the SDK-side handle: it
resolves when the service publishes the task's terminal state.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, ClassVar

from repro.errors import TaskCancelled, TaskExecutionFailed, TaskPending

logger = logging.getLogger(__name__)

#: Serializes bumps of :attr:`FuncXFuture.callback_errors` (delivery
#: happens on many threads at once).
_CALLBACK_ERROR_LOCK = threading.Lock()


class FuncXFuture:
    """A waitable handle for one task's result.

    The future resolves with either a deserialized result value or a
    failure; :meth:`result` re-raises remote exceptions on the caller's
    stack (via the deserializer's :class:`RemoteExceptionWrapper`).
    """

    #: Observation hook shared by all futures: when set, invoked as
    #: ``observer(event, fields)`` on every delivery attempt and success,
    #: so an external checker can assert no future resolves twice.
    observer: ClassVar[Callable[[str, dict[str, Any]], None] | None] = None

    #: Process-wide count of exceptions swallowed from user done-callbacks
    #: (:func:`concurrent.futures` semantics: a bad callback is logged,
    #: never propagated into the delivering thread).
    callback_errors: ClassVar[int] = 0

    #: Optional hook invoked as ``hook(future, exc)`` whenever a user
    #: callback raises; deployments point this at a metrics counter.
    callback_error_hook: ClassVar[
        Callable[["FuncXFuture", BaseException], None] | None] = None

    def _emit(self, event: str) -> None:
        observer = type(self).observer
        if observer is not None:
            observer(event, {"task_id": self.task_id})

    def __init__(self, task_id: str):
        self.task_id = task_id
        self._event = threading.Event()
        self._value: Any = None
        self._exception: BaseException | None = None
        self._cancelled = False
        self._canceller: Callable[[str], Any] | None = None
        self._callbacks: list[Callable[["FuncXFuture"], None]] = []
        self._lock = threading.Lock()

    def _run_callbacks(
        self, callbacks: list[Callable[["FuncXFuture"], None]]
    ) -> None:
        """Invoke done-callbacks, isolating their exceptions.

        The delivering thread is forwarder/service plumbing — a user
        callback that raises must not unwind it.
        """
        for callback in callbacks:
            try:
                callback(self)
            except Exception as exc:
                with _CALLBACK_ERROR_LOCK:
                    FuncXFuture.callback_errors += 1
                logger.exception(
                    "exception in done-callback for task %s", self.task_id)
                hook = type(self).callback_error_hook
                if hook is not None:
                    try:
                        hook(self, exc)
                    except Exception:  # a broken hook must not cascade
                        logger.exception("callback_error_hook itself failed")

    # -- producer side (service/client plumbing) ----------------------------
    def set_result(self, value: Any) -> None:
        self._emit("future.deliver_attempt")
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(f"future for task {self.task_id} already resolved")
            self._value = value
            self._event.set()
            callbacks = list(self._callbacks)
        self._emit("future.delivered")
        self._run_callbacks(callbacks)

    def set_exception(self, exc: BaseException) -> None:
        self._emit("future.deliver_attempt")
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(f"future for task {self.task_id} already resolved")
            self._exception = exc
            self._event.set()
            callbacks = list(self._callbacks)
        self._emit("future.delivered")
        self._run_callbacks(callbacks)

    def bind_canceller(self, canceller: Callable[[str], Any]) -> None:
        """Attach the hook :meth:`cancel` uses to propagate upstream.

        Kept out of ``__init__`` so bare futures stay constructible
        anywhere; the SDK binds ``service.cancel_task`` (via the client)
        or the executor's pending-wave remover.
        """
        with self._lock:
            self._canceller = canceller

    def cancel(self) -> bool:
        """Cancel the task; returns ``True`` if this call resolved it.

        Cancellation is propagated upstream through the bound canceller
        (the service marks the task CANCELLED and suppresses its eventual
        result), then the future resolves locally with
        :class:`TaskCancelled`.  Returns ``False`` when the future
        already resolved — the result won the race, matching
        :meth:`concurrent.futures.Future.cancel` semantics.
        """
        with self._lock:
            if self._event.is_set():
                return False
            canceller = self._canceller
        if canceller is not None:
            try:
                canceller(self.task_id)
            except Exception:
                # Best-effort: an unreachable service must not keep the
                # local handle alive.
                logger.exception(
                    "cancel propagation failed for task %s", self.task_id)
        with self._lock:
            if self._event.is_set():
                # The pubsub notification for our own cancellation can
                # resolve the future before we re-acquire the lock; that
                # is still *this* call's cancel, not a lost race.
                if isinstance(self._exception, TaskCancelled):
                    self._cancelled = True
                    return True
                return False  # the result raced the cancel and won
            self._cancelled = True
            self._exception = TaskCancelled(f"task {self.task_id} cancelled")
            self._event.set()
            callbacks = list(self._callbacks)
        self._run_callbacks(callbacks)
        return True

    # -- consumer side --------------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """Block for the result; re-raise remote failures.

        Raises
        ------
        TaskPending
            If ``timeout`` elapses first.
        TaskExecutionFailed
            If the user function raised remotely (original exception type
            is restored when it round-trips pickling).
        """
        if not self._event.wait(timeout):
            raise TaskPending(self.task_id, "pending")
        if self._exception is not None:
            raise self._exception
        value = self._value
        # A RemoteExceptionWrapper as the value means remote failure.
        from repro.serialize.traceback import RemoteExceptionWrapper

        if isinstance(value, RemoteExceptionWrapper):
            value.reraise()
        return value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TaskPending(self.task_id, "pending")
        if self._exception is not None:
            return self._exception
        from repro.serialize.traceback import RemoteExceptionWrapper

        if isinstance(self._value, RemoteExceptionWrapper):
            return TaskExecutionFailed(self._value.format())
        return None

    def add_done_callback(self, callback: Callable[["FuncXFuture"], None]) -> None:
        """Invoke ``callback(self)`` on resolution (immediately if done)."""
        fire = False
        with self._lock:
            if self._event.is_set():
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            self._run_callbacks([callback])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"FuncXFuture({self.task_id}, {state})"


def wait_all(futures: list[FuncXFuture], timeout: float | None = None,
             clock: Callable[[], float] | None = None) -> bool:
    """Block until every future resolves; returns False on timeout."""
    now = clock or time.monotonic  # clock-domain: monotonic
    deadline = None if timeout is None else now() + timeout
    for future in futures:
        remaining = None if deadline is None else max(0.0, deadline - now())
        if not future.wait(remaining):
            return False
    return True
