"""Result memoization (paper section 4.7, table 3).

"Memoization involves returning a cached result when the input document
and function body have been processed previously.  funcX supports
memoization by hashing the function body and input document and storing a
mapping from hash to computed results.  Memoization is only used if
explicitly set by the user."
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable


class Memoizer:
    """Hash-addressed result cache with LRU eviction.

    Keys are ``sha256(function_buffer || payload_buffer)`` so two tasks hit
    the same entry only when *both* the function body and the serialized
    inputs are byte-identical — the paper's definition of a repeated
    deterministic invocation.

    Parameters
    ----------
    capacity:
        Maximum retained entries; least-recently-used entries evict first.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cache: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Observation hook: ``probe(event, fields)`` on store/hit, carrying
        # the cache key and a digest of the result buffer so an external
        # checker can verify a hit never returns bytes stored under a
        # different (function, payload) hash.  Emitted under the lock.
        self.probe: Callable[[str, dict[str, Any]], None] | None = None

    def _emit(self, event: str, key: str, result_buffer: bytes) -> None:
        probe = self.probe
        if probe is not None:
            probe(event, {
                "key": key,
                "result_sha": hashlib.sha256(result_buffer).hexdigest(),
            })

    @staticmethod
    def key(function_buffer: bytes, payload_buffer: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(function_buffer)
        digest.update(b"\x00")
        digest.update(payload_buffer)
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def lookup(self, function_buffer: bytes, payload_buffer: bytes) -> bytes | None:
        """The cached result buffer, or ``None`` on a miss."""
        k = self.key(function_buffer, payload_buffer)
        with self._lock:
            result = self._cache.get(k)
            if result is None:
                self.misses += 1
                return None
            self._cache.move_to_end(k)
            self.hits += 1
            self._emit("memo.hit", k, result)
            return result

    def store(self, function_buffer: bytes, payload_buffer: bytes, result_buffer: bytes) -> None:
        """Record a successful result (failures are never memoized)."""
        k = self.key(function_buffer, payload_buffer)
        with self._lock:
            self._cache[k] = result_buffer
            self._cache.move_to_end(k)
            self._emit("memo.store", k, result_buffer)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)

    def invalidate_function(self, function_buffer: bytes) -> None:
        """Drop every entry for a function body (called on re-registration).

        The key interleaves function and payload hashes, so we cannot
        address by function alone; we conservatively clear the cache.  A
        production system would keep a per-function index; the paper does
        not describe updates interacting with memoization at all.
        """
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
