"""Function, endpoint and sharing registries (paper sections 3, 4.1).

The funcX service "maintains a registry of funcX endpoints, functions,
and users in a persistent AWS RDS database"; we keep the same records in
thread-safe in-memory registries backed by the KV store abstraction.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.auth.service import AuthService, Identity
from repro.errors import AuthorizationFailed, EndpointNotFound, FunctionNotFound


@dataclass
class FunctionRecord:
    """A registered function.

    Users "may also specify users, or groups of users, who may invoke the
    function" and "may update functions they own" (section 3).  Updates
    bump ``version`` and retain prior bodies in ``history``.
    """

    function_id: str
    name: str
    owner_id: str
    function_buffer: bytes
    container_image: str | None = None
    public: bool = False
    allowed_users: set[str] = field(default_factory=set)
    allowed_groups: set[str] = field(default_factory=set)
    description: str = ""
    version: int = 1
    history: list[bytes] = field(default_factory=list)
    registered_at: float = 0.0

    def may_invoke(self, identity_id: str, auth: AuthService | None = None) -> bool:
        if self.public or identity_id == self.owner_id or identity_id in self.allowed_users:
            return True
        if auth is not None:
            return any(auth.is_member(g, identity_id) for g in self.allowed_groups)
        return False


@dataclass
class EndpointRecord:
    """A registered endpoint (a logical compute resource, section 3)."""

    endpoint_id: str
    name: str
    owner_id: str
    description: str = ""
    public: bool = True
    allowed_users: set[str] = field(default_factory=set)
    metadata: dict[str, Any] = field(default_factory=dict)
    registered_at: float = 0.0
    connected: bool = False
    last_heartbeat: float | None = None

    def may_use(self, identity_id: str) -> bool:
        return self.public or identity_id == self.owner_id or identity_id in self.allowed_users


class FunctionRegistry:
    """Thread-safe registry of :class:`FunctionRecord`."""

    def __init__(self, auth: AuthService | None = None):
        self._lock = threading.RLock()
        self._functions: dict[str, FunctionRecord] = {}
        self._auth = auth

    def register(
        self,
        name: str,
        owner: Identity,
        function_buffer: bytes,
        container_image: str | None = None,
        public: bool = False,
        allowed_users: Iterable[str] = (),
        allowed_groups: Iterable[str] = (),
        description: str = "",
        now: float = 0.0,
    ) -> FunctionRecord:
        with self._lock:
            record = FunctionRecord(
                function_id=str(uuid.uuid4()),
                name=name,
                owner_id=owner.identity_id,
                function_buffer=function_buffer,
                container_image=container_image,
                public=public,
                allowed_users=set(allowed_users),
                allowed_groups=set(allowed_groups),
                description=description,
                registered_at=now,
            )
            self._functions[record.function_id] = record
            return record

    def get(self, function_id: str) -> FunctionRecord:
        with self._lock:
            record = self._functions.get(function_id)
            if record is None:
                raise FunctionNotFound(function_id)
            return record

    def update_body(self, function_id: str, identity: Identity, new_buffer: bytes) -> FunctionRecord:
        """Replace the function body; only the owner may update."""
        with self._lock:
            record = self.get(function_id)
            if record.owner_id != identity.identity_id:
                raise AuthorizationFailed(identity.display, "function-owner")
            record.history.append(record.function_buffer)
            record.function_buffer = new_buffer
            record.version += 1
            return record

    def share_with(self, function_id: str, identity: Identity,
                   users: Iterable[str] = (), groups: Iterable[str] = ()) -> None:
        with self._lock:
            record = self.get(function_id)
            if record.owner_id != identity.identity_id:
                raise AuthorizationFailed(identity.display, "function-owner")
            record.allowed_users.update(users)
            record.allowed_groups.update(groups)

    def check_invocable(self, function_id: str, identity_id: str) -> FunctionRecord:
        record = self.get(function_id)
        if not record.may_invoke(identity_id, self._auth):
            raise AuthorizationFailed(identity_id, f"invoke:{function_id}")
        return record

    def owned_by(self, identity_id: str) -> list[FunctionRecord]:
        with self._lock:
            return [r for r in self._functions.values() if r.owner_id == identity_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._functions)


class EndpointRegistry:
    """Thread-safe registry of :class:`EndpointRecord`."""

    def __init__(self):
        self._lock = threading.RLock()
        self._endpoints: dict[str, EndpointRecord] = {}

    def register(
        self,
        name: str,
        owner: Identity,
        description: str = "",
        public: bool = True,
        metadata: dict[str, Any] | None = None,
        now: float = 0.0,
    ) -> EndpointRecord:
        with self._lock:
            record = EndpointRecord(
                endpoint_id=str(uuid.uuid4()),
                name=name,
                owner_id=owner.identity_id,
                description=description,
                public=public,
                metadata=dict(metadata or {}),
                registered_at=now,
            )
            self._endpoints[record.endpoint_id] = record
            return record

    def get(self, endpoint_id: str) -> EndpointRecord:
        with self._lock:
            record = self._endpoints.get(endpoint_id)
            if record is None:
                raise EndpointNotFound(endpoint_id)
            return record

    def set_connected(self, endpoint_id: str, connected: bool, now: float | None = None) -> None:
        with self._lock:
            record = self.get(endpoint_id)
            record.connected = connected
            if connected and now is not None:
                record.last_heartbeat = now

    def heartbeat(self, endpoint_id: str, now: float) -> None:
        with self._lock:
            record = self.get(endpoint_id)
            record.last_heartbeat = now

    def check_usable(self, endpoint_id: str, identity_id: str) -> EndpointRecord:
        record = self.get(endpoint_id)
        if not record.may_use(identity_id):
            raise AuthorizationFailed(identity_id, f"use:{endpoint_id}")
        return record

    def all(self) -> list[EndpointRecord]:
        with self._lock:
            return list(self._endpoints.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._endpoints)
