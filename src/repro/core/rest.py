"""REST facade: HTTP-shaped request routing over the funcX service.

"All user interactions with funcX are performed via a REST API
implemented by a cloud-hosted funcX service" (paper §3) — e.g. function
registration "is performed via a JSON POST request to the REST API".

:class:`RestApi` maps method+path+JSON-body requests onto the service,
translating exceptions into HTTP status codes, so the SDK-over-REST path
can be exercised end-to-end without a network stack.  Payload bytes are
base64-encoded in JSON bodies, as the real API transports serialized
buffers.
"""

from __future__ import annotations

import base64
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.service import FuncXService
from repro.errors import (
    AuthenticationFailed,
    AuthorizationFailed,
    FuncXError,
    NotFoundError,
    PayloadTooLarge,
    ShardDraining,
    TaskPending,
    ThrottleExceeded,
    UnknownTenant,
)


@dataclass(frozen=True)
class Response:
    """An HTTP-shaped response."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> str:
        return json.dumps(self.body)


def _encode(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _decode(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


class RestApi:
    """Routes REST requests to a :class:`FuncXService`.

    Routes (all JSON bodies; bearer token in the ``Authorization`` header):

    ========  =============================  =====================================
    method    path                           action
    ========  =============================  =====================================
    POST      /api/v1/functions              register a function
    PUT       /api/v1/functions/<id>         update a function body
    POST      /api/v1/endpoints              register an endpoint
    GET       /api/v1/endpoints              list endpoints
    POST      /api/v1/tasks                  submit one task
    POST      /api/v1/batch                  submit a task batch
    POST      /api/v1/tasks/status           batch task status (any shard)
    GET       /api/v1/tasks/<id>/status      task status
    GET       /api/v1/tasks/<id>/result      task result (202 while pending)
    ========  =============================  =====================================
    """

    def __init__(self, service: FuncXService):
        self.service = service
        self._routes: list[tuple[str, re.Pattern[str], Callable[..., Response]]] = [
            ("POST", re.compile(r"^/api/v1/functions$"), self._register_function),
            ("PUT", re.compile(r"^/api/v1/functions/(?P<fid>[\w-]+)$"), self._update_function),
            ("POST", re.compile(r"^/api/v1/endpoints$"), self._register_endpoint),
            ("GET", re.compile(r"^/api/v1/endpoints$"), self._list_endpoints),
            ("POST", re.compile(r"^/api/v1/tasks$"), self._submit),
            ("POST", re.compile(r"^/api/v1/batch$"), self._submit_batch),
            ("POST", re.compile(r"^/api/v1/tasks/status$"), self._status_batch),
            ("GET", re.compile(r"^/api/v1/tasks/(?P<tid>[\w-]+)/status$"), self._status),
            ("GET", re.compile(r"^/api/v1/tasks/(?P<tid>[\w-]+)/result$"), self._result),
        ]

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        token: str | None = None,
        body: dict[str, Any] | None = None,
    ) -> Response:
        """Dispatch one request; never raises (errors become statuses)."""
        body = body or {}
        if token is None:
            return Response(401, {"error": "missing bearer token"})
        for route_method, pattern, handler in self._routes:
            if route_method != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            try:
                return handler(token, body, **match.groupdict())
            except AuthenticationFailed as exc:
                return Response(401, {"error": str(exc)})
            except UnknownTenant as exc:
                # Strict admission: an authenticated identity with no
                # tenant policy is forbidden, not unauthenticated.
                return Response(403, {"error": str(exc), "tenant": exc.tenant})
            except AuthorizationFailed as exc:
                return Response(403, {"error": str(exc)})
            except NotFoundError as exc:
                return Response(404, {"error": str(exc)})
            except PayloadTooLarge as exc:
                return Response(413, {"error": str(exc)})
            except TaskPending as exc:
                return Response(202, {"status": exc.status, "task_id": exc.task_id})
            except ThrottleExceeded as exc:
                return Response(429, {
                    "error": str(exc),
                    "tenant": exc.tenant,
                    "retry_after": exc.retry_after,
                })
            except ShardDraining as exc:
                return Response(503, {
                    "error": str(exc),
                    "shard": exc.shard_index,
                    "retry": True,
                })
            except (KeyError, ValueError, TypeError) as exc:
                return Response(400, {"error": f"bad request: {exc}"})
            except FuncXError as exc:
                return Response(500, {"error": str(exc)})
        return Response(404, {"error": f"no route for {method} {path}"})

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _register_function(self, token: str, body: dict[str, Any]) -> Response:
        function_id = self.service.register_function(
            token,
            name=body["name"],
            function_buffer=_decode(body["function"]),
            container_image=body.get("container_image"),
            public=bool(body.get("public", False)),
            allowed_users=tuple(body.get("allowed_users", ())),
            allowed_groups=tuple(body.get("allowed_groups", ())),
            description=body.get("description", ""),
        )
        return Response(201, {"function_id": function_id})

    def _update_function(self, token: str, body: dict[str, Any], fid: str) -> Response:
        version = self.service.update_function(token, fid, _decode(body["function"]))
        return Response(200, {"function_id": fid, "version": version})

    def _register_endpoint(self, token: str, body: dict[str, Any]) -> Response:
        endpoint_id = self.service.register_endpoint(
            token,
            name=body["name"],
            description=body.get("description", ""),
            public=bool(body.get("public", True)),
            metadata=body.get("metadata"),
        )
        return Response(201, {"endpoint_id": endpoint_id})

    def _list_endpoints(self, token: str, body: dict[str, Any]) -> Response:
        records = self.service.list_endpoints(token)
        return Response(200, {
            "endpoints": [
                {
                    "endpoint_id": r.endpoint_id,
                    "name": r.name,
                    "connected": r.connected,
                    "public": r.public,
                }
                for r in records
            ]
        })

    def _submit(self, token: str, body: dict[str, Any]) -> Response:
        task_id = self.service.submit(
            token,
            function_id=body["function_id"],
            endpoint_id=body["endpoint_id"],
            payload_buffer=_decode(body["payload"]),
            memoize=bool(body.get("memoize", False)),
        )
        return Response(201, {"task_id": task_id})

    def _submit_batch(self, token: str, body: dict[str, Any]) -> Response:
        requests = [
            (entry["function_id"], entry["endpoint_id"], _decode(entry["payload"]))
            for entry in body["tasks"]
        ]
        task_ids = self.service.submit_batch(
            token, requests, memoize=bool(body.get("memoize", False))
        )
        return Response(201, {"task_ids": task_ids})

    def _status(self, token: str, body: dict[str, Any], tid: str) -> Response:
        state = self.service.status(token, tid)
        return Response(200, {"task_id": tid, "status": state.value})

    def _status_batch(self, token: str, body: dict[str, Any]) -> Response:
        """Batch status fan-out: one request, tasks on any shard."""
        task_ids = list(body["task_ids"])
        states = self.service.status_batch(token, task_ids)
        return Response(200, {"statuses": states})

    def _result(self, token: str, body: dict[str, Any], tid: str) -> Response:
        from repro.errors import TaskExecutionFailed

        try:
            buffer = self.service.get_result(
                token, tid, timeout=float(body.get("timeout", 0.0))
            )
        except TaskExecutionFailed as exc:
            # Text-only failure (no serialized wrapper to hand back).
            return Response(200, {"task_id": tid, "status": "failed",
                                  "error": str(exc)})
        return Response(200, {"task_id": tid, "result": _encode(buffer)})
