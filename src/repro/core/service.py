"""The cloud-hosted funcX web service (paper section 4.1).

The service exposes the REST API (here: method calls taking a bearer
token), maintains the registries, stores serialized functions and tasks
in the store, manages one task queue and one result queue per endpoint,
and performs service-side memoization.  Forwarders (one per connected
endpoint) drain the task queues.

Every public method authenticates and authorizes the caller exactly as
the Globus-Auth-protected REST API would.

The service plane is *sharded* (journal paper §5): ``FuncXService`` is
a thin stateless facade routing over ``config.shards`` independent
:class:`~repro.core.shard.ServiceShard` partitions.  A consistent-hash
:class:`~repro.core.shard.ShardMap` places each endpoint (and therefore
its queues and every task addressed to it) on one shard; task ids carry
their owning shard as a ``-s<idx>`` suffix so the status/result/ack
paths route in O(1).  Each shard has its own lock, task table, queue
pair per endpoint, result-stream delivery thread, and store pacer —
dispatch, credit accounting, and result delivery on different shards
never contend.  In front of the facade sits per-tenant admission
control (:mod:`repro.core.admission`): token-bucket rate limits,
max-outstanding quotas, and DRR-fair dequeue across tenant lanes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.auth.scopes import Scope
from repro.auth.service import AuthService, Identity
from repro.core.admission import AdmissionController
from repro.core.memoization import Memoizer
from repro.core.registry import EndpointRecord, EndpointRegistry, FunctionRegistry
from repro.core.shard import ServiceShard, ShardMap
from repro.core.stream import (
    DEFAULT_SPILL_THRESHOLD,
    ResultStreamRouter,
    ResultStreamServer,
)
from repro.core.tasks import Task, TaskState
from repro.errors import (
    PayloadTooLarge,
    ShardDraining,
    TaskCancelled,
    TaskNotFound,
    TaskPending,
)
from repro.metrics.registry import MetricsRegistry
from repro.observability.trace import TraceStore
from repro.store.kvstore import KVStore
from repro.store.pubsub import PubSub
from repro.store.queues import ReliableQueue


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable service behaviour.

    Attributes
    ----------
    payload_limit:
        Maximum serialized payload size accepted through the service; the
        paper restricts in-band data "for performance and cost reasons"
        (section 4.6) and directs larger data out of band.
    result_ttl:
        Seconds a retrieved result survives before the periodic purge
        (section 4.1) removes it.
    request_overhead:
        Synchronous per-request processing time (authentication, Redis
        round trips).  Zero by default; the Table 1 benchmark sets it to
        model the measured cloud-service overhead (ts in figure 4).
    default_max_retries:
        Retry budget for tasks lost to worker/manager failure.
    tracing:
        Whether the service opens a per-task trace context propagated
        through the whole fabric (the figure-4 latency decomposition).
    trace_capacity:
        Retention bound on stored traces (oldest finalized evicted first).
    stream_spill_threshold:
        Result payloads at or above this size (bytes) are delivered on
        the push stream as staged ``DataRef`` records instead of in-band
        buffers (see :mod:`repro.core.stream`).
    shards:
        Number of independent service-plane partitions.  ``1`` (the
        default) behaves exactly like the unsharded service.
    shard_op_cost:
        Modeled backing-store occupancy (seconds) charged per shard
        store operation (task insert, completion write).  Each shard
        pays it on its *own* pacer, so N shards absorb N times the
        store traffic — the effect the shard-scale benchmark measures.
        ``0`` disables pacing.
    """

    payload_limit: int = 512 * 1024
    result_ttl: float = 3600.0
    request_overhead: float = 0.0
    default_max_retries: int = 1
    tracing: bool = True
    trace_capacity: int = 100_000
    stream_spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    shards: int = 1
    shard_op_cost: float = 0.0


class FuncXService:
    """The funcX web service + data plane entry point.

    Parameters
    ----------
    auth:
        The identity service used to validate bearer tokens.
    config:
        Service tunables.
    clock:
        Injectable time source (wall clock by default).
    sleeper:
        Injectable delay function used to apply ``request_overhead`` in
        live deployments (ignored when overhead is zero).
    metrics:
        The deployment's shared metrics registry (a private one is
        created when not provided, so standalone services stay isolated).
    admission:
        Per-tenant admission controller; a permissive default (no
        limits, reject nothing) is created when not provided.
    """

    def __init__(
        self,
        auth: AuthService | None = None,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
    ):
        self.auth = auth or AuthService()
        self.config = config or ServiceConfig()
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.functions = FunctionRegistry(auth=self.auth)
        self.endpoints = EndpointRegistry()
        self.store = KVStore(clock=self._clock)
        self.pubsub = PubSub()
        self.memoizer = Memoizer()
        # observability fabric: per-task traces + registry-backed counters
        self.metrics = metrics or MetricsRegistry(clock=self._clock)
        self.traces = TraceStore(clock=self._clock, enabled=self.config.tracing,
                                 capacity=self.config.trace_capacity)
        self._c_received = self.metrics.counter("service.tasks_received")
        self._c_completed = self.metrics.counter("service.tasks_completed")
        self._c_memo = self.metrics.counter("service.memo_completions")
        self._c_duplicate_results = self.metrics.counter("service.duplicate_results")
        self._c_forgotten = self.metrics.counter("service.tasks_forgotten")
        self._c_cancelled = self.metrics.counter("service.tasks_cancelled")
        self._c_post_cancel = self.metrics.counter("service.post_cancel_results")
        self._c_shard_rejects = self.metrics.counter("shard.draining_rejects")
        # Observation hook: ``probe(event, fields)`` for task lifecycle
        # events (chaos invariant probes attach here).  Declared before
        # the shards — their accounting probes read it through us.
        self.probe: Callable[[str, dict[str, Any]], None] | None = None
        # Per-tenant admission control in front of the facade.
        self.admission = admission or AdmissionController(clock=self._clock)
        self.admission.metrics = self.metrics
        # The sharded service plane: consistent-hash placement plus one
        # independent partition (lock, task table, queues, stream
        # delivery thread, store pacer) per shard.
        self.shard_map = ShardMap(self.config.shards)
        self.shards: list[ServiceShard] = [
            ServiceShard(
                index=index,
                service=self,
                clock=self._clock,
                sleeper=self._sleep,
                op_cost=self.config.shard_op_cost,
                spill_threshold=self.config.stream_spill_threshold,
            )
            for index in range(self.config.shards)
        ]
        self._stream_router = ResultStreamRouter(self)
        # The open-task gauge reads each shard's O(1) counter — the old
        # implementation scanned every task record per metrics read.
        self.metrics.gauge("service.tasks_live").set_function(
            lambda: sum(shard.open_tasks() for shard in self.shards))

    # -- registry-backed counters (compat with the former int attributes) ----
    @property
    def tasks_received(self) -> int:
        return int(self._c_received.value)

    @property
    def tasks_completed(self) -> int:
        return int(self._c_completed.value)

    @property
    def memo_completions(self) -> int:
        return int(self._c_memo.value)

    @property
    def duplicate_results(self) -> int:
        return int(self._c_duplicate_results.value)

    @property
    def tasks_cancelled(self) -> int:
        return int(self._c_cancelled.value)

    @property
    def post_cancel_results(self) -> int:
        return int(self._c_post_cancel.value)

    @property
    def result_stream(self) -> ResultStreamServer | ResultStreamRouter:
        """The push-delivery entry point clients subscribe through.

        A single-shard plane exposes the shard's real server (full
        back-compat, including the ``step()``/``spill`` test surface);
        a multi-shard plane exposes the router, whose subscriptions
        span every shard's delivery thread.
        """
        if len(self.shards) == 1:
            return self.shards[0].result_stream
        return self._stream_router

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        probe = self.probe
        if probe is not None:
            probe(event, fields)

    def _spend_overhead(self) -> None:
        if self.config.request_overhead > 0:
            self._sleep(self.config.request_overhead)

    def now(self) -> float:
        return self._clock()

    def shard_for_endpoint(self, endpoint_id: str) -> ServiceShard:
        return self.shards[self.shard_map.shard_for_endpoint(endpoint_id)]

    def shard_for_task(self, task_id: str) -> ServiceShard:
        return self.shards[self.shard_map.shard_for_task(task_id)]

    # ------------------------------------------------------------------
    # registration API
    # ------------------------------------------------------------------
    def register_function(
        self,
        token: str,
        name: str,
        function_buffer: bytes,
        container_image: str | None = None,
        public: bool = False,
        allowed_users: tuple[str, ...] = (),
        allowed_groups: tuple[str, ...] = (),
        description: str = "",
    ) -> str:
        """Register a serialized function; returns its UUID."""
        identity = self.auth.authorize(token, Scope.REGISTER_FUNCTION)
        self._spend_overhead()
        if len(function_buffer) > self.config.payload_limit:
            raise PayloadTooLarge(len(function_buffer), self.config.payload_limit)
        record = self.functions.register(
            name=name,
            owner=identity,
            function_buffer=function_buffer,
            container_image=container_image,
            public=public,
            allowed_users=allowed_users,
            allowed_groups=allowed_groups,
            description=description,
            now=self._clock(),
        )
        self.store.hset("functions", record.function_id, function_buffer)
        return record.function_id

    def update_function(self, token: str, function_id: str, function_buffer: bytes) -> int:
        """Owner-only update of a function body; returns new version."""
        identity = self.auth.authorize(token, Scope.REGISTER_FUNCTION)
        self._spend_overhead()
        record = self.functions.update_body(function_id, identity, function_buffer)
        self.store.hset("functions", record.function_id, function_buffer)
        # A changed body must not serve stale memoized results.
        self.memoizer.invalidate_function(function_buffer)
        return record.version

    def register_endpoint(
        self,
        token: str,
        name: str,
        description: str = "",
        public: bool = True,
        metadata: dict[str, Any] | None = None,
    ) -> str:
        """Register an endpoint; allocates its queues on its home shard."""
        identity = self.auth.authorize(token, Scope.REGISTER_ENDPOINT)
        self._spend_overhead()
        record = self.endpoints.register(
            name=name,
            owner=identity,
            description=description,
            public=public,
            metadata=metadata,
            now=self._clock(),
        )
        # Endpoint affinity: the consistent-hash map pins both queues
        # (and every task addressed here) to one shard, so the
        # endpoint's forwarder drains exactly one partition.
        self.shard_for_endpoint(record.endpoint_id).add_endpoint(
            record.endpoint_id, weight_for=self.admission.weight_for)
        return record.endpoint_id

    # ------------------------------------------------------------------
    # execution API
    # ------------------------------------------------------------------
    def submit(
        self,
        token: str,
        function_id: str,
        endpoint_id: str,
        payload_buffer: bytes,
        memoize: bool = False,
        max_retries: int | None = None,
    ) -> str:
        """Submit one task; returns its task id (figure 3, steps 1-3)."""
        received_at = self._clock()
        identity = self.auth.authorize(token, Scope.EXECUTE)
        self._spend_overhead()
        self._check_accepting(endpoint_id)
        self.admission.admit(identity.identity_id)
        try:
            return self._submit_authorized(
                identity, function_id, endpoint_id, payload_buffer, memoize,
                max_retries, received_at=received_at,
            )
        except BaseException:
            self.admission.release(identity.identity_id)
            raise

    def submit_batch(
        self,
        token: str,
        requests: list[tuple[str, str, bytes]],
        memoize: bool = False,
    ) -> list[str]:
        """Submit many tasks in one authenticated request.

        Batch submission amortizes the per-request overhead — the paper's
        answer to web-service throughput limits (section 5.2.4).

        The batch is atomic on validation: every request is checked
        (payload size, function invocability, endpoint usability, shard
        accepting, tenant quota for the whole batch) before *any* task
        is enqueued, so a rejected member cannot leave a partial batch
        behind with the caller holding no task ids.
        """
        received_at = self._clock()
        identity = self.auth.authorize(token, Scope.EXECUTE)
        self._spend_overhead()  # one overhead for the whole batch
        for fid, eid, payload in requests:
            if len(payload) > self.config.payload_limit:
                raise PayloadTooLarge(len(payload), self.config.payload_limit)
            self.functions.check_invocable(fid, identity.identity_id)
            self.endpoints.check_usable(eid, identity.identity_id)
            self._check_accepting(eid)
        self.admission.admit(identity.identity_id, count=len(requests))
        submitted: list[str] = []
        try:
            for fid, eid, payload in requests:
                submitted.append(
                    self._submit_authorized(identity, fid, eid, payload,
                                            memoize, None,
                                            received_at=received_at))
        except BaseException:
            # Validation passed, so this is unexpected; return the quota
            # of the members that never made it in.
            self.admission.release(identity.identity_id,
                                   count=len(requests) - len(submitted))
            raise
        return submitted

    def _check_accepting(self, endpoint_id: str) -> None:
        """Reject submissions aimed at a draining shard (503 shape)."""
        shard = self.shard_for_endpoint(endpoint_id)
        if shard.draining:
            self._c_shard_rejects.inc()
            raise ShardDraining(shard.index)

    def _submit_authorized(
        self,
        identity: Identity,
        function_id: str,
        endpoint_id: str,
        payload_buffer: bytes,
        memoize: bool,
        max_retries: int | None,
        received_at: float | None = None,
    ) -> str:
        if len(payload_buffer) > self.config.payload_limit:
            raise PayloadTooLarge(len(payload_buffer), self.config.payload_limit)
        function = self.functions.check_invocable(function_id, identity.identity_id)
        self.endpoints.check_usable(endpoint_id, identity.identity_id)
        shard = self.shard_for_endpoint(endpoint_id)

        now = received_at if received_at is not None else self._clock()
        task = Task(
            function_id=function_id,
            endpoint_id=endpoint_id,
            payload_buffer=payload_buffer,
            container_image=function.container_image,
            owner_id=identity.identity_id,
            max_retries=(
                max_retries if max_retries is not None else self.config.default_max_retries
            ),
        )
        # Embed the owning shard in the id: every later lookup (status,
        # result, ack, stream watch) routes in O(1) without a directory.
        task.task_id = self.shard_map.tag(task.task_id, shard.index)
        task.state_times[TaskState.RECEIVED.value] = now  # born RECEIVED
        shard.insert_task(task)
        self._c_received.inc()
        trace = self.traces.open(task.task_id, at=now)
        if trace is not None:
            task.metadata["trace_id"] = trace.trace_id
        self.store.hset("tasks", task.task_id, task.to_record())
        shard.pacer.charge()  # the task-record store write
        self._emit("task.submitted", task_id=task.task_id,
                   endpoint_id=endpoint_id, shard=shard.index)

        if memoize:
            cached = self.memoizer.lookup(function.function_buffer, payload_buffer)
            if cached is not None:
                task.memo_hit = True
                done = self._clock()
                if trace is not None:
                    trace.record("service", "service", start=now, end=done,
                                 memo_hit=True, shard=shard.index)
                self._complete(task, success=True, result_buffer=cached,
                               execution_time=0.0, now=done)
                self._c_memo.inc()
                return task.task_id
            task.metadata["memoize"] = True

        queue = shard.task_queue(endpoint_id)
        queued_at = self._clock()
        task.advance(TaskState.QUEUED, queued_at)
        if trace is not None:
            trace.record("service", "service", start=now, end=queued_at,
                         shard=shard.index)
        # The tenant lane makes dequeue DRR-fair across identities
        # sharing this endpoint.
        queue.put(task.task_id, lane=identity.identity_id)
        self.pubsub.publish(f"endpoint.{endpoint_id}.queued", task.task_id)
        return task.task_id

    # ------------------------------------------------------------------
    # monitoring / results API
    # ------------------------------------------------------------------
    def status(self, token: str, task_id: str) -> TaskState:
        self.auth.authorize(token, Scope.MONITOR)
        return self._get_task(task_id).state

    def status_batch(self, token: str, task_ids: list[str]) -> dict[str, str]:
        """States for many tasks in one authenticated request.

        The facade fans the lookup out shard-by-shard (one routing pass,
        then per-shard table reads) — the batch analogue of ``status``
        that a sharded ``wait_for`` polls with.
        """
        self.auth.authorize(token, Scope.MONITOR)
        by_shard: dict[int, list[str]] = {}
        for task_id in task_ids:
            by_shard.setdefault(
                self.shard_map.shard_for_task(task_id), []).append(task_id)
        states: dict[str, str] = {}
        for index, ids in by_shard.items():
            shard = self.shards[index]
            for task_id in ids:
                task = shard.get_task(task_id)
                if task is None:
                    raise TaskNotFound(task_id)
                states[task_id] = task.state.value
        return states

    def get_result(self, token: str, task_id: str, timeout: float = 0.0) -> bytes:
        """Retrieve a completed task's serialized result (figure 3, step 6).

        Blocks up to ``timeout`` seconds for completion; raises
        :class:`TaskPending` if still incomplete.  Successfully retrieved
        results are scheduled for purge (section 4.1).
        """
        self.auth.authorize(token, Scope.RESULTS)
        task = self._get_task(task_id)
        if not task.state.terminal and timeout > 0:
            deadline = self._clock() + timeout
            done = threading.Event()
            sub = self.pubsub.subscribe(f"task.{task_id}", lambda _t, _m: done.set())
            try:
                if not task.state.terminal:
                    done.wait(max(0.0, deadline - self._clock()))
            finally:
                self.pubsub.unsubscribe(sub)
        if not task.state.terminal:
            raise TaskPending(task_id, task.state.value)
        if task.state is TaskState.CANCELLED:
            raise TaskCancelled(task.exception_text or f"task {task_id} cancelled")
        if task.state is TaskState.SUCCESS:
            assert task.result_buffer is not None
            self.store.expire(f"result:{task_id}", self.config.result_ttl)
            return task.result_buffer
        # FAILED: hand back the serialized exception wrapper when the
        # worker produced one — the SDK re-raises the original exception
        # type on the caller's stack; otherwise raise the recorded text.
        if task.state is TaskState.FAILED and task.result_buffer:
            self.store.expire(f"result:{task_id}", self.config.result_ttl)
            return task.result_buffer
        from repro.errors import TaskExecutionFailed

        raise TaskExecutionFailed(task.exception_text or task.state.value)

    def task_info(self, token: str, task_id: str) -> dict[str, Any]:
        self.auth.authorize(token, Scope.MONITOR)
        return self._get_task(task_id).to_record()

    def list_endpoints(self, token: str) -> list[EndpointRecord]:
        self.auth.authorize(token, Scope.MONITOR)
        return self.endpoints.all()

    # ------------------------------------------------------------------
    # data-plane interface (used by forwarders — not user-facing)
    # ------------------------------------------------------------------
    def task_queue(self, endpoint_id: str) -> ReliableQueue:
        self.endpoints.get(endpoint_id)  # existence check
        return self._queue_for(endpoint_id)

    def result_queue(self, endpoint_id: str) -> ReliableQueue:
        self.endpoints.get(endpoint_id)
        return self.shard_for_endpoint(endpoint_id).result_queue(endpoint_id)

    def task_by_id(self, task_id: str) -> Task:
        return self._get_task(task_id)

    def function_buffer(self, function_id: str) -> bytes:
        return self.functions.get(function_id).function_buffer

    def complete_task(
        self,
        task_id: str,
        success: bool,
        result_buffer: bytes = b"",
        exception_text: str | None = None,
        execution_time: float = 0.0,
        result_return_time: float = 0.0,
    ) -> bool:
        """Record a task outcome arriving from a forwarder (fig 3, step 5).

        Returns ``True`` when the outcome was applied.  A result for an
        already-terminal task (the at-least-once delivery path redelivers
        on requeue races) is counted and reported but must not mutate the
        recorded outcome, metadata, or memo store — first result wins.
        """
        task = self._get_task(task_id)
        if task.state is TaskState.CANCELLED:
            # The client cancelled while the task was in flight; the
            # worker's result arrives late and is suppressed (counted
            # apart from redelivery duplicates — different pathology).
            self._c_post_cancel.inc()
            self._emit("task.post_cancel_result", task_id=task_id, success=success)
            return False
        if task.state.terminal:
            self._c_duplicate_results.inc()
            self._emit("task.duplicate_result", task_id=task_id, success=success)
            return False
        now = self._clock()
        task.metadata["result_return_time"] = result_return_time
        if success and task.metadata.get("memoize"):
            function = self.functions.get(task.function_id)
            self.memoizer.store(function.function_buffer, task.payload_buffer, result_buffer)
        self._complete(
            task,
            success=success,
            result_buffer=result_buffer,
            exception_text=exception_text,
            execution_time=execution_time,
            now=now,
        )
        return True

    def cancel_task(self, token: str, task_id: str) -> bool:
        """Cancel a not-yet-finished task (the journal SDK's addition).

        Returns ``True`` when this call moved the task to CANCELLED,
        ``False`` when it already reached a terminal state (the result
        won the race — first outcome wins, as everywhere else).

        A QUEUED task's queue entry becomes an orphan the forwarder acks
        at dispatch time (its terminal-state check).  A DISPATCHED or
        RUNNING task cannot be recalled from the worker: it is marked
        cancelled now and its eventual result is suppressed and counted
        (``service.post_cancel_results``).
        """
        self.auth.authorize(token, Scope.EXECUTE)
        self._spend_overhead()
        task = self._get_task(task_id)
        if task.state.terminal:
            return False
        now = self._clock()
        task.advance(TaskState.CANCELLED, now)
        task.exception_text = f"task {task_id} cancelled by client"
        self._c_cancelled.inc()
        trace = self.traces.finalize(task_id, at=now)
        if trace is not None:
            total = trace.total()
            if total is not None:
                self.metrics.histogram("task.total_seconds").observe(total)
        self._emit("task.cancelled", task_id=task_id, state=task.state.value)
        self.store.hset("tasks", task_id, task.to_record())
        self.pubsub.publish(f"task.{task_id}", task.state.value)
        shard = self.shard_for_task(task_id)
        shard.note_terminal(task)
        self.admission.release(task.owner_id)
        shard.result_stream.on_task_terminal(task)
        return True

    def requeue_task(self, task_id: str, reason: str = "", enqueue: bool = True) -> bool:
        """Return a dispatched-but-unfinished task to its endpoint queue.

        Used by forwarders when an endpoint disconnects and by agents when
        a manager is lost; enforces the retry budget.  With
        ``enqueue=False`` only the task state is rolled back to QUEUED —
        for callers (the forwarder) that separately nack a queue lease,
        which re-inserts the task id itself.
        """
        task = self._get_task(task_id)
        if task.state.terminal:
            return False
        if task.attempts > task.max_retries:
            self._emit("task.retries_exhausted", task_id=task_id, reason=reason,
                       attempts=task.attempts)
            self._complete(
                task,
                success=False,
                exception_text=f"retries exhausted after {task.attempts} attempts ({reason})",
                now=self._clock(),
            )
            return False
        if task.state is not TaskState.QUEUED:
            task.advance(TaskState.QUEUED, self._clock())
        task.metadata.setdefault("requeue_reasons", []).append(reason)
        self._emit("task.requeued", task_id=task_id, reason=reason)
        if enqueue:
            self._queue_for(task.endpoint_id).put(task.task_id,
                                                  lane=task.owner_id)
        return True

    def mark_dispatched(self, task_id: str) -> None:
        task = self._get_task(task_id)
        task.attempts += 1
        task.advance(TaskState.DISPATCHED, self._clock())

    def mark_running(self, task_id: str, started_at: float | None = None) -> None:
        task = self._get_task(task_id)
        if task.state is TaskState.DISPATCHED:
            task.advance(TaskState.RUNNING, started_at if started_at is not None else self._clock())

    def endpoint_heartbeat(self, endpoint_id: str) -> None:
        self.endpoints.heartbeat(endpoint_id, self._clock())

    # ------------------------------------------------------------------
    # shard administration
    # ------------------------------------------------------------------
    def drain_shard(self, index: int) -> None:
        """Stop accepting submissions on one shard (rolling restart)."""
        self.shards[index].drain()

    def restart_shard(self, index: int) -> None:
        """Bring a drained/killed shard back into rotation."""
        self.shards[index].restart()

    def shard_counters(self) -> list[dict[str, int]]:
        """Per-shard accounting snapshots (conservation checks, CLI)."""
        return [shard.counters() for shard in self.shards]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop service-owned background machinery (stream delivery)."""
        for shard in self.shards:
            shard.close()

    def purge(self) -> int:
        """Run the periodic store purge; returns evicted entries."""
        return self.store.purge_expired()

    def forget_task(self, task_id: str) -> bool:
        """Administratively purge a task record (TTL eviction, GDPR wipe).

        The task id may still be riding an endpoint queue — forwarders
        must treat a leased-but-unknown id as an orphan, ack it, and keep
        draining (see ``Forwarder._dispatch_tasks``).
        """
        task = self.shard_for_task(task_id).pop_task(task_id)
        if task is None:
            return False
        if not task.state.terminal:
            self.admission.release(task.owner_id)
        self.store.hdel("tasks", task_id)
        self._c_forgotten.inc()
        self._emit("task.forgotten", task_id=task_id, state=task.state.value)
        return True

    def iter_tasks(self) -> list[Task]:
        """A snapshot of every task record (chaos accounting probes)."""
        tasks: list[Task] = []
        for shard in self.shards:
            tasks.extend(shard.iter_tasks())
        return tasks

    def outstanding_tasks(self, endpoint_id: str) -> int:
        """Queued + dispatched + running tasks for an endpoint.

        O(1): reads the owning shard's incrementally-maintained
        per-endpoint index (the forwarder calls this per dispatch wave;
        it used to scan the whole task table).
        """
        return self.shard_for_endpoint(endpoint_id).outstanding(endpoint_id)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _queue_for(self, endpoint_id: str) -> ReliableQueue:
        return self.shard_for_endpoint(endpoint_id).task_queue(endpoint_id)

    def _get_task(self, task_id: str) -> Task:
        task = self.shard_for_task(task_id).get_task(task_id)
        if task is None:
            raise TaskNotFound(task_id)
        return task

    def _complete(
        self,
        task: Task,
        success: bool,
        result_buffer: bytes = b"",
        exception_text: str | None = None,
        execution_time: float = 0.0,
        now: float = 0.0,
    ) -> None:
        # Tolerate completion from any live state (worker may finish after
        # a requeue decision raced it; first completion wins).
        if task.state.terminal:
            self._emit("task.duplicate_completion", task_id=task.task_id,
                       success=success)
            return
        if task.state in (TaskState.RECEIVED, TaskState.QUEUED, TaskState.DISPATCHED):
            # fast paths (memo hits complete straight from RECEIVED)
            target = TaskState.SUCCESS if success else TaskState.FAILED
            task.state_times.setdefault("running", now)
            task.state = target
            task.state_times.setdefault(target.value, now)
        else:
            task.advance(TaskState.SUCCESS if success else TaskState.FAILED, now)
        task.result_buffer = result_buffer or None
        task.exception_text = exception_text
        task.metadata["execution_time"] = execution_time
        self._c_completed.inc()
        trace = self.traces.finalize(task.task_id, at=now)
        if trace is not None:
            for stage, duration in trace.breakdown().items():
                self.metrics.histogram("task.stage_seconds", stage=stage).observe(duration)
            total = trace.total()
            if total is not None:
                self.metrics.histogram("task.total_seconds").observe(total)
        self._emit("task.completed", task_id=task.task_id, success=success,
                   state=task.state.value)
        self.store.hset("tasks", task.task_id, task.to_record())
        self.store.set(f"result:{task.task_id}", result_buffer, ttl=None)
        shard = self.shard_for_task(task.task_id)
        shard.note_terminal(task)
        self.admission.release(task.owner_id)
        shard.pacer.charge()  # the completion store write
        self.pubsub.publish(f"task.{task.task_id}", task.state.value)
        shard.result_stream.on_task_terminal(task)
