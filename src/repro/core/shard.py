"""The sharded service plane: shard map, per-shard state, pacing.

The hosted funcX service scaled by partitioning its Redis-backed task
state and running one forwarder per partition (journal paper §5).  This
module is that partitioning for the reproduction:

* :class:`ShardMap` — a consistent-hash ring placing *endpoints* on
  shards (so one endpoint's task and result queues live wholly on one
  shard and its forwarder drains exactly one partition), plus O(1)
  task-id routing: every task id minted by the facade carries a
  ``-s<shard>`` suffix, so status/result/ack paths jump straight to the
  owning shard without a directory lookup.
* :class:`ServiceShard` — one partition: its own lock, task table,
  per-endpoint :class:`~repro.store.queues.ReliableQueue` pair, its own
  :class:`~repro.core.stream.ResultStreamServer` delivery thread, and
  incrementally-maintained counters (open tasks, per-endpoint
  outstanding) so the hot paths that used to scan the global task table
  are O(1).
* :class:`_ShardPacer` — a virtual-time serial resource modeling the
  shard's backing store (Redis round trips).  Each shard has its own
  pacer, so N shards really do N store operations concurrently — the
  mechanism the shard-scale benchmark measures.

The facade (:class:`~repro.core.service.FuncXService`) owns every
policy decision (auth, validation, memoization, tracing, completion
semantics); a shard is pure partitioned state + accounting.
"""

from __future__ import annotations

import bisect
import threading
import time
import zlib
from typing import TYPE_CHECKING, Any, Callable

from repro.core.stream import DEFAULT_SPILL_THRESHOLD, ResultStreamServer
from repro.core.tasks import Task, TaskState
from repro.errors import TaskNotFound
from repro.store.queues import FairReliableQueue, ReliableQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.service import FuncXService

#: Virtual nodes per shard on the consistent-hash ring: enough to keep
#: endpoint placement within a few percent of even at small shard counts.
VNODES = 64

#: Separator between a task's uuid and its shard tag.  uuid4 hex never
#: contains ``s``, so scanning from the right is unambiguous.
_SHARD_TAG = "-s"


def _ring_hash(key: str) -> int:
    """Stable 32-bit hash (crc32): identical placement across runs and
    processes, unlike the salted builtin ``hash``."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class ShardMap:
    """Consistent-hash placement of endpoints (and untagged keys) on shards.

    Immutable after construction — the shard count is a deployment
    parameter, not a runtime elasticity axis, so no rebalancing or
    ring mutation is needed (or supported).
    """

    def __init__(self, shards: int, vnodes: int = VNODES):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.shards = shards
        points: list[tuple[int, int]] = []
        for index in range(shards):
            for vnode in range(vnodes):
                points.append((_ring_hash(f"shard-{index}:vn{vnode}"), index))
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_vals = [p[1] for p in points]

    def _lookup(self, key: str) -> int:
        if self.shards == 1:
            return 0
        position = bisect.bisect(self._ring_keys, _ring_hash(key))
        if position == len(self._ring_keys):
            position = 0  # wrap around the ring
        return self._ring_vals[position]

    def shard_for_endpoint(self, endpoint_id: str) -> int:
        """The shard owning an endpoint's queues (and all of its tasks)."""
        return self._lookup(endpoint_id)

    def shard_for_task(self, task_id: str) -> int:
        """O(1) route from a task id to its owning shard.

        Ids minted by the facade carry a ``-s<shard>`` suffix; foreign
        ids (hand-built tests, pre-shard artifacts) fall back to the
        ring, which is deterministic — an unknown id misses consistently
        on the same shard and surfaces as ``TaskNotFound``.
        """
        if self.shards == 1:
            return 0
        base, sep, suffix = task_id.rpartition(_SHARD_TAG)
        if sep and base and suffix.isdigit():
            index = int(suffix)
            if index < self.shards:
                return index
        return self._lookup(task_id)

    def tag(self, task_id: str, shard_index: int) -> str:
        """Embed the owning shard into a freshly-minted task id."""
        return f"{task_id}{_SHARD_TAG}{shard_index}"


class _ShardPacer:
    """A virtual-time serial resource: the shard's backing store.

    Each charged operation occupies the resource for ``op_cost``
    seconds; concurrent callers queue behind ``busy_until`` and sleep
    out their wait *outside* the pacer lock (the sleep models a store
    round trip, which releases the GIL).  One pacer per shard is what
    makes the sharded plane scale: four shards serve four store
    operations in the time one shard serves one.

    ``op_cost=0`` (the default) disables pacing entirely — production
    configs measure real store latency instead of modeling it.
    """

    # charge() races from the *multiple* shard-driver threads of the
    # scaling bench, which all classify as role "main"; the lock is
    # load-bearing even though role inference sees a single role.
    _GUARDED = {
        "_busy_until": "_lock",  # lint: ignore[threadroles]
    }

    def __init__(
        self,
        op_cost: float,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.op_cost = op_cost
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self._lock = threading.Lock()
        self._busy_until = 0.0

    def charge(self, ops: int = 1) -> None:
        """Occupy the resource for ``ops`` operations; blocks the caller
        (never the shard lock) until its operations would have finished."""
        if self.op_cost <= 0.0 or ops <= 0:
            return
        with self._lock:
            now = self._clock()
            start = max(now, self._busy_until)
            self._busy_until = start + ops * self.op_cost
            wait = self._busy_until - now
        if wait > 0:
            self._sleep(wait)


class ServiceShard:
    """One partition of the service plane's task state.

    Owns the task table, the per-endpoint queue pairs, an O(1)
    accounting block, and its own result-stream delivery thread.  All
    mutation goes through the facade, which routes by
    :class:`ShardMap`; the shard enforces nothing but its own
    bookkeeping invariant::

        open == received - terminated - forgotten_open

    emitted on every mutation as a ``shard.accounting`` probe event so
    the chaos layer can check it per-shard and across shards.
    """

    # Queue-map creation and drain/kill administration race from
    # multiple client/admin threads that all classify as role "main";
    # those locks are load-bearing even though role inference sees a
    # single role (the waived entries below).
    _GUARDED = {
        "_tasks": "_lock",
        "_task_queues": "_lock",  # lint: ignore[threadroles]
        "_result_queues": "_lock",  # lint: ignore[threadroles]
        "_outstanding": "_lock",
        "_received": "_lock",
        "_terminated": "_lock",
        "_forgotten_open": "_lock",
        "_open": "_lock",
    }

    def __init__(
        self,
        index: int,
        service: "FuncXService",
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
        op_cost: float = 0.0,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    ):
        self.index = index
        self.service = service
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.RLock()
        self._tasks: dict[str, Task] = {}
        self._task_queues: dict[str, ReliableQueue] = {}
        # Result-queue creation currently happens on one role, but the
        # map shares _lock with _tasks/_task_queues deliberately.
        self._result_queues: dict[str, ReliableQueue] = {}  # lint: ignore[threadroles]
        # O(1) accounting (satellite: the old tasks.open gauge and
        # outstanding_tasks() both scanned the full task table).
        self._received = 0
        self._terminated = 0
        self._forgotten_open = 0
        self._open = 0
        self._outstanding: dict[str, int] = {}  # endpoint_id -> open tasks
        # Submitting threads read this while chaos/admin threads flip
        # it; both classify as role "main", so the lock is load-bearing
        # even though role inference sees a single role.
        self.draining = False  # guarded-by: self._lock  # lint: ignore[threadroles]
        self.pacer = _ShardPacer(op_cost, clock=self._clock, sleeper=sleeper)
        # Per-shard push delivery: its own thread, named by shard so
        # thread-role inference and the runtime recorder agree.
        self.result_stream = ResultStreamServer(
            service, clock=self._clock, spill_threshold=spill_threshold,
            tag=str(index))
        metrics = service.metrics
        self._c_received = metrics.counter("shard.tasks_received",
                                           shard=str(index))
        self._c_terminated = metrics.counter("shard.tasks_terminated",
                                             shard=str(index))
        metrics.gauge("shard.open_tasks", shard=str(index)).set_function(
            self.open_tasks)

    # -- probe ---------------------------------------------------------------
    def _emit_accounting(self, event: str, **fields: Any) -> None:  # guarded-by: self._lock
        """Emit a ``shard.accounting`` snapshot (caller holds the lock)."""
        probe = self.service.probe
        if probe is None:
            return
        probe(
            "shard.accounting",
            {
                "shard": self.index,
                "cause": event,
                "received": self._received,
                "terminated": self._terminated,
                "forgotten_open": self._forgotten_open,
                "open": self._open,
                **fields,
            },
        )

    # -- task table ----------------------------------------------------------
    def insert_task(self, task: Task) -> None:
        with self._lock:
            self._tasks[task.task_id] = task
            self._received += 1
            self._open += 1
            self._outstanding[task.endpoint_id] = (
                self._outstanding.get(task.endpoint_id, 0) + 1)
            self._emit_accounting("insert", task_id=task.task_id)
        self._c_received.inc()

    def get_task(self, task_id: str) -> Task | None:
        with self._lock:
            return self._tasks.get(task_id)

    def pop_task(self, task_id: str) -> Task | None:
        """Remove a task record (forget path); fixes up open counters."""
        with self._lock:
            task = self._tasks.pop(task_id, None)
            if task is None:
                return None
            if not task.state.terminal:
                # Forgetting an open task removes it from the conserved
                # population — tracked separately so the accounting
                # identity still closes.
                self._forgotten_open += 1
                self._open -= 1
                self._dec_outstanding(task.endpoint_id)
            self._emit_accounting("forget", task_id=task_id)
            return task

    def note_terminal(self, task: Task) -> None:
        """Called exactly once per task, when it first reaches a
        terminal state (complete / fail / cancel)."""
        with self._lock:
            if task.task_id not in self._tasks:
                return  # forgotten while completing; already accounted
            self._terminated += 1
            self._open -= 1
            self._dec_outstanding(task.endpoint_id)
            self._emit_accounting("terminal", task_id=task.task_id)
        self._c_terminated.inc()

    def _dec_outstanding(self, endpoint_id: str) -> None:  # guarded-by: self._lock
        count = self._outstanding.get(endpoint_id, 0) - 1
        if count > 0:
            self._outstanding[endpoint_id] = count
        else:
            self._outstanding.pop(endpoint_id, None)

    def iter_tasks(self) -> list[Task]:
        with self._lock:
            return list(self._tasks.values())

    # -- O(1) accounting reads ----------------------------------------------
    def open_tasks(self) -> int:
        with self._lock:
            return self._open

    def outstanding(self, endpoint_id: str) -> int:
        with self._lock:
            return self._outstanding.get(endpoint_id, 0)

    def counters(self) -> dict[str, int]:
        """Accounting snapshot (cross-shard conservation checks)."""
        with self._lock:
            return {
                "received": self._received,
                "terminated": self._terminated,
                "forgotten_open": self._forgotten_open,
                "open": self._open,
            }

    # -- endpoint queues ------------------------------------------------------
    def add_endpoint(
        self,
        endpoint_id: str,
        weight_for: Callable[[str], float] | None = None,
    ) -> None:
        """Allocate the endpoint's queue pair on this shard.

        The task queue is lane-fair: submissions are tagged with the
        tenant id and dequeued deficit-round-robin so one tenant cannot
        monopolize a shared endpoint.
        """
        with self._lock:
            self._task_queues[endpoint_id] = FairReliableQueue(
                name=f"tasks:{endpoint_id}", clock=self._clock,
                weight_for=weight_for)
            self._result_queues[endpoint_id] = ReliableQueue(
                name=f"results:{endpoint_id}", clock=self._clock)

    def task_queue(self, endpoint_id: str) -> ReliableQueue:
        with self._lock:
            queue = self._task_queues.get(endpoint_id)
        if queue is None:
            raise TaskNotFound(f"task queue for endpoint {endpoint_id}")
        return queue

    def result_queue(self, endpoint_id: str) -> ReliableQueue:
        with self._lock:
            return self._result_queues[endpoint_id]

    def endpoint_ids(self) -> list[str]:
        with self._lock:
            return list(self._task_queues)

    # -- lifecycle ------------------------------------------------------------
    def drain(self) -> None:
        """Refuse new submissions; in-flight work keeps dispatching."""
        with self._lock:
            self.draining = True

    def kill(self) -> int:
        """Chaos entry: drain, then yank every outstanding queue lease.

        Models the shard process dying: forwarder leases vanish (their
        later acks are rejected harmlessly) and the ready backlog
        survives in the partition's durable queues.  Returns the number
        of leases yanked.
        """
        with self._lock:
            self.draining = True
            queues = list(self._task_queues.values()) + list(
                self._result_queues.values())
        yanked = 0
        for queue in queues:
            yanked += queue.nack_all()
        # The yanked task-queue entries go back to the ready backlog, so
        # any task caught mid-dispatch must roll back to QUEUED — a
        # redelivering forwarder re-marks dispatch, and DISPATCHED ->
        # DISPATCHED is an illegal transition.
        now = self._clock()
        with self._lock:
            in_flight = [task for task in self._tasks.values()
                         if task.state in (TaskState.DISPATCHED,
                                           TaskState.RUNNING)]
        for task in in_flight:
            task.advance(TaskState.QUEUED, now)
            task.metadata.setdefault("requeue_reasons", []).append(
                f"shard-{self.index}-killed")
        return yanked

    def restart(self) -> None:
        """Chaos exit: accept submissions again and wake consumers."""
        with self._lock:
            self.draining = False
            queues = list(self._task_queues.values())
        for queue in queues:
            # Consumers may have gone idle while the shard was down.
            queue._fire_wakeup()

    def close(self) -> None:
        self.result_stream.close()
