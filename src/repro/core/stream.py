"""Push-based result delivery: the service-side subscription channel.

The paper-era SDK retrieves results by polling ``GET /tasks/<id>`` — the
journal follow-up (funcX: Federated Function *as a Service* for Science)
replaced that with a subscription stream the ``FuncXExecutor`` resolves
futures from.  This module is the service side of that stream:

* A client opens a :class:`ResultSubscription` and *watches* task ids.
  When a watched task reaches a terminal state the id is enqueued on the
  subscription's own :class:`~repro.store.queues.ReliableQueue` — the
  same lease/ack machinery the dispatch path uses, so delivery is
  at-least-once and a dropped batch is redelivered without bookkeeping
  of its own.
* A single delivery thread (woken by queue puts, acks, and attaches via
  the shared :class:`~repro.transport.wakeup.Wakeup`) coalesces every
  subscriber's ready results into one
  :class:`~repro.transport.messages.ResultBatchMessage` per pass.
* Each subscription carries a :class:`~repro.core.flowcontrol.
  CreditLedger` window: a credit is consumed per delivered-unacked
  result and released on the client's ack, so a slow or stalled client
  bounds its own delivered-unacked population at the window while the
  backlog sheds into the subscription queue (observable, bounded by the
  number of watched tasks) instead of ballooning delivery buffers.
* Results at or above ``spill_threshold`` bytes are spilled to a
  ``repro.staging`` store and delivered as a ``DataRef`` record, so one
  huge payload cannot head-of-line-block a batch; the spilled object is
  deleted when the batch is acked.

Consumers are plain callables (in-process stand-ins for a client's
WebSocket); one that raises is detached and its batch is nacked for
redelivery after a reconnect — exactly the disconnect path.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from typing import TYPE_CHECKING, Any, Callable

from repro.core.flowcontrol import CreditLedger
from repro.core.tasks import TaskState
from repro.errors import TaskNotFound
from repro.metrics.registry import COUNT_BUCKETS
from repro.staging.transfer import DataStore, register_store, unregister_store
from repro.store.queues import Lease, ReliableQueue
from repro.transport.messages import ResultBatchMessage, ResultMessage
from repro.transport.wakeup import Wakeup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.service import FuncXService
    from repro.core.tasks import Task

logger = logging.getLogger(__name__)

#: Result payloads at or above this size (bytes) ship as staged DataRefs
#: instead of in-band buffers.
DEFAULT_SPILL_THRESHOLD = 64 * 1024

#: Default per-subscriber credit window (delivered-unacked results).
DEFAULT_WINDOW = 64

#: Hard cap on results coalesced into one ResultBatchMessage.
MAX_BATCH = 256

Consumer = Callable[[ResultBatchMessage], None]


class ResultSubscription:
    """One client's result stream: watched tasks, ready queue, credits."""

    def __init__(
        self,
        server: "ResultStreamServer",
        subscriber_id: str,
        window: int,
        clock: Callable[[], float],
    ):
        self.subscriber_id = subscriber_id
        self.window = window
        self._server = server
        #: Delivered-unacked budget; consumed per result on delivery,
        #: released on ack (or nack/recover).
        self.credits = CreditLedger(granted=window)
        #: Ready-to-deliver task ids; at-least-once via lease/ack.
        self.queue = ReliableQueue(
            name=f"stream:{subscriber_id}", clock=clock)
        self._lock = threading.Lock()
        self._watched: set[str] = set()              # guarded-by: self._lock
        # watch()/offer() race from multiple client/shard threads that
        # all classify as role "main"; the lock is load-bearing even
        # though role inference sees a single role.
        self._enqueued: set[str] = set()             # guarded-by: self._lock  # lint: ignore[threadroles]
        self._consumer: Consumer | None = None       # guarded-by: self._lock
        self._unacked: dict[str, list[Lease]] = {}   # guarded-by: self._lock
        self._closed = False                         # guarded-by: self._lock

    # -- client side ---------------------------------------------------------
    def watch(self, task_id: str) -> None:
        """Register interest in ``task_id``; delivery follows completion.

        Watching an already-terminal task (memo hits complete before the
        watch lands) enqueues it immediately.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    f"subscription {self.subscriber_id} is closed")
            self._watched.add(task_id)
        self._server.register_interest(self, task_id)

    def attach(self, consumer: Consumer) -> None:
        """Connect the client's delivery callback (or reconnect it)."""
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    f"subscription {self.subscriber_id} is closed")
            self._consumer = consumer
        self._server.kick()

    def detach(self) -> None:
        """Disconnect the consumer; delivery pauses, backlog accumulates."""
        with self._lock:
            self._consumer = None

    @property
    def consumer(self) -> Consumer | None:
        with self._lock:
            return self._consumer

    def ack(self, delivery_id: str) -> int:
        """Acknowledge a delivered batch; returns results retired.

        Retires the queue leases, releases the batch's credits (opening
        the window for the next wave) and deletes any payloads spilled
        for the batch.
        """
        with self._lock:
            leases = self._unacked.pop(delivery_id, None)
        if leases is None:
            return 0
        for lease in leases:
            self.queue.ack(lease.lease_id)
            self._server.drop_spill(self.subscriber_id, lease.item)
        self.credits.release(len(leases))
        self._server.kick()
        return len(leases)

    def recover(self) -> int:
        """Requeue every delivered-unacked batch (reconnect path).

        A client that lost batches in flight calls this after
        re-attaching; the results redeliver under fresh delivery ids.
        Returns the number of results requeued.
        """
        with self._lock:
            unacked = list(self._unacked.values())
            self._unacked.clear()
        count = 0
        for leases in unacked:
            for lease in leases:
                self.queue.nack(lease.lease_id)
                # The redelivery re-spills from the task record; keeping
                # the old object would leak it if the client never asks.
                self._server.drop_spill(self.subscriber_id, lease.item)
                count += 1
            self.credits.release(len(leases))
        if count:
            self._server.kick()
        return count

    # -- server side ---------------------------------------------------------
    def task_ready(self, task_id: str) -> None:
        """A watched task reached a terminal state; enqueue once."""
        with self._lock:
            if self._closed or task_id not in self._watched:
                return
            if task_id in self._enqueued:
                return
            self._enqueued.add(task_id)
        self.queue.put(task_id)

    def note_delivered(self, delivery_id: str, leases: list[Lease]) -> None:
        """Record an in-flight batch awaiting the client's ack."""
        with self._lock:
            self._unacked[delivery_id] = leases

    def recover_delivery(self, delivery_id: str) -> int:
        """Requeue one delivered batch (consumer raised mid-delivery).

        The erroring-consumer detach path: credits come back to the
        window and any payload spilled for the batch is deleted — the
        redelivery re-spills from the task record, so an undelivered
        DataRef must not outlive its batch.
        """
        with self._lock:
            leases = self._unacked.pop(delivery_id, None)
        if leases is None:
            return 0
        for lease in leases:
            self.queue.nack(lease.lease_id)
            self._server.drop_spill(self.subscriber_id, lease.item)
        self.credits.release(len(leases))
        return len(leases)

    # -- introspection -------------------------------------------------------
    @property
    def unacked_results(self) -> int:
        """Delivered-unacked results (bounded by ``window``)."""
        with self._lock:
            return sum(len(leases) for leases in self._unacked.values())

    @property
    def backlog(self) -> int:
        """Ready-but-undelivered results shed into the queue."""
        return self.queue.depth

    @property
    def watched(self) -> int:
        with self._lock:
            return len(self._watched)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._consumer = None
            unacked = list(self._unacked.values())
            self._unacked.clear()
        # Delivered-unacked batches die with the subscription: give their
        # credits back (balanced books for the protocol sanitizer) and
        # delete their spilled payloads — nobody can ack them now.
        for leases in unacked:
            for lease in leases:
                self._server.drop_spill(self.subscriber_id, lease.item)
            self.credits.release(len(leases))
        self.queue.close()
        self._server.forget(self)


class ResultStreamServer:
    """Streams ResultBatchMessages to subscribed clients, credit-bounded.

    Owned by the :class:`~repro.core.service.FuncXService`; the service
    notifies :meth:`on_task_terminal` from its completion path.  The
    delivery thread starts lazily with the first subscription and is
    shut down by :meth:`close` (wired into the deployment's shutdown).
    """

    def __init__(
        self,
        service: "FuncXService",
        clock: Callable[[], float] | None = None,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        poll_fallback: float = 0.05,
        tag: str = "0",
    ):
        self.service = service
        # Shard tag: distinguishes the per-shard delivery threads and
        # metrics when the service plane runs more than one shard.
        self.tag = tag
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self.spill_threshold = spill_threshold
        self._poll_fallback = poll_fallback
        self._wakeup = Wakeup(clock=self._clock)
        self._lock = threading.Lock()
        self._subs: dict[str, ResultSubscription] = {}  # guarded-by: self._lock
        # subscribe()/unsubscribe() race from multiple client threads
        # that all classify as role "main" (same story as _thread below).
        self._interest: dict[str, set[str]] = {}        # guarded-by: self._lock  # lint: ignore[threadroles]
        # subscribe()/close() race from *multiple* client threads that
        # all classify as role "main"; the lock is load-bearing even
        # though role inference sees a single role.
        self._thread: threading.Thread | None = None    # guarded-by: self._lock  # lint: ignore[threadroles]
        self._closed = False                            # guarded-by: self._lock  # lint: ignore[threadroles]
        self._stop = threading.Event()
        # Spill store for oversized payloads; uniquely named so parallel
        # deployments in one process never collide in the global registry.
        self.spill = DataStore(f"result-spill-{uuid.uuid4().hex[:8]}")
        register_store(self.spill)
        metrics = service.metrics
        self._h_batch = metrics.histogram(
            "stream.batch_size", buckets=COUNT_BUCKETS)
        self._h_delivery = metrics.histogram("stream.delivery_seconds")
        self._c_delivered = metrics.counter("stream.results_delivered")
        self._c_batches = metrics.counter("stream.batches_delivered")
        self._c_spilled = metrics.counter("stream.results_spilled")
        self._c_redelivered = metrics.counter("stream.redeliveries")
        self._c_consumer_errors = metrics.counter("stream.consumer_errors")
        self._c_credit_stalls = metrics.counter("stream.credit_stalls")
        metrics.gauge("stream.subscriptions", shard=self.tag).set_function(
            self.subscription_count)

    # -- subscriptions -------------------------------------------------------
    def subscribe(
        self,
        window: int = DEFAULT_WINDOW,
        subscriber_id: str | None = None,
        auto_deliver: bool = True,
    ) -> ResultSubscription:
        """Open a subscription with a ``window``-result credit budget.

        ``auto_deliver=False`` skips the delivery thread; the caller
        drives :meth:`step` explicitly (deterministic tests).
        """
        if window < 1:
            raise ValueError("window must be positive")
        sub = ResultSubscription(
            self, subscriber_id or uuid.uuid4().hex[:12], window, self._clock)
        sub.queue.wakeup = self._wakeup.set
        with self._lock:
            if self._closed:
                raise RuntimeError("result stream is closed")
            self._subs[sub.subscriber_id] = sub
        if auto_deliver:
            self._ensure_thread()
        return sub

    def forget(self, sub: ResultSubscription) -> None:
        """Drop a closed subscription and its interest entries."""
        with self._lock:
            self._subs.pop(sub.subscriber_id, None)
            for watchers in self._interest.values():
                watchers.discard(sub.subscriber_id)

    def register_interest(self, sub: ResultSubscription, task_id: str) -> None:
        """Bind ``task_id`` to ``sub``; fast-path already-terminal tasks."""
        with self._lock:
            self._interest.setdefault(task_id, set()).add(sub.subscriber_id)
        try:
            task = self.service.task_by_id(task_id)
        except TaskNotFound:
            return
        if task.state.terminal:
            sub.task_ready(task_id)

    def subscription_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def kick(self) -> None:
        """Wake the delivery thread (ack freed credits, new consumer)."""
        self._wakeup.set()

    # -- service side --------------------------------------------------------
    def on_task_terminal(self, task: "Task") -> None:
        """Completion-path hook: fan the terminal task to its watchers."""
        with self._lock:
            watcher_ids = self._interest.pop(task.task_id, None)
            if not watcher_ids:
                return
            watchers = [
                self._subs[sid] for sid in watcher_ids if sid in self._subs
            ]
        for sub in watchers:
            sub.task_ready(task.task_id)

    # -- delivery ------------------------------------------------------------
    def step(self) -> int:
        """One delivery pass over every subscription; returns results sent."""
        with self._lock:
            subs = list(self._subs.values())
        total = 0
        for sub in subs:
            total += self._deliver(sub)
        return total

    def _deliver(self, sub: ResultSubscription) -> int:
        consumer = sub.consumer
        if consumer is None:
            return 0
        budget = min(sub.credits.available, MAX_BATCH)
        if budget <= 0:
            if sub.backlog > 0:
                self._c_credit_stalls.inc()
            return 0
        leases = sub.queue.lease_many(budget)
        if not leases:
            return 0
        now = self._clock()
        results: list[ResultMessage] = []
        kept: list[Lease] = []
        for lease in leases:
            message = self._result_message(sub, lease, now)
            if message is None:
                # Task record vanished (forgotten); nothing to deliver.
                sub.queue.ack(lease.lease_id)
                continue
            if lease.deliveries > 1:
                self._c_redelivered.inc()
            results.append(message)
            kept.append(lease)
        if not results:
            return 0
        sub.credits.consume(len(kept))
        delivery_id = uuid.uuid4().hex
        batch = ResultBatchMessage(
            sender="result-stream",
            results=tuple(results),
            delivery_id=delivery_id,
            subscriber_id=sub.subscriber_id,
        )
        sub.note_delivered(delivery_id, kept)
        self._h_batch.observe(float(len(results)))
        try:
            consumer(batch)
        except Exception:
            # Treat an erroring consumer as disconnected: detach it and
            # requeue the batch for redelivery after a reconnect.
            self._c_consumer_errors.inc()
            logger.exception(
                "result-stream consumer failed; detaching subscriber %s",
                sub.subscriber_id)
            sub.detach()
            sub.recover_delivery(delivery_id)
            return 0
        self._c_batches.inc()
        self._c_delivered.inc(len(results))
        for message in results:
            elapsed = max(0.0, now - message.completed_at)
            self._h_delivery.observe(elapsed)
            trace = self.service.traces.context_for(message.task_id)
            if trace is not None:
                trace.record_late(
                    "result_stream", "service",
                    start=message.completed_at, end=now,
                    subscriber=sub.subscriber_id)
        return len(results)

    def _result_message(
        self, sub: ResultSubscription, lease: Lease, now: float
    ) -> ResultMessage | None:
        task_id = lease.item
        try:
            task = self.service.task_by_id(task_id)
        except TaskNotFound:
            return None
        if not task.state.terminal:  # defensive; only terminal ids enqueue
            return None
        buffer = task.result_buffer or b""
        ref: dict | None = None
        if len(buffer) >= self.spill_threshold:
            data_ref = self.spill.put(
                buffer, key=f"{sub.subscriber_id}:{task_id}")
            ref = data_ref.as_argument()
            buffer = b""
            self._c_spilled.inc()
        return ResultMessage(
            sender="result-stream",
            task_id=task_id,
            success=task.state is TaskState.SUCCESS,
            result_buffer=buffer,
            execution_time=float(task.metadata.get("execution_time", 0.0)),
            completed_at=task.state_times.get(task.state.value, now),
            result_ref=ref,
            cancelled=task.state is TaskState.CANCELLED,
            exception_text=task.exception_text or "",
        )

    def drop_spill(self, subscriber_id: str, task_id: str) -> None:
        """Delete a spilled payload once its batch is acked."""
        self.spill.delete(f"{subscriber_id}:{task_id}")

    # -- delivery thread -----------------------------------------------------
    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is not None or self._closed:
                return
            thread = threading.Thread(
                target=self._loop, name=f"result-stream-{self.tag}",
                daemon=True)
            self._thread = thread
        thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.step() == 0:
                self._wakeup.wait(self._poll_fallback)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            subs = list(self._subs.values())
            self._subs.clear()
            self._interest.clear()
        self._stop.set()
        self._wakeup.set()
        if thread is not None:
            thread.join(timeout=5.0)
        for sub in subs:
            sub.queue.close()
        unregister_store(self.spill.name)


# ======================================================================
# sharded delivery: one stream server per shard, one logical subscription
# ======================================================================
class RoutedSubscription:
    """A logical subscription spanning every shard's stream server.

    The executor and SDK talk to one subscription object; under a
    sharded service plane each shard runs its own delivery thread, so
    this wrapper opens one real :class:`ResultSubscription` per shard
    and routes:

    * ``watch`` — to the shard owning the task (the shard map keys on
      the task id).
    * ``ack`` — back to the shard that delivered the batch, recorded
      when the batch passed through the wrapped consumer.
    * ``attach``/``detach``/``recover``/``close`` — fanned out.

    Each per-shard leg carries the full credit ``window`` — the window
    bounds delivered-unacked results *per shard*, which keeps credit
    accounting local to a shard (no cross-shard credit transfers on the
    delivery hot path).
    """

    # subscribe()/route() race from multiple client/shard threads that
    # all classify as role "main"; the lock is load-bearing even though
    # role inference sees a single role.
    _GUARDED = {
        "_origins": "_lock",  # lint: ignore[threadroles]
    }

    def __init__(
        self,
        service: "FuncXService",
        window: int = DEFAULT_WINDOW,
        subscriber_id: str | None = None,
        auto_deliver: bool = True,
    ):
        self._service = service
        self.subscriber_id = subscriber_id or uuid.uuid4().hex[:12]
        self.window = window
        self._lock = threading.Lock()
        # delivery_id -> the per-shard leg that produced the batch
        self._origins: dict[str, ResultSubscription] = {}
        self._legs: list[ResultSubscription] = [
            shard.result_stream.subscribe(
                window=window,
                subscriber_id=f"{self.subscriber_id}:s{shard.index}",
                auto_deliver=auto_deliver,
            )
            for shard in service.shards
        ]

    def _leg_for_task(self, task_id: str) -> ResultSubscription:
        return self._legs[self._service.shard_map.shard_for_task(task_id)]

    # -- client surface (mirrors ResultSubscription) ---------------------
    def watch(self, task_id: str) -> None:
        self._leg_for_task(task_id).watch(task_id)

    def attach(self, consumer: Consumer) -> None:
        for leg in self._legs:
            leg.attach(self._wrap(leg, consumer))

    def _wrap(self, leg: ResultSubscription, consumer: Consumer) -> Consumer:
        def routed(batch: ResultBatchMessage) -> None:
            # Record the origin *before* handing the batch over: the
            # consumer (executor callback) may ack from its own thread
            # immediately.
            with self._lock:
                self._origins[batch.delivery_id] = leg
            try:
                consumer(batch)
            except BaseException:
                with self._lock:
                    self._origins.pop(batch.delivery_id, None)
                raise
        return routed

    def detach(self) -> None:
        for leg in self._legs:
            leg.detach()

    def ack(self, delivery_id: str) -> None:
        with self._lock:
            leg = self._origins.pop(delivery_id, None)
        if leg is None:
            # Unknown delivery (already acked, or recovered after a
            # detach): every leg rejects unknown ids harmlessly.
            for candidate in self._legs:
                candidate.ack(delivery_id)
            return
        leg.ack(delivery_id)

    def recover(self) -> None:
        with self._lock:
            self._origins.clear()
        for leg in self._legs:
            leg.recover()

    # -- introspection ---------------------------------------------------
    @property
    def watched(self) -> int:
        return sum(leg.watched for leg in self._legs)

    @property
    def backlog(self) -> int:
        return sum(leg.backlog for leg in self._legs)

    @property
    def unacked_results(self) -> int:
        return sum(leg.unacked_results for leg in self._legs)

    def close(self) -> None:
        with self._lock:
            self._origins.clear()
        for leg in self._legs:
            leg.close()


class ResultStreamRouter:
    """Facade-level stream entry point for a sharded service plane.

    ``FuncXService.result_stream`` returns the single shard's real
    :class:`ResultStreamServer` when ``shards == 1`` (full back-compat,
    including the test-facing ``step()``/``spill`` surface) and this
    router otherwise.  The router only *opens* subscriptions — terminal
    fan-out happens shard-locally via each shard's own server.
    """

    def __init__(self, service: "FuncXService"):
        self._service = service

    def subscribe(
        self,
        window: int = DEFAULT_WINDOW,
        subscriber_id: str | None = None,
        auto_deliver: bool = True,
    ) -> RoutedSubscription:
        if window < 1:
            raise ValueError("window must be positive")
        return RoutedSubscription(
            self._service, window=window, subscriber_id=subscriber_id,
            auto_deliver=auto_deliver)

    def subscription_count(self) -> int:
        return sum(
            shard.result_stream.subscription_count()
            for shard in self._service.shards)

    def step(self) -> int:
        """Drive one delivery pass on every shard (deterministic tests)."""
        return sum(
            shard.result_stream.step() for shard in self._service.shards)

    def kick(self) -> None:
        for shard in self._service.shards:
            shard.result_stream.kick()

    def close(self) -> None:
        for shard in self._service.shards:
            shard.result_stream.close()
