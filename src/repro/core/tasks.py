"""Task model and lifecycle (paper figure 3).

A *task* is one invocation of a registered function.  Its path is:

1. received by the web service and stored (Redis hashset substitute);
2. queued on the target endpoint's task queue;
3. dispatched by the forwarder to the connected agent;
4. executed in a container by a worker;
5. result returned through the forwarder;
6. result stored for retrieval (then purged).

State timestamps are recorded at each hop so the latency-breakdown
experiment (figure 4) can attribute time to ts/tf/te/tw stages.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class TaskState(str, Enum):
    """Task lifecycle states, ordered by progress."""

    RECEIVED = "received"      # accepted by the web service
    QUEUED = "queued"          # sitting in the endpoint's Redis task queue
    DISPATCHED = "dispatched"  # sent by the forwarder to the agent
    RUNNING = "running"        # executing on a worker
    SUCCESS = "success"        # result available
    FAILED = "failed"          # function raised or task lost permanently
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (TaskState.SUCCESS, TaskState.FAILED, TaskState.CANCELLED)


#: Legal state transitions.  Redelivery after failure re-enters QUEUED.
_TRANSITIONS: dict[TaskState, frozenset[TaskState]] = {
    TaskState.RECEIVED: frozenset({TaskState.QUEUED, TaskState.SUCCESS,
                                   TaskState.FAILED, TaskState.CANCELLED}),
    TaskState.QUEUED: frozenset({TaskState.DISPATCHED, TaskState.CANCELLED,
                                 TaskState.FAILED}),
    TaskState.DISPATCHED: frozenset({TaskState.RUNNING, TaskState.QUEUED,
                                     TaskState.SUCCESS, TaskState.FAILED,
                                     TaskState.CANCELLED}),
    TaskState.RUNNING: frozenset({TaskState.SUCCESS, TaskState.FAILED,
                                  TaskState.QUEUED, TaskState.CANCELLED}),
    TaskState.SUCCESS: frozenset(),
    TaskState.FAILED: frozenset(),
    TaskState.CANCELLED: frozenset(),
}


@dataclass
class Task:
    """One function invocation and its full audit trail.

    Attributes
    ----------
    function_id, endpoint_id:
        What to run and where.
    payload_buffer:
        Serialized ``(args, kwargs)`` routed buffer.
    container_image:
        Container key required by the function, or ``None`` for bare.
    owner_id:
        Identity that submitted the task (execution-history tracking,
        paper §4.8).
    max_retries:
        Re-execution budget when workers/managers are lost ("lost tasks
        can be re-executed (if permitted)", §4.3).
    """

    function_id: str
    endpoint_id: str
    payload_buffer: bytes = b""
    container_image: str | None = None
    owner_id: str = ""
    task_id: str = field(default_factory=lambda: str(uuid.uuid4()))
    state: TaskState = TaskState.RECEIVED
    max_retries: int = 1
    attempts: int = 0
    result_buffer: bytes | None = None
    exception_text: str | None = None
    memo_hit: bool = False
    state_times: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def advance(self, new_state: TaskState, now: float) -> None:
        """Transition to ``new_state``, enforcing lifecycle legality."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal task transition {self.state.value} -> {new_state.value} "
                f"for task {self.task_id}"
            )
        # Queue-transfer handoff: a task record is owned by exactly one
        # pipeline stage at a time; the ReliableQueue lease that moves it
        # between stages provides the happens-before edge for this write.
        self.state = new_state  # handoff
        # Record *first* entry per state except QUEUED (redelivery re-queues;
        # keep every queue entry time in the audit list).
        key = new_state.value
        if new_state is TaskState.QUEUED:
            self.metadata.setdefault("queued_times", []).append(now)
        self.state_times.setdefault(key, now)
        self.state_times[f"last_{key}"] = now

    def stage_time(self, state: TaskState) -> float | None:
        return self.state_times.get(state.value)

    # -- derived latencies (figure 4 decomposition) -------------------------
    def total_latency(self) -> float | None:
        """End-to-end time from reception to terminal state."""
        start = self.state_times.get(TaskState.RECEIVED.value)
        end = None
        for terminal in (TaskState.SUCCESS, TaskState.FAILED, TaskState.CANCELLED):
            end = self.state_times.get(terminal.value)
            if end is not None:
                break
        if start is None or end is None:
            return None
        return end - start

    def breakdown(self) -> dict[str, float]:
        """Stage durations keyed ts/tf/te/tw where measurable.

        ts — service time (received → queued);
        tf — forwarder time (queued → dispatched);
        te — endpoint time excluding execution (dispatched → running,
             plus result return recorded by the forwarder);
        tw — worker execution time (running → terminal).
        """
        times = self.state_times
        out: dict[str, float] = {}

        def span(a: str, b: str) -> float | None:
            if a in times and b in times:
                return times[b] - times[a]
            return None

        ts = span(TaskState.RECEIVED.value, TaskState.QUEUED.value)
        tf = span(TaskState.QUEUED.value, TaskState.DISPATCHED.value)
        te = span(TaskState.DISPATCHED.value, TaskState.RUNNING.value)
        tw = span(TaskState.RUNNING.value, TaskState.SUCCESS.value)
        if ts is not None:
            out["ts"] = ts
        if tf is not None:
            out["tf"] = tf
        if te is not None:
            out["te"] = te + self.metadata.get("result_return_time", 0.0)
        if tw is not None:
            out["tw"] = tw
        return out

    @property
    def retries_remaining(self) -> int:
        return max(0, self.max_retries - max(0, self.attempts - 1))

    def to_record(self) -> dict[str, Any]:
        """Flat dict stored in the service's task hashset."""
        return {
            "task_id": self.task_id,
            "function_id": self.function_id,
            "endpoint_id": self.endpoint_id,
            "owner_id": self.owner_id,
            "state": self.state.value,
            "container_image": self.container_image,
            "attempts": self.attempts,
            "memo_hit": self.memo_hit,
            "exception": self.exception_text,
            "state_times": dict(self.state_times),
        }
