"""The funcX endpoint (paper section 4.3): agent, managers, workers.

* :class:`~repro.endpoint.agent.FuncXAgent` — the persistent process on a
  login node: queues and forwards tasks/results, provisions resources,
  load-balances across managers, watches for failures.
* :class:`~repro.endpoint.manager.Manager` — one per compute node:
  deploys and feeds a set of workers, advertises capacity, batches
  requests.
* :class:`~repro.endpoint.worker.Worker` — executes one task at a time
  inside a container.
* :mod:`~repro.endpoint.scheduling` — the agent's manager-selection
  policies (randomized greedy with container affinity, plus ablations).
"""

from repro.endpoint.config import EndpointConfig
from repro.endpoint.scheduling import (
    FirstFitScheduler,
    ManagerView,
    RandomizedScheduler,
    ResourceAwareScheduler,
    RoundRobinScheduler,
    scheduler_by_name,
)
from repro.endpoint.worker import Worker, execute_task_message
from repro.endpoint.manager import Manager
from repro.endpoint.agent import FuncXAgent
from repro.endpoint.endpoint import Endpoint

__all__ = [
    "EndpointConfig",
    "Worker",
    "execute_task_message",
    "Manager",
    "FuncXAgent",
    "Endpoint",
    "ManagerView",
    "RandomizedScheduler",
    "RoundRobinScheduler",
    "FirstFitScheduler",
    "ResourceAwareScheduler",
    "scheduler_by_name",
    "ElasticityController",
]

from repro.endpoint.elasticity import ElasticityController  # noqa: E402
