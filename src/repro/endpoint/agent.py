"""The funcX agent (interchange): the endpoint's persistent brain (§4.3).

"The funcX agent is a software agent that is deployed by a user on a
compute resource ... It registers with the funcX service and acts as a
conduit for routing tasks and results between the service and workers."

Responsibilities implemented here:

* register with the forwarder and heartbeat to it;
* queue tasks arriving from the forwarder;
* route tasks to managers via the pluggable scheduling policy
  (randomized greedy with container affinity by default);
* track distributed tasks and *re-execute* those lost to manager
  failures (watchdog + heartbeat detection);
* forward results back to the forwarder;
* scale managers through a provider (suspend/shutdown hooks).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Callable

from repro.endpoint.config import EndpointConfig
from repro.endpoint.scheduling import ManagerView, SchedulingPolicy, scheduler_by_name
from repro.metrics.registry import COUNT_BUCKETS, MetricsRegistry
from repro.serialize import FuncXSerializer
from repro.serialize.traceback import RemoteExceptionWrapper
from repro.transport.channel import ChannelEnd
from repro.transport.heartbeat import HeartbeatTracker
from repro.transport.messages import (
    Advertisement,
    CommandMessage,
    Heartbeat,
    Registration,
    ResultBatchMessage,
    ResultMessage,
    TaskBatchMessage,
    TaskMessage,
)
from repro.transport.wakeup import Wakeup


class FuncXAgent:
    """The endpoint-side interchange.

    Parameters
    ----------
    endpoint_id:
        The registered endpoint this agent serves.
    forwarder_channel:
        Agent side of the channel to the service's forwarder.
    config:
        Endpoint configuration.
    scheduler:
        Manager-selection policy; defaults to the configured policy name.
    metrics:
        The deployment's shared metrics registry (a private one is
        created when not provided).
    """

    # Shared mutable state: touched by the agent loop, manager receive
    # paths, and chaos hooks.  Enforced by `repro lint` (guarded-by).
    _GUARDED = {
        "_manager_channels": "_lock",
        "_views": "_lock",
        "_suspended": "_lock",
        "_pending": "_lock",
        "_assigned": "_lock",
        "_buffers": "_lock",
        "_manager_shipped": "_lock",
    }

    #: Per-step bound on messages drained from any one channel so a
    #: flooded link cannot starve heartbeats and the watchdog.
    MAX_DRAIN = 256

    def __init__(
        self,
        endpoint_id: str,
        forwarder_channel: ChannelEnd,
        config: EndpointConfig | None = None,
        scheduler: SchedulingPolicy | None = None,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.endpoint_id = endpoint_id
        self.forwarder = forwarder_channel
        self.config = config or EndpointConfig()
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.scheduler = scheduler or scheduler_by_name(
            self.config.scheduler_policy, seed=self.config.seed
        )
        self.heartbeats = HeartbeatTracker(
            period=self.config.heartbeat_period,
            grace_periods=self.config.heartbeat_grace,
            clock=self._clock,
        )
        self._manager_channels: dict[str, ChannelEnd] = {}
        self._views: dict[str, ManagerView] = {}
        self._suspended: set[str] = set()
        self._pending: deque[TaskMessage] = deque()
        # task_id -> (manager_id, message, agent-side attempt count)
        self._assigned: dict[str, tuple[str, TaskMessage, int]] = {}
        # Function-buffer table: bodies arrive once per batch (or attached
        # to legacy per-message tasks) and are reattached on dispatch.
        self._buffers: dict[str, bytes] = {}
        # Per-manager record of which buffer version (digest) each manager
        # already holds; reset when the manager (re-)registers.
        self._manager_shipped: dict[str, dict[str, int]] = {}
        self._lock = threading.RLock()
        self._wakeup = Wakeup(clock=self._clock)
        if self.config.event_driven:
            forwarder_channel.wakeup = self._wakeup.set_at
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # register_with_forwarder() touches these before the loop thread
        # exists (publish-before-start); afterwards only the loop does.
        self._last_heartbeat = -float("inf")  # thread-confined: agent-loop
        self._serializer = FuncXSerializer()
        # counters live in the shared registry, labelled by endpoint
        self.metrics = metrics or MetricsRegistry(clock=self._clock)
        self._c_received = self.metrics.counter(
            "agent.tasks_received", endpoint=endpoint_id)
        self._c_dispatched = self.metrics.counter(
            "agent.tasks_dispatched", endpoint=endpoint_id)
        self._c_results = self.metrics.counter(
            "agent.results_forwarded", endpoint=endpoint_id)
        self._c_reexecuted = self.metrics.counter(
            "agent.tasks_reexecuted", endpoint=endpoint_id)
        self._c_buffer_miss = self.metrics.counter(
            "agent.buffer_misses", endpoint=endpoint_id)
        self._c_coalesced = self.metrics.counter(
            "channel.coalesced_messages", component="agent", endpoint=endpoint_id)
        self._h_dispatch_batch = self.metrics.histogram(
            "dispatch.batch_size", buckets=COUNT_BUCKETS,
            component="agent", endpoint=endpoint_id)
        self._h_result_batch = self.metrics.histogram(
            "result.batch_size", buckets=COUNT_BUCKETS,
            component="agent", endpoint=endpoint_id)
        self.metrics.gauge("agent.pending_tasks",
                           endpoint=endpoint_id).set_function(self.pending_count)
        self.metrics.gauge("agent.credit_window",
                           endpoint=endpoint_id).set_function(
            lambda: max(0, self.credit_window()))
        # The credit window carried by the most recent heartbeat; a
        # change (manager membership / suspension) triggers an immediate
        # beat so the forwarder's window tracks capacity without waiting
        # out a full heartbeat period.
        self._last_credit_sent: int | None = None  # thread-confined: agent-loop
        # Lifetime counter: each (re-)registration starts a new incarnation
        # whose heartbeats carry the tag, letting the forwarder discard
        # beats from lifetimes it has already superseded.
        self.incarnation = 0
        # Fault injection: extra seconds added to the effective heartbeat
        # period (clock-skewed heartbeats; a large skew silences the agent
        # until the forwarder declares it lost).
        self.heartbeat_skew = 0.0

    # -- registry-backed counters (compat with the former int attributes) ----
    @property
    def tasks_received(self) -> int:
        return int(self._c_received.value)

    @property
    def tasks_dispatched(self) -> int:
        return int(self._c_dispatched.value)

    @property
    def results_forwarded(self) -> int:
        return int(self._c_results.value)

    @property
    def tasks_reexecuted(self) -> int:
        return int(self._c_reexecuted.value)

    @property
    def name(self) -> str:
        return f"agent:{self.endpoint_id}"

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_with_forwarder(self) -> None:
        """(Re-)register with the forwarder — also the recovery path:
        "when the funcX agent recovers, it repeats the registration
        process ... and continue[s] receiving tasks" (§4.3)."""
        self.incarnation += 1
        self.forwarder.send(
            Registration(
                sender=self.name,
                component_type="endpoint",
                capacity=self.total_capacity(),
                container_types=(),
                metadata={"endpoint_id": self.endpoint_id},
                incarnation=self.incarnation,
            )
        )
        self._last_heartbeat = self._clock()
        # Force a fresh credit report right after (re-)registration: the
        # forwarder may hold a stale window from a previous lifetime.
        self._last_credit_sent = None

    def attach_manager(self, manager_id: str, channel: ChannelEnd) -> None:
        """Attach the agent side of a manager's channel."""
        if self.config.event_driven:
            channel.wakeup = self._wakeup.set_at
        with self._lock:
            self._manager_channels[manager_id] = channel

    def detach_manager(self, manager_id: str) -> None:
        """Clean removal (scale-in): forget the manager entirely.

        Tasks still tracked against the departing manager are returned to
        the pending queue for re-execution — a graceful drain may still
        complete them first, in which case the duplicate completion is
        ignored by the service (at-least-once semantics).
        """
        with self._lock:
            self._manager_channels.pop(manager_id, None)
            self._views.pop(manager_id, None)
            self._suspended.discard(manager_id)
            self._manager_shipped.pop(manager_id, None)
            orphaned = [
                (task_id, message)
                for task_id, (mid, message, _a) in self._assigned.items()
                if mid == manager_id
            ]
            now = self._clock()
            for task_id, message in orphaned:
                del self._assigned[task_id]
                if message.trace is not None:
                    message.trace.begin("agent", self.name, at=now, reexecution=True)
                self._pending.appendleft(message)
                self._c_reexecuted.inc()
        self.heartbeats.forget(manager_id)

    def suspend_manager(self, manager_id: str) -> None:
        """Stop scheduling to a manager without killing it (§4.3)."""
        with self._lock:
            channel = self._manager_channels.get(manager_id)
            self._suspended.add(manager_id)
        if channel is not None:
            channel.send(CommandMessage(sender=self.name, command="suspend", target=manager_id))

    def shutdown_manager(self, manager_id: str) -> None:
        """Release a manager's resources (§4.3)."""
        with self._lock:
            channel = self._manager_channels.get(manager_id)
        if channel is not None:
            channel.send(CommandMessage(sender=self.name, command="shutdown", target=manager_id))
        self.detach_manager(manager_id)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def total_capacity(self) -> int:
        with self._lock:
            return sum(v.capacity for v in self._views.values())

    def credit_window(self) -> int:
        """Aggregate credit window over live, unsuspended managers.

        This is the endpoint-wide in-flight bound the agent forwards
        upstream on its heartbeats: the forwarder keeps at most this
        many tasks leased against the endpoint.  ``-1`` (unlimited) when
        flow control is disabled.  The value is *absolute*, not a
        running remainder, so a lost or reordered heartbeat can never
        corrupt the books — the next beat re-states the truth.

        The window is the sum of the live managers' windows *plus an
        agent-side buffer* of ``pipeline_depth`` node-windows (the
        agent's own pending queue is a bounded holder too).  The buffer
        keeps the forwarder→agent pipe full across the link round trip
        — capping in-flight at exactly worker capacity would throttle
        throughput to ``capacity / RTT`` on a long link even with every
        worker idle (a bandwidth-delay allowance, the same role §4.7
        gives manager prefetch one hop down).  It also covers elastic
        scale-from-zero: with no live manager the window is the buffer
        alone rather than zero, so demand still lands agent-side where
        an elasticity controller can observe it, bounded, ready for the
        first manager that registers.
        """
        if not self.config.flow_control:
            return -1
        prefetch = (self.config.prefetch_capacity
                    if self.config.internal_batching else 1)
        node_window = self.config.workers_per_node + prefetch
        agent_buffer = self.config.pipeline_depth * node_window
        with self._lock:
            views = [
                (mid, v.window)
                for mid, v in self._views.items()
                if mid not in self._suspended
            ]
        return agent_buffer + sum(window for mid, window in views
                                  if self.heartbeats.is_alive(mid))

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def outstanding_count(self) -> int:
        with self._lock:
            return len(self._assigned)

    def manager_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._manager_channels)

    def tracked_task_ids(self) -> list[str]:
        """Ids of tasks the agent still holds (pending + assigned)."""
        with self._lock:
            pending = [m.task_id for m in self._pending]
            return pending + list(self._assigned)

    # ------------------------------------------------------------------
    # the agent loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        events = self._drain_forwarder()
        events += self._drain_managers()
        self._watchdog()
        events += self._dispatch()
        self._maybe_heartbeat()
        return events

    def _drain_forwarder(self) -> int:
        count = 0
        for message in self.forwarder.recv_all_ready(self.MAX_DRAIN):
            count += 1
            if isinstance(message, TaskBatchMessage):
                if message.function_buffers:
                    with self._lock:
                        self._buffers.update(message.function_buffers)
                for task in message.tasks:
                    self._admit_task(task)
            elif isinstance(message, TaskMessage):
                self._admit_task(message)
            elif isinstance(message, CommandMessage) and message.command == "shutdown":
                self._stop.set()
        return count

    def _admit_task(self, message: TaskMessage) -> None:
        with self._lock:
            if message.function_buffer:
                self._buffers[message.function_id] = message.function_buffer
            known = message.function_id in self._buffers
        if not known:
            # Stripped task whose body never arrived (its envelope was
            # dropped or reordered past it); drop it — the forwarder's
            # lease timeout redelivers it with the body force-shipped.
            self._c_buffer_miss.inc()
            return
        if message.trace is not None:
            message.trace.begin("agent", self.name, at=self._clock())
        with self._lock:
            self._pending.append(message)
        self._c_received.inc()

    def _drain_managers(self) -> int:
        count = 0
        results: list[ResultMessage] = []
        with self._lock:
            channels = list(self._manager_channels.items())
        for manager_id, channel in channels:
            for message in channel.recv_all_ready(self.MAX_DRAIN):
                count += 1
                if isinstance(message, Registration):
                    self._on_manager_registered(manager_id, message)
                elif isinstance(message, Advertisement):
                    self._on_advertisement(manager_id, message)
                elif isinstance(message, Heartbeat):
                    self.heartbeats.beat(manager_id)
                elif isinstance(message, ResultBatchMessage):
                    for result in message.results:
                        self._record_result(manager_id, result)
                        results.append(result)
                elif isinstance(message, ResultMessage):
                    self._record_result(manager_id, message)
                    results.append(message)
        if results:
            self._forward_results(results)
        return count

    def _on_manager_registered(self, manager_id: str, message: Registration) -> None:
        with self._lock:
            self._views[manager_id] = ManagerView(
                manager_id=manager_id,
                capacity=message.capacity,
                deployed_containers=frozenset(message.container_types),
                # Conservative placeholder: the registration carries only
                # the worker count; the advertisement that follows it
                # carries the real window (workers + prefetch).
                window=max(0, message.capacity),
            )
            # A (re-)registered manager starts with an empty buffer cache.
            self._manager_shipped[manager_id] = {}
        self.heartbeats.beat(manager_id)

    def _on_advertisement(self, manager_id: str, message: Advertisement) -> None:
        with self._lock:
            view = self._views.get(manager_id)
            if view is None:
                view = ManagerView(manager_id=manager_id, capacity=0)
                self._views[manager_id] = view
            # A fresh advertisement reflects everything the manager has
            # received so far; reset the in-flight estimate.
            view.capacity = 0 if manager_id in self._suspended else message.total_request
            view.deployed_containers = frozenset(message.deployed_containers)
            view.outstanding = 0
            if message.credit_window >= 0:
                view.window = message.credit_window
        self.heartbeats.beat(manager_id)

    def _record_result(self, manager_id: str, message: ResultMessage) -> None:
        """Bookkeeping for one completed task (forwarding happens later)."""
        with self._lock:
            self._assigned.pop(message.task_id, None)
            view = self._views.get(manager_id)
            if view is not None and view.outstanding > 0:
                view.outstanding -= 1

    def _forward_results(self, results: list[ResultMessage]) -> None:
        """Ship a step's worth of results upstream as one transfer."""
        if self.config.message_batching and len(results) > 1:
            self.forwarder.send(
                ResultBatchMessage(sender=self.name, results=tuple(results)))
            self._c_coalesced.inc(len(results))
        else:
            for result in results:
                self.forwarder.send(result)
        self._h_result_batch.observe(float(len(results)))
        self._c_results.inc(len(results))

    # -- failure handling -------------------------------------------------------
    def _watchdog(self) -> None:
        """Detect lost managers and re-execute their tasks (§4.3)."""
        for manager_id in self.heartbeats.lost_components():
            with self._lock:
                known = manager_id in self._manager_channels
            if not known:
                self.heartbeats.forget(manager_id)
                continue
            self._on_manager_lost(manager_id)

    def _on_manager_lost(self, manager_id: str) -> None:
        with self._lock:
            self._views.pop(manager_id, None)
            self._manager_shipped.pop(manager_id, None)
            lost = [
                (task_id, message, attempts)
                for task_id, (mid, message, attempts) in self._assigned.items()
                if mid == manager_id
            ]
            for task_id, _, _ in lost:
                del self._assigned[task_id]
        self.heartbeats.forget(manager_id)
        for task_id, message, attempts in lost:
            if attempts <= self.config.max_retries_on_loss:
                if message.trace is not None:
                    message.trace.begin("agent", self.name, at=self._clock(),
                                        reexecution=True)
                with self._lock:
                    self._pending.appendleft(message)
                self._c_reexecuted.inc()
            else:
                self._fail_task(message, f"manager {manager_id} lost; retries exhausted")

    def _fail_task(self, message: TaskMessage, reason: str) -> None:
        wrapper = RemoteExceptionWrapper(RuntimeError(reason))
        buffer = self._serializer.serialize(wrapper, routing_tag=message.task_id)
        self.forwarder.send(
            ResultMessage(
                sender=self.name,
                task_id=message.task_id,
                success=False,
                result_buffer=buffer,
                execution_time=0.0,
                worker_id="",
                completed_at=self._clock(),
                trace=message.trace,
            )
        )

    # -- dispatch -------------------------------------------------------------
    def _dispatch(self) -> int:
        """Route pending tasks to managers.

        Phase 1 runs the scheduling policy per task (taking the lock per
        iteration so receive paths interleave).  With message batching on,
        sends are deferred and phase 2 ships each manager's share as one
        :class:`TaskBatchMessage`; otherwise each task is sent as it is
        scheduled (the seed behavior).
        """
        batching = self.config.message_batching
        assignments: dict[str, list[TaskMessage]] = {}
        channels: dict[str, ChannelEnd] = {}
        dispatched = 0
        while True:
            with self._lock:
                if not self._pending:
                    break
                message = self._pending[0]
                views = [
                    v
                    for mid, v in self._views.items()
                    if mid not in self._suspended and self.heartbeats.is_alive(mid)
                ]
                chosen = self.scheduler.select(views, message.container_image)
                if chosen is None:
                    break
                self._pending.popleft()
                channel = self._manager_channels.get(chosen.manager_id)
                if channel is None:
                    # stale view; drop it and retry this task next iteration
                    self._views.pop(chosen.manager_id, None)
                    self._pending.appendleft(message)
                    continue
                attempts = self._assigned.get(message.task_id, ("", message, 0))[2]
                self._assigned[message.task_id] = (chosen.manager_id, message, attempts + 1)
                chosen.outstanding += 1
            if batching:
                assignments.setdefault(chosen.manager_id, []).append(message)
                channels[chosen.manager_id] = channel
                continue
            if not channel.send(self._with_buffer(message)):
                # manager channel just went down; watchdog will requeue
                continue
            if message.trace is not None:
                message.trace.end("agent", at=self._clock(),
                                  manager=chosen.manager_id)
            self._c_dispatched.inc()
            self._h_dispatch_batch.observe(1.0)
            dispatched += 1
        for manager_id, messages in assignments.items():
            dispatched += self._send_task_batch(
                manager_id, channels[manager_id], messages)
        return dispatched

    def _with_buffer(self, message: TaskMessage) -> TaskMessage:
        """Reattach the function body to a stripped task (legacy path)."""
        if message.function_buffer:
            return message
        with self._lock:
            buffer = self._buffers.get(message.function_id, b"")
        return replace(message, function_buffer=buffer)

    def _send_task_batch(
        self,
        manager_id: str,
        channel: ChannelEnd,
        messages: list[TaskMessage],
    ) -> int:
        """Ship one manager's scheduled tasks as a single coalesced transfer.

        Each distinct function buffer is included at most once, and only
        when this manager has not already been shipped the same version
        (digest tracked per manager registration).
        """
        outgoing: list[TaskMessage] = []
        needed: dict[str, bytes] = {}
        with self._lock:
            shipped = self._manager_shipped.setdefault(manager_id, {})
            for message in messages:
                buffer = self._buffers.get(message.function_id)
                if buffer is None and message.function_buffer:
                    buffer = message.function_buffer
                    self._buffers[message.function_id] = buffer
                if buffer is not None and message.function_id not in needed:
                    if shipped.get(message.function_id) != hash(buffer):
                        needed[message.function_id] = buffer
                if message.function_buffer:
                    message = replace(message, function_buffer=b"")
                outgoing.append(message)
        batch = TaskBatchMessage(
            sender=self.name,
            tasks=tuple(outgoing),
            function_buffers=needed,
            incarnation=self.incarnation,
        )
        if not channel.send(batch):
            # manager channel just went down; watchdog will requeue
            return 0
        with self._lock:
            shipped = self._manager_shipped.setdefault(manager_id, {})
            for function_id, buffer in needed.items():
                shipped[function_id] = hash(buffer)
        now = self._clock()
        for message in outgoing:
            if message.trace is not None:
                message.trace.end("agent", at=now, manager=manager_id)
        self._c_dispatched.inc(len(outgoing))
        self._h_dispatch_batch.observe(float(len(outgoing)))
        if len(outgoing) > 1:
            self._c_coalesced.inc(len(outgoing))
        return len(outgoing)

    # -- heartbeats to the forwarder ----------------------------------------------
    def _maybe_heartbeat(self) -> None:
        now = self._clock()
        period = max(0.0, self.config.heartbeat_period + self.heartbeat_skew)
        credit = self.credit_window()
        due = now - self._last_heartbeat >= period
        # Dirty-beat: a changed credit window (manager registered, lost,
        # or suspended) is announced immediately instead of waiting out
        # the period — otherwise a cold-starting endpoint would sit at
        # window 0 for a full period before the forwarder may dispatch.
        # Skewed agents stay silent: the skew fault injection must delay
        # *all* beats, credit updates included.
        dirty = (self.config.flow_control
                 and credit != self._last_credit_sent
                 and self.heartbeat_skew == 0)
        if not due and not dirty:
            return
        self._last_heartbeat = now
        self._last_credit_sent = credit
        try:
            self.forwarder.send(
                Heartbeat(
                    sender=self.name,
                    timestamp=now,
                    outstanding_tasks=self.outstanding_count(),
                    incarnation=self.incarnation,
                    credit=credit,
                )
            )
        except Exception:
            pass  # disconnected from forwarder; reconnection re-registers

    # ------------------------------------------------------------------
    # threaded operation
    # ------------------------------------------------------------------
    def start(self, poll_interval: float | None = None) -> None:
        """Run the agent loop in a thread.

        Event-driven agents block on the wakeup (channel deliveries from
        the forwarder and managers latch it) and use ``poll_interval``
        only as a heartbeat/watchdog liveness fallback, defaulting to
        half the heartbeat period.
        """
        if self._thread is not None:
            raise RuntimeError("agent already started")
        event_driven = self.config.event_driven
        if poll_interval is None:
            poll_interval = (
                max(0.001, 0.5 * self.config.heartbeat_period)
                if event_driven else 0.002
            )
        fallback = poll_interval
        self._stop.clear()
        self.register_with_forwarder()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    events = self.step()
                except Exception:
                    events = 0
                if events == 0:
                    if event_driven:
                        self._wakeup.wait(fallback)
                    else:
                        self._sleep(fallback)

        self._thread = threading.Thread(
            target=loop, name=f"agent-{self.endpoint_id[:8]}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self._wakeup.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
