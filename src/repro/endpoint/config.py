"""Endpoint configuration.

Users deploying an agent specify the provider, per-node worker count,
container handling and performance knobs (paper sections 4.3-4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.spec import ContainerTechnology


@dataclass(frozen=True)
class EndpointConfig:
    """Deployment-time endpoint settings.

    Attributes
    ----------
    workers_per_node:
        Workers (container slots) each manager partitions its node into.
    system:
        Platform name selecting container cold-start models
        ("ec2", "theta", "cori", "local").
    container_technology:
        Technology workers launch containers with.
    warm_ttl:
        Container warming window, seconds (5-10 minutes in the paper).
    heartbeat_period:
        Agent→forwarder and manager→agent heartbeat interval.
    heartbeat_grace:
        Missed periods before a component is declared lost.
    prefetch_capacity:
        Extra tasks a manager requests beyond idle workers (§4.7
        "advertising with opportunistic prefetching"); 0 disables.
    internal_batching:
        Whether managers lease many tasks per request (§4.7 "internal
        batching"); disabling reproduces the §5.5.2 baseline.
    message_batching:
        Whether the forwarder/agent/manager coalesce tasks and results
        into batch envelopes with function-buffer deduplication (one
        channel transfer per step instead of one per message).
        Disabling reproduces the per-message seed behavior.
    event_driven:
        Whether the forwarder/agent/manager loops block on wakeups
        (channel deliveries, queue puts, worker completions) instead of
        sleep-polling; the poll interval becomes a liveness/heartbeat
        fallback only.
    adaptive_batching:
        Whether the forwarder's dispatch waves are sized by the adaptive
        Nagle policy (hold a wave up to T seconds or N tasks, T/N
        derived from the link's transfer cost and the observed arrival
        rate — see docs/PERFORMANCE.md).  Disabling reproduces the
        lease-whatever-is-there wave sizing of the plain batching path.
    flow_control:
        Whether credit-based backpressure is active end to end: workers
        grant credits to their manager, managers advertise credit
        windows, the agent forwards the aggregate window on its
        heartbeat, and the forwarder never holds more open leases than
        the advertised window.  Disabling reproduces the unbounded
        in-flight behavior (backlog pools at the agent/manager instead
        of the service-side queue).
    pipeline_depth:
        Agent-side pipeline buffer, in units of one node's credit
        window, added to the advertised aggregate.  Keeps the
        forwarder→agent link full across its round trip: capping
        in-flight at exactly worker capacity would throttle throughput
        to ``capacity / RTT`` on a long link even with every worker
        idle.  Also what keeps demand observable for elastic
        scale-from-zero (with no live manager the window is the buffer
        alone).  0 means strict worker capacity — and a dead stop at
        zero managers.
    scheduler_policy:
        Agent manager-selection policy: "randomized" (paper), or the
        ablation policies "round_robin" / "first_fit".
    scale_cold_start:
        Multiplier applied to sampled container cold-start times on the
        live fabric (tests compress 10 s Singularity starts to ~10 ms).
    max_retries_on_loss:
        Agent-side re-execution budget for tasks lost with a manager.
    """

    workers_per_node: int = 4
    system: str = "local"
    container_technology: ContainerTechnology = ContainerTechnology.NONE
    warm_ttl: float = 300.0
    heartbeat_period: float = 0.5
    heartbeat_grace: int = 3
    prefetch_capacity: int = 4
    internal_batching: bool = True
    message_batching: bool = True
    event_driven: bool = True
    adaptive_batching: bool = True
    flow_control: bool = True
    pipeline_depth: int = 2
    scheduler_policy: str = "randomized"
    scale_cold_start: float = 1.0
    max_retries_on_loss: int = 1
    seed: int | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers_per_node < 1:
            raise ValueError("workers_per_node must be positive")
        if self.warm_ttl < 0:
            raise ValueError("warm_ttl must be non-negative")
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.prefetch_capacity < 0:
            raise ValueError("prefetch_capacity must be non-negative")
        if self.pipeline_depth < 0:
            raise ValueError("pipeline_depth must be non-negative")
        if self.scale_cold_start < 0:
            raise ValueError("scale_cold_start must be non-negative")
