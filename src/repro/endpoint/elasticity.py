"""Provider-driven elasticity for live endpoints (paper §4.4, §5.3).

"funcX endpoints dynamically scale and provision compute resources in
response to function load."  The live :class:`~repro.endpoint.endpoint.Endpoint`
exposes ``scale_out``/``scale_in``; this controller closes the loop: it
periodically evaluates the :class:`SimpleScalingStrategy` against the
agent's observed load, submits/cancels pilot jobs through the configured
:class:`ExecutionProvider`, and maps RUNNING blocks onto managers.

Stepped manually (tests) or on a thread (:meth:`start`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.endpoint.endpoint import Endpoint
from repro.providers.base import ExecutionProvider, JobState
from repro.providers.strategy import SimpleScalingStrategy


class ElasticityController:
    """Keeps an endpoint's manager count tracking its task load.

    Parameters
    ----------
    endpoint:
        The live endpoint to scale.
    provider:
        Where blocks (nodes) come from; each RUNNING block backs one
        manager.
    strategy:
        The scaling policy; ``tasks_per_unit`` should match the
        endpoint's ``workers_per_node``.
    evaluation_period:
        Seconds between strategy evaluations in threaded mode.
    """

    #: strategy image key for the endpoint's single bare pool
    POOL = "default"

    def __init__(
        self,
        endpoint: Endpoint,
        provider: ExecutionProvider | None = None,
        strategy: SimpleScalingStrategy | None = None,
        evaluation_period: float = 0.5,
        clock: Callable[[], float] | None = None,
    ):
        self.endpoint = endpoint
        self.provider = provider or endpoint.provider
        if self.provider is None:
            raise ValueError("elasticity requires a provider")
        self.strategy = strategy or SimpleScalingStrategy(
            max_units_per_image=self.provider.limits.max_blocks,
            min_units_per_image=self.provider.limits.min_blocks,
            tasks_per_unit=endpoint.config.workers_per_node,
            parallelism=self.provider.limits.parallelism,
            idle_grace=5.0,
        )
        self.evaluation_period = evaluation_period
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._block_to_manager: dict[str, str] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Only the evaluate loop bumps these once start() has run; tests
        # that call evaluate() directly do so with no loop thread alive.
        self.scale_out_events = 0  # thread-confined: elasticity
        self.scale_in_events = 0  # thread-confined: elasticity

    # ------------------------------------------------------------------
    def observed_load(self) -> int:
        """Tasks pending at the agent plus tasks in flight to workers."""
        agent = self.endpoint.agent
        return agent.pending_count() + agent.outstanding_count()

    def step(self) -> None:
        """One control iteration: poll the provider, apply the strategy."""
        now = self._clock()
        # 1. materialize managers for blocks that just came up
        for job in self.provider.poll(now):
            if job.state is JobState.RUNNING and job.job_id not in self._block_to_manager:
                manager = self.endpoint.scale_out(1)[0]
                self._block_to_manager[job.job_id] = manager
        # 2. reap managers whose blocks died underneath them
        for job_id, manager_id in list(self._block_to_manager.items()):
            job = self.provider.job(job_id)
            if job is not None and job.state in (JobState.FAILED, JobState.COMPLETED):
                del self._block_to_manager[job_id]
                self.endpoint.scale_in(manager_id)
        # 3. strategy decisions
        load = {self.POOL: self.observed_load()}
        supply = {self.POOL: self.provider.active_blocks}
        for decision in self.strategy.decide(load, supply, now):
            if decision.action == "scale_out":
                for _ in range(decision.count):
                    if not self.provider.can_scale_out():
                        break
                    self.provider.submit(now)
                    self.scale_out_events += 1
            elif decision.action == "scale_in":
                self._scale_in(decision.count, now)

    def _scale_in(self, count: int, now: float) -> None:
        running = self.provider.jobs_in_state(JobState.RUNNING, JobState.PENDING)
        for job in running[:count]:
            if not self.provider.can_scale_in():
                break
            manager_id = self._block_to_manager.pop(job.job_id, None)
            self.provider.cancel(job.job_id, now)
            if manager_id is not None:
                self.endpoint.scale_in(manager_id)
            self.scale_in_events += 1

    # ------------------------------------------------------------------
    @property
    def active_managers(self) -> int:
        return len(self._block_to_manager)

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                self.step()
                self._stop.wait(self.evaluation_period)

        self._thread = threading.Thread(target=loop, name="elasticity", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
