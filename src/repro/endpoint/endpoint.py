"""Endpoint assembly: agent + managers + provider on one resource.

This is the deployable unit — what ``funcx-endpoint start`` would launch.
It wires the agent to its managers over channels, starts the threads, and
exposes the fault-injection and elasticity hooks the evaluation uses.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable

from repro.endpoint.agent import FuncXAgent
from repro.endpoint.config import EndpointConfig
from repro.endpoint.manager import Manager
from repro.metrics.registry import MetricsRegistry
from repro.providers.base import ExecutionProvider
from repro.transport.channel import ChannelEnd, Network


class Endpoint:
    """A running funcX endpoint.

    Parameters
    ----------
    endpoint_id:
        Service-assigned endpoint UUID.
    forwarder_channel:
        Agent side of the channel to this endpoint's forwarder.
    config:
        Endpoint configuration.
    network:
        Channel factory for agent↔manager links (intra-site latency).
    nodes:
        Managers (compute nodes) to start with.
    provider:
        Optional resource provider (recorded for scaling decisions; the
        live fabric provisions managers directly as threads).
    manager_latency:
        One-way agent↔manager channel latency, seconds.
    manager_transfer_cost:
        Per-transfer serial link occupancy on agent↔manager channels,
        seconds (amortized by message coalescing).
    """

    def __init__(
        self,
        endpoint_id: str,
        forwarder_channel: ChannelEnd,
        config: EndpointConfig | None = None,
        network: Network | None = None,
        nodes: int = 1,
        provider: ExecutionProvider | None = None,
        manager_latency: float = 0.0,
        manager_transfer_cost: float = 0.0,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.endpoint_id = endpoint_id
        self.config = config or EndpointConfig()
        self.network = network or Network(clock=clock)
        self.provider = provider
        self.manager_latency = manager_latency
        self.manager_transfer_cost = manager_transfer_cost
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.metrics = metrics or MetricsRegistry(clock=self._clock)
        self.agent = FuncXAgent(
            endpoint_id=endpoint_id,
            forwarder_channel=forwarder_channel,
            config=self.config,
            clock=self._clock,
            metrics=self.metrics,
            sleeper=sleeper,
        )
        self.managers: dict[str, Manager] = {}
        # Called with each new Manager before it starts (scale_out
        # included) — the deployment uses this to sanitize its lock.
        self.on_manager_created: Callable[[Manager], None] | None = None
        self._node_seq = itertools.count(1)
        self._lock = threading.RLock()
        self._started = False
        for _ in range(nodes):
            self._create_manager()

    # ------------------------------------------------------------------
    def _create_manager(self) -> Manager:
        manager_id = f"{self.endpoint_id[:8]}-mgr{next(self._node_seq)}"
        channel = self.network.create_channel(
            f"agent<->{manager_id}", latency=self.manager_latency,
            transfer_cost=self.manager_transfer_cost,
        )
        manager = Manager(
            manager_id=manager_id,
            channel=channel.left,
            config=self.config,
            clock=self._clock,
            metrics=self.metrics,
        )
        self.agent.attach_manager(manager_id, channel.right)
        if self.on_manager_created is not None:
            self.on_manager_created(manager)
        with self._lock:
            self.managers[manager_id] = manager
        if self._started:
            manager.start()
        return manager

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                raise RuntimeError("endpoint already started")
            self._started = True
            managers = list(self.managers.values())
        for manager in managers:
            manager.start()
        self.agent.start()

    def stop(self) -> None:
        self.agent.stop()
        with self._lock:
            managers = list(self.managers.values())
            self._started = False
        for manager in managers:
            manager.stop()

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until every manager has registered capacity with the agent."""
        deadline = self._clock() + timeout
        expected = len(self.managers)
        while self._clock() < deadline:
            if len(self.agent.manager_ids()) >= expected and self.agent.total_capacity() > 0:
                return True
            self._sleep(0.005)
        return False

    # ------------------------------------------------------------------
    # elasticity hooks
    # ------------------------------------------------------------------
    def scale_out(self, nodes: int = 1) -> list[str]:
        """Add managers (the live analogue of provisioning blocks)."""
        added = []
        for _ in range(nodes):
            manager = self._create_manager()  # starts it if the endpoint runs
            added.append(manager.manager_id)
        return added

    def scale_in(self, manager_id: str) -> bool:
        """Shut one manager down and release its resources."""
        with self._lock:
            manager = self.managers.pop(manager_id, None)
        if manager is None:
            return False
        self.agent.shutdown_manager(manager_id)
        manager.stop()
        return True

    @property
    def total_workers(self) -> int:
        with self._lock:
            return sum(m.worker_count for m in self.managers.values())

    # ------------------------------------------------------------------
    # fault injection (section 5.4)
    # ------------------------------------------------------------------
    def skew_heartbeats(self, skew: float) -> None:
        """Add ``skew`` seconds to every component's heartbeat period.

        A skew larger than the peer's grace window silences heartbeats
        long enough for the agent/forwarder watchdogs to declare the
        component lost; resetting to ``0.0`` lets it flap back.
        """
        self.agent.heartbeat_skew = skew
        with self._lock:
            managers = list(self.managers.values())
        for manager in managers:
            manager.heartbeat_skew = skew

    def kill_manager(self, manager_id: str) -> Manager:
        """Terminate a manager abruptly; in-flight tasks are lost with it."""
        with self._lock:
            manager = self.managers.pop(manager_id, None)
        if manager is None:
            raise KeyError(manager_id)
        manager.kill()
        return manager

    def restart_manager(self) -> Manager:
        """Bring up a replacement manager (the §5.4 recovery step)."""
        return self._create_manager()

    def kill_endpoint(self) -> None:
        """Simulate the whole endpoint going offline: the agent's channel
        to the forwarder drops and the agent thread halts."""
        self.agent.stop()
        self.agent.forwarder.disconnect()

    def recover_endpoint(self) -> None:
        """Endpoint comes back: reconnect and repeat registration (§4.3)."""
        self.agent.forwarder.reconnect()
        self.agent.start()
