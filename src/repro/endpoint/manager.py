"""Managers: per-node worker pools (paper section 4.3).

"Managers represent, and communicate on behalf of, the collective
capacity of the workers on a single node, thereby limiting the number of
sockets used to just two per node.  Managers determine the available CPU
and memory resources on a node, and partition the node among the
workers. ... Managers advertise deployed container types and available
capacity to the endpoint."

The manager implements two paper optimizations:

* **internal batching** — it requests/accepts many tasks on behalf of its
  workers per round trip (§4.7, evaluated in §5.5.2);
* **opportunistic prefetching** — it advertises anticipated capacity
  beyond currently idle workers so network transfer overlaps computation
  (§4.7, evaluated in §5.5.5);

and the on-demand container deployment algorithm of §4.5: a task needing
a container the node hasn't deployed triggers a (warm-pool-mediated)
worker redeployment.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Callable

from repro.containers.runtime import ContainerRuntime
from repro.containers.spec import ContainerSpec, ContainerTechnology
from repro.containers.warming import WarmPool
from repro.core.flowcontrol import CreditLedger
from repro.endpoint.config import EndpointConfig
from repro.endpoint.worker import Worker
from repro.metrics.registry import COUNT_BUCKETS, MetricsRegistry
from repro.serialize import FuncXSerializer
from repro.serialize.traceback import RemoteExceptionWrapper
from repro.transport.channel import ChannelEnd
from repro.transport.messages import (
    Advertisement,
    CommandMessage,
    Heartbeat,
    Registration,
    ResultBatchMessage,
    ResultMessage,
    TaskBatchMessage,
    TaskMessage,
)
from repro.transport.wakeup import Wakeup


class _NotifyingQueue(_queue.Queue):
    """Worker-results queue that pokes the manager's wakeup on put.

    Workers complete tasks on their own threads; without the poke an
    event-driven manager would sleep through completions until its
    heartbeat fallback fired.
    """

    def __init__(self, notify: Callable[[], None]):
        super().__init__()
        self._notify = notify

    def put(self, item, block: bool = True, timeout: float | None = None) -> None:
        super().put(item, block, timeout)
        self._notify()


class Manager:
    """One node's worker pool, connected to the agent by a channel.

    Parameters
    ----------
    manager_id:
        Unique id within the endpoint.
    channel:
        Manager side of the channel to the agent.
    config:
        The endpoint configuration (worker count, batching, prefetch...).
    runtime:
        Container runtime used for cold starts on this node.
    sleeper:
        Injectable delay function used to apply (scaled) container
        cold-start times on the live fabric.
    metrics:
        The deployment's shared metrics registry (a private one is
        created when not provided).
    """

    #: Per-step bound on messages drained from the agent channel so a
    #: flooded link cannot starve heartbeats or result collection.
    MAX_DRAIN = 256

    def __init__(
        self,
        manager_id: str,
        channel: ChannelEnd,
        config: EndpointConfig,
        runtime: ContainerRuntime | None = None,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.manager_id = manager_id
        self.channel = channel
        self.config = config
        self.runtime = runtime or ContainerRuntime(system=config.system, seed=config.seed)
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._sleep = sleeper or time.sleep
        self.warm_pool = WarmPool(ttl=config.warm_ttl)

        self._wakeup = Wakeup(clock=self._clock)
        if config.event_driven:
            channel.wakeup = self._wakeup.set_at
        self._results: "_queue.Queue[tuple[str, ResultMessage]]" = _NotifyingQueue(
            self._wakeup.set)
        self._workers: dict[str, Worker] = {}
        self._lock = threading.RLock()
        self._idle: set[str] = set()                 # guarded-by: self._lock
        self._pending: deque[TaskMessage] = deque()  # guarded-by: self._lock
        # Function-buffer table: bodies arrive once per batch envelope and
        # are reattached before a task reaches a worker's inbox.
        self._buffers: dict[str, bytes] = {}         # guarded-by: self._lock
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Heartbeat/advertise pacing state, touched only from the manager
        # loop once start() has spawned it.
        self._last_heartbeat = -float("inf")  # thread-confined: manager-loop
        self._last_advertised: tuple[int, tuple[str, ...]] | None = None  # thread-confined: manager-loop
        self.metrics = metrics or MetricsRegistry(clock=self._clock)
        self._c_completed = self.metrics.counter(
            "manager.tasks_completed", manager=manager_id)
        self._c_cold_starts = self.metrics.counter(
            "manager.cold_starts", manager=manager_id)
        self._c_buffer_miss = self.metrics.counter(
            "manager.buffer_misses", manager=manager_id)
        self._c_coalesced = self.metrics.counter(
            "channel.coalesced_messages", component="manager", manager=manager_id)
        self._h_result_batch = self.metrics.histogram(
            "result.batch_size", buckets=COUNT_BUCKETS,
            component="manager", manager=manager_id)
        self._serializer = FuncXSerializer()
        # Fault injection: extra seconds added to the effective heartbeat
        # period (clock-skewed heartbeats toward the agent's watchdog).
        self.heartbeat_skew = 0.0
        # Execution credits: one per worker slot, granted at deploy,
        # consumed on dispatch-to-worker, released by the worker itself
        # on completion (the credit loop's manager-side ledger).
        self.credits = CreditLedger()

        self._deploy_initial_workers()
        self.metrics.gauge(
            "manager.credit_available", manager=manager_id
        ).set_function(lambda: self.credits.available)
        self.metrics.gauge(
            "manager.credit_window", manager=manager_id
        ).set_function(lambda: max(0, self.credit_window()))

    # -- registry-backed counters (compat with the former int attributes) ----
    @property
    def tasks_completed(self) -> int:
        return int(self._c_completed.value)

    @property
    def cold_starts(self) -> int:
        return int(self._c_cold_starts.value)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _deploy_initial_workers(self) -> None:
        """Partition the node into workers in the bare environment."""
        for i in range(self.config.workers_per_node):
            worker_id = f"{self.manager_id}/w{i}"
            container = self.runtime.instantiate(ContainerSpec.bare(), now=self._clock())
            worker = Worker(
                worker_id=worker_id,
                inbox=_queue.Queue(),
                results=self._results,
                container=container,
                clock=self._clock,
                credits=self.credits,
            )
            self._workers[worker_id] = worker
            self.credits.grant(1)  # the slot's execution credit
            with self._lock:
                self._idle.add(worker_id)

    def register(self) -> None:
        """Register with the agent once all workers are connected (§4.3)."""
        self.channel.send(
            Registration(
                sender=self.manager_id,
                component_type="manager",
                capacity=len(self._workers),
                container_types=self.deployed_containers(),
                metadata={"workers": len(self._workers)},
            )
        )
        self._advertise(force=True)

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    def deployed_containers(self) -> tuple[str, ...]:
        with self._lock:
            keys = {w.container.key for w in self._workers.values()}
        keys.update(self.warm_pool.warm_keys())
        return tuple(sorted(keys))

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending) + sum(
                1 for w in self._workers.values() if w.busy
            )

    def tracked_task_ids(self) -> list[str]:
        """Ids of tasks queued on this node (chaos accounting probes).

        Tasks already handed to a worker's inbox are not listed; at
        quiescence (idle workers) the pending deque is the full picture.
        """
        with self._lock:
            return [m.task_id for m in self._pending]

    # ------------------------------------------------------------------
    # the manager loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One iteration: drain agent traffic, collect results, dispatch."""
        events = 0
        for message in self.channel.recv_all_ready(self.MAX_DRAIN):
            events += 1
            if isinstance(message, TaskBatchMessage):
                if message.function_buffers:
                    with self._lock:
                        self._buffers.update(message.function_buffers)
                for task in message.tasks:
                    self._admit_task(task)
            elif isinstance(message, TaskMessage):
                self._admit_task(message)
            elif isinstance(message, CommandMessage):
                self._on_command(message)
        events += self._collect_results()
        events += self._dispatch_pending()
        self._maybe_heartbeat()
        return events

    def _admit_task(self, message: TaskMessage) -> None:
        if message.trace is not None:
            message.trace.begin("manager", self.manager_id, at=self._clock())
        with self._lock:
            if message.function_buffer:
                self._buffers[message.function_id] = message.function_buffer
            self._pending.append(message)

    def _collect_results(self) -> int:
        collected: list[ResultMessage] = []
        while True:
            try:
                worker_id, result = self._results.get_nowait()
            except _queue.Empty:
                break
            self._c_completed.inc()
            with self._lock:
                self._idle.add(worker_id)
            collected.append(result)
        if not collected:
            return 0
        if self.config.message_batching and len(collected) > 1:
            # One coalesced transfer for the whole step's completions.
            self.channel.send(
                ResultBatchMessage(sender=self.manager_id,
                                   results=tuple(collected)))
            self._c_coalesced.inc(len(collected))
        else:
            for result in collected:
                self.channel.send(result)
        self._h_result_batch.observe(float(len(collected)))
        self._advertise()  # capacity freed: advertise immediately
        return len(collected)

    def _dispatch_pending(self) -> int:
        dispatched = 0
        while True:
            # Peek/pop under the manager lock: the pending deque is shared
            # with the agent-facing receive path, and a torn peek-vs-pop
            # would dispatch one message twice or skip one entirely.
            with self._lock:
                if not self._pending:
                    break
                message = self._pending[0]
                buffer = b""
                if not message.function_buffer:
                    buffer = self._buffers.get(message.function_id, b"")
                    if not buffer:
                        self._pending.popleft()
            if not message.function_buffer and not buffer:
                self._fail_unresolvable(message)
                dispatched += 1
                continue
            worker = self._worker_for(message.container_image)
            if worker is None:
                break
            with self._lock:
                if not self._pending or self._pending[0] is not message:
                    continue  # raced: re-evaluate from the top
                self._pending.popleft()
                self._idle.discard(worker.worker_id)
            self.credits.consume(1)  # the slot's credit rides the task
            if buffer:
                message = replace(message, function_buffer=buffer)
            if message.trace is not None:
                message.trace.end("manager", at=self._clock(),
                                  worker=worker.worker_id)
            worker.inbox.put(message)
            dispatched += 1
        return dispatched

    def _fail_unresolvable(self, message: TaskMessage) -> None:
        """A stripped task whose function body never reached this node.

        Reported as a failure result so the task is not silently lost;
        the client (or agent retry machinery) can resubmit.
        """
        self._c_buffer_miss.inc()
        wrapper = RemoteExceptionWrapper(RuntimeError(
            f"function body {message.function_id} unavailable on "
            f"{self.manager_id}"))
        buffer = self._serializer.serialize(wrapper, routing_tag=message.task_id)
        if message.trace is not None:
            message.trace.end("manager", at=self._clock(), error="buffer_miss")
        self.channel.send(
            ResultMessage(
                sender=self.manager_id,
                task_id=message.task_id,
                success=False,
                result_buffer=buffer,
                execution_time=0.0,
                worker_id="",
                completed_at=self._clock(),
                trace=message.trace,
            )
        )

    def _worker_for(self, container_image: str | None) -> Worker | None:
        """An idle worker deployed in a suitable container (§4.5).

        Prefers a matching idle worker; otherwise redeploys an idle
        worker into the required container (warm pool first, else a cold
        start whose modelled duration is physically applied).
        """
        key = container_image or "RAW"
        with self._lock:
            idle_workers = [self._workers[w] for w in self._idle]
        if not idle_workers:
            return None
        for worker in idle_workers:
            if worker.container.key == key:
                return worker
        # No matching container: redeploy one idle worker.
        victim = idle_workers[0]
        self._redeploy(victim, key)
        return victim

    def _redeploy(self, worker: Worker, key: str) -> None:
        now = self._clock()
        released = worker.container
        self.warm_pool.release(released, now)

        warm = self.warm_pool.acquire(key, now)
        if warm is not None:
            worker.container = warm
        else:
            spec = self._spec_for_key(key)
            concurrent = 0  # live nodes deploy serially on the manager thread
            instance = self.runtime.instantiate(spec, now=now, concurrent=concurrent)
            self._c_cold_starts.inc()
            delay = instance.cold_start_time * self.config.scale_cold_start
            if delay > 0:
                self._sleep(delay)
            worker.container = instance
        worker._function_cache.clear()  # new environment, no stale modules
        self._advertise(force=True)

    def _spec_for_key(self, key: str) -> ContainerSpec:
        if key == "RAW":
            return ContainerSpec.bare()
        tech_name, _, image = key.partition(":")
        return ContainerSpec(image=image, technology=ContainerTechnology(tech_name))

    # ------------------------------------------------------------------
    # advertisement & heartbeats
    # ------------------------------------------------------------------
    def advertised_capacity(self) -> int:
        """Capacity advertised to the agent.

        With internal batching the manager requests tasks for every idle
        worker plus a prefetch allowance; without it, one task per round
        trip (the §5.5.2 baseline).
        """
        with self._lock:
            idle = len(self._idle)
            queued = len(self._pending)
        if self.config.flow_control:
            # The credit ledger leads the idle set: workers release their
            # credit the instant execution finishes, before the collect
            # pass re-marks them idle, so freed capacity advertises one
            # hop earlier.
            idle = max(idle, self.credits.available)
        if not self.config.internal_batching:
            return min(1, idle) if not queued else 0
        prefetch = self.config.prefetch_capacity
        return max(0, idle + prefetch - queued)

    def credit_window(self) -> int:
        """The static credit window this node advertises upstream.

        The window is the total task population the node is willing to
        hold at once — every worker slot plus the prefetch allowance
        (one without internal batching, matching the one-task-per-round-
        trip §5.5.2 baseline).  ``-1`` when flow control is disabled
        (window unreported = unlimited to the receiver).
        """
        if not self.config.flow_control:
            return -1
        extra = (self.config.prefetch_capacity
                 if self.config.internal_batching else 1)
        return len(self._workers) + extra

    def _advertise(self, force: bool = False) -> None:
        capacity = self.advertised_capacity()
        containers = self.deployed_containers()
        state = (capacity, containers)
        if not force and state == self._last_advertised:
            return
        self._last_advertised = state
        self.channel.send(
            Advertisement(
                sender=self.manager_id,
                manager_id=self.manager_id,
                idle_workers=self.idle_count,
                prefetch_capacity=max(0, capacity - self.idle_count),
                deployed_containers=containers,
                credit_window=self.credit_window(),
            )
        )

    def _maybe_heartbeat(self) -> None:
        now = self._clock()
        period = max(0.0, self.config.heartbeat_period + self.heartbeat_skew)
        if now - self._last_heartbeat < period:
            return
        self._last_heartbeat = now
        beat = Heartbeat(
            sender=self.manager_id, timestamp=now,
            outstanding_tasks=self.outstanding)
        self.warm_pool.evict_expired(now)
        if not self.config.message_batching:
            self.channel.send(beat)
            self._advertise(force=True)
            return
        # Piggyback the periodic advertisement on the heartbeat: one
        # coalesced transfer instead of two back-to-back messages.
        capacity = self.advertised_capacity()
        containers = self.deployed_containers()
        self._last_advertised = (capacity, containers)
        advert = Advertisement(
            sender=self.manager_id,
            manager_id=self.manager_id,
            idle_workers=self.idle_count,
            prefetch_capacity=max(0, capacity - self.idle_count),
            deployed_containers=containers,
            credit_window=self.credit_window(),
        )
        self.channel.send_many((beat, advert))
        self._c_coalesced.inc(2)

    def _on_command(self, message: CommandMessage) -> None:
        if message.command == "shutdown":
            self._stop.set()
        elif message.command == "suspend":
            # Stop advertising; in-flight work completes ("suspend managers
            # to prevent further tasks being scheduled to them", §4.3).
            self._last_advertised = (0, self.deployed_containers())
            self.channel.send(
                Advertisement(
                    sender=self.manager_id,
                    manager_id=self.manager_id,
                    idle_workers=0,
                    prefetch_capacity=0,
                    deployed_containers=self.deployed_containers(),
                    credit_window=0 if self.config.flow_control else -1,
                )
            )

    # ------------------------------------------------------------------
    # threaded operation
    # ------------------------------------------------------------------
    def start(self, poll_interval: float | None = None) -> None:
        """Run the manager loop in a thread.

        Event-driven managers block on the wakeup (channel deliveries and
        worker completions latch it) and use ``poll_interval`` only as a
        heartbeat liveness fallback, defaulting to half the heartbeat
        period.
        """
        if self._thread is not None:
            raise RuntimeError("manager already started")
        event_driven = self.config.event_driven
        if poll_interval is None:
            poll_interval = (
                max(0.001, 0.5 * self.config.heartbeat_period)
                if event_driven else 0.002
            )
        fallback = poll_interval
        self._stop.clear()
        for worker in self._workers.values():
            worker.start()
        self.register()

        def loop() -> None:
            while not self._stop.is_set():
                if self.step() == 0:
                    if event_driven:
                        self._wakeup.wait(fallback)
                    else:
                        self._sleep(fallback)

        # Thread-lifecycle handoffs: start()/join() supply the
        # happens-before edges for these ownership transfers.
        self._thread = threading.Thread(  # handoff
            target=loop, name=f"manager-{self.manager_id}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self._wakeup.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None  # handoff
        for worker in self._workers.values():
            worker.stop(timeout)

    def kill(self) -> None:
        """Abrupt failure (for the §5.4 experiments): drop the channel and
        stop processing without draining anything."""
        self._stop.set()
        self._wakeup.set()
        self.channel.disconnect()
        if self._thread is not None:
            self._thread.join(1.0)
            self._thread = None  # handoff
