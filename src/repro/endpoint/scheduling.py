"""Agent-side task→manager scheduling policies (paper sections 4.3, 4.5).

"The funcX agent implements a greedy, randomized scheduling algorithm to
route tasks to managers ... the agent attempts to send tasks to managers
with suitable deployed containers.  If there is availability on several
managers, the agent allocates pending tasks in a randomized manner."

"Both the function routing and container deployment components are
implemented with modular interfaces via which users can integrate their
own algorithms" — hence the pluggable policy classes here, including the
round-robin and first-fit ablation baselines.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass
class ManagerView:
    """The agent's view of one manager's advertised state."""

    manager_id: str
    capacity: int                      # idle workers + prefetch allowance
    deployed_containers: frozenset[str] = frozenset()
    outstanding: int = 0               # tasks the agent sent, unacknowledged
    # The manager's *static* credit window (workers + prefetch): its share
    # of the endpoint-wide credit the agent advertises upstream.  Unlike
    # ``capacity`` it does not shrink as tasks are dispatched.
    window: int = 0

    @property
    def available(self) -> int:
        return max(0, self.capacity - self.outstanding)

    def suits(self, container_key: str | None) -> bool:
        """Whether this manager already deploys the required container."""
        if container_key is None or container_key == "RAW":
            return True
        return container_key in self.deployed_containers


class SchedulingPolicy(ABC):
    """Selects a manager for each pending task."""

    name = "abstract"

    @abstractmethod
    def select(self, managers: list[ManagerView], container_key: str | None) -> ManagerView | None:
        """Pick a manager with available capacity, or ``None``.

        Implementations must never over-commit: the returned manager has
        ``available > 0``; the caller increments ``outstanding``.
        """


class RandomizedScheduler(SchedulingPolicy):
    """The paper's policy: greedy on container suitability, random among ties.

    Managers with the task's container deployed are preferred (warm path);
    if none has capacity, any manager with capacity is used (the manager
    then deploys a container on demand).
    """

    name = "randomized"

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    def select(self, managers: list[ManagerView], container_key: str | None) -> ManagerView | None:
        available = [m for m in managers if m.available > 0]
        if not available:
            return None
        suitable = [m for m in available if m.suits(container_key)]
        pool = suitable or available
        return self._rng.choice(pool)


class RoundRobinScheduler(SchedulingPolicy):
    """Ablation: cycle through managers regardless of container affinity."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def select(self, managers: list[ManagerView], container_key: str | None) -> ManagerView | None:
        if not managers:
            return None
        n = len(managers)
        for offset in range(n):
            manager = managers[(self._cursor + offset) % n]
            if manager.available > 0:
                self._cursor = (self._cursor + offset + 1) % n
                return manager
        return None


class FirstFitScheduler(SchedulingPolicy):
    """Ablation: always pick the first manager with capacity.

    Concentrates load (good cache locality, poor balance) — the contrast
    case for the randomized policy's load spreading.
    """

    name = "first_fit"

    def select(self, managers: list[ManagerView], container_key: str | None) -> ManagerView | None:
        suitable_fallback = None
        for manager in managers:
            if manager.available <= 0:
                continue
            if manager.suits(container_key):
                return manager
            if suitable_fallback is None:
                suitable_fallback = manager
        return suitable_fallback


class ResourceAwareScheduler(SchedulingPolicy):
    """§8 future work: "developing resource-aware scheduling algorithms".

    Greedy on container suitability like the paper's policy, but among
    suitable managers picks the *least loaded* (lowest outstanding-to-
    capacity ratio), breaking ties randomly.  Balances heterogeneous
    managers better than uniform random choice when capacities differ.
    """

    name = "resource_aware"

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    def select(self, managers: list[ManagerView], container_key: str | None) -> ManagerView | None:
        available = [m for m in managers if m.available > 0]
        if not available:
            return None
        suitable = [m for m in available if m.suits(container_key)] or available

        def load(view: ManagerView) -> float:
            return view.outstanding / max(1, view.capacity)

        best = min(load(m) for m in suitable)
        tied = [m for m in suitable if load(m) == best]
        return self._rng.choice(tied)


_POLICIES: dict[str, type[SchedulingPolicy]] = {
    RandomizedScheduler.name: RandomizedScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    FirstFitScheduler.name: FirstFitScheduler,
    ResourceAwareScheduler.name: ResourceAwareScheduler,
}


def scheduler_by_name(name: str, seed: int | None = None) -> SchedulingPolicy:
    """Instantiate a policy by its registry name."""
    cls = _POLICIES.get(name)
    if cls is None:
        raise ValueError(f"unknown scheduler policy {name!r}; known: {sorted(_POLICIES)}")
    if cls in (RandomizedScheduler, ResourceAwareScheduler):
        return cls(seed=seed)
    return cls()
