"""Workers: execute one task at a time inside a container (paper §4.3).

"Workers persist within containers and each executes one task at a time.
Since workers have a single responsibility, they use blocking
communication to wait for functions from the manager.  Once a task is
received it is deserialized, executed, and the serialized results are
returned via the manager."

:func:`execute_task_message` is the pure execution core (also used
directly by tests and the breakdown bench); :class:`Worker` wraps it in
the blocking receive loop run on a thread by the live fabric.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from typing import Any, Callable

from repro.containers.runtime import ContainerInstance
from repro.core.batch import MAP_TAG, apply_batch
from repro.core.flowcontrol import CreditLedger
from repro.serialize import FuncXSerializer
from repro.serialize.traceback import RemoteExceptionWrapper
from repro.transport.messages import ResultMessage, TaskMessage


def execute_task_message(
    message: TaskMessage,
    serializer: FuncXSerializer,
    function_cache: dict[str, tuple[int, Callable[..., Any]]] | None = None,
    clock: Callable[[], float] | None = None,
    worker_id: str = "worker",
) -> ResultMessage:
    """Deserialize, execute and serialize one task.

    Map-tagged payloads (see :mod:`repro.core.batch`) are applied per
    item.  User-function exceptions become failure results carrying a
    serialized :class:`RemoteExceptionWrapper`; they never propagate.
    """
    clock = clock or time.monotonic
    start = clock()
    try:
        # Cache entries are validated against the shipped body so updated
        # functions (same id, new version) never execute stale code.
        func: Callable[..., Any] | None = None
        digest = hash(message.function_buffer)
        if function_cache is not None:
            cached = function_cache.get(message.function_id)
            if cached is not None and cached[0] == digest:
                func = cached[1]
        if func is None:
            func = serializer.deserialize(message.function_buffer)
            if function_cache is not None:
                function_cache[message.function_id] = (digest, func)

        if serializer.routing_tag(message.payload_buffer) == MAP_TAG:
            items = serializer.deserialize(message.payload_buffer)
            value: Any = apply_batch(func, items)
        else:
            args, kwargs = serializer.deserialize(message.payload_buffer)
            value = func(*args, **kwargs)

        result_buffer = serializer.serialize(value, routing_tag=message.task_id)
        success = True
    except Exception as exc:
        wrapper = RemoteExceptionWrapper(exc)
        result_buffer = serializer.serialize(wrapper, routing_tag=message.task_id)
        success = False
    end = clock()
    if message.trace is not None:
        message.trace.record("worker", worker_id, start=start, end=end,
                             success=success)
    return ResultMessage(
        sender=worker_id,
        task_id=message.task_id,
        success=success,
        result_buffer=result_buffer,
        execution_time=end - start,
        worker_id=worker_id,
        completed_at=end,
        trace=message.trace,
    )


class Worker:
    """A live worker thread bound to a container instance.

    Parameters
    ----------
    worker_id:
        Unique id within the manager.
    inbox:
        Queue the manager pushes :class:`TaskMessage` (or the ``STOP``
        sentinel) into — the worker's blocking receive.
    results:
        Queue the worker pushes :class:`ResultMessage` into, tagged with
        its own id so the manager can mark it idle.
    container:
        The container instance this worker persists within.
    credits:
        Optional manager :class:`CreditLedger` the worker returns its
        execution credit to the instant a task finishes — before the
        result even reaches the manager's collect pass, so freed
        capacity propagates upstream as early as possible (§4.7
        transfer/compute overlap).
    """

    STOP = object()

    def __init__(
        self,
        worker_id: str,
        inbox: "_queue.Queue[Any]",
        results: "_queue.Queue[tuple[str, ResultMessage]]",
        container: ContainerInstance,
        clock: Callable[[], float] | None = None,
        credits: CreditLedger | None = None,
    ):
        self.worker_id = worker_id
        self.inbox = inbox
        self.results = results
        self.container = container
        self.credits = credits
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self.serializer = FuncXSerializer()
        self._function_cache: dict[str, tuple[int, Callable[..., Any]]] = {}
        self._thread: threading.Thread | None = None
        self.tasks_executed = 0
        self.busy = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError(f"worker {self.worker_id} already started")
        # Thread-lifecycle handoff: start()/join() order these writes
        # against the worker thread's lifetime.
        self._thread = threading.Thread(  # handoff
            target=self._run, name=f"worker-{self.worker_id}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self.inbox.put(self.STOP)
        self._thread.join(timeout)
        self._thread = None  # handoff

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self.inbox.get()  # blocking receive (paper §4.3)
            if item is self.STOP:
                return
            assert isinstance(item, TaskMessage)
            self.busy = True
            result = execute_task_message(
                item,
                serializer=self.serializer,
                function_cache=self._function_cache,
                clock=self._clock,
                worker_id=self.worker_id,
            )
            self.tasks_executed += 1
            self.container.executions += 1
            self.busy = False
            if self.credits is not None:
                # The worker itself grants its slot's credit back to the
                # manager on completion (the credit loop's return edge).
                self.credits.release(1)
            self.results.put((self.worker_id, result))
