"""Exception hierarchy for the funcX reproduction.

Every error raised by the platform derives from :class:`FuncXError` so that
callers can catch platform faults distinctly from bugs in user function code
(which surface as :class:`TaskExecutionFailed` wrapping the remote traceback).
"""

from __future__ import annotations


class FuncXError(Exception):
    """Base class for all platform errors."""


# --------------------------------------------------------------------------
# Registry / lookup errors
# --------------------------------------------------------------------------
class NotFoundError(FuncXError):
    """A referenced entity (function, endpoint, task, user) does not exist."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"{kind} {identifier!r} not found")
        self.kind = kind
        self.identifier = identifier


class FunctionNotFound(NotFoundError):
    def __init__(self, function_id: str):
        super().__init__("function", function_id)


class EndpointNotFound(NotFoundError):
    def __init__(self, endpoint_id: str):
        super().__init__("endpoint", endpoint_id)


class TaskNotFound(NotFoundError):
    def __init__(self, task_id: str):
        super().__init__("task", task_id)


class ContainerNotFound(NotFoundError):
    def __init__(self, container_id: str):
        super().__init__("container", container_id)


# --------------------------------------------------------------------------
# Authentication / authorization errors
# --------------------------------------------------------------------------
class AuthError(FuncXError):
    """Base class for authentication and authorization failures."""


class AuthenticationFailed(AuthError):
    """The presented token is missing, expired, revoked, or malformed."""


class AuthorizationFailed(AuthError):
    """The authenticated identity lacks a required scope or permission."""

    def __init__(self, identity: str, required: str):
        super().__init__(
            f"identity {identity!r} is not authorized (requires {required!r})"
        )
        self.identity = identity
        self.required = required


class UnknownTenant(AuthError):
    """The authenticated identity has no admission policy and the
    controller runs in strict mode (unknown tenants are rejected)."""

    def __init__(self, tenant: str):
        super().__init__(
            f"tenant {tenant!r} has no admission policy (strict admission)"
        )
        self.tenant = tenant


# --------------------------------------------------------------------------
# Admission-control errors
# --------------------------------------------------------------------------
class ThrottleExceeded(FuncXError):
    """Per-tenant admission control rejected the request (HTTP 429 shape).

    Raised when the tenant's token bucket is empty (submit rate above the
    sustained allowance) or its max-outstanding quota is full.  The
    server-side analogue of the SDK's ``ThrottledBaseClient``.
    """

    def __init__(self, tenant: str, reason: str, retry_after: float = 0.0):
        super().__init__(
            f"tenant {tenant!r} throttled: {reason}"
            + (f" (retry after {retry_after:.3f}s)" if retry_after > 0 else "")
        )
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after


class ShardDraining(FuncXError):
    """The service shard owning the target endpoint refuses new work.

    Submissions are rejected (HTTP 503 shape) while operators drain a
    shard for restart; already-queued tasks keep dispatching.
    """

    def __init__(self, shard_index: int):
        super().__init__(
            f"service shard {shard_index} is draining; resubmit shortly"
        )
        self.shard_index = shard_index


# --------------------------------------------------------------------------
# Serialization errors
# --------------------------------------------------------------------------
class SerializationError(FuncXError):
    """No registered serialization method could encode the object."""


class DeserializationError(FuncXError):
    """A buffer could not be decoded (bad header, unknown method, corrupt)."""


class PayloadTooLarge(FuncXError):
    """The serialized payload exceeds the service's size cap.

    The paper limits data passed through the cloud service and directs users
    toward out-of-band transfer (Globus) for large data (section 4.6).
    """

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"payload of {size} bytes exceeds service limit of {limit} bytes; "
            "use out-of-band data staging for large data"
        )
        self.size = size
        self.limit = limit


# --------------------------------------------------------------------------
# Task lifecycle errors
# --------------------------------------------------------------------------
class TaskError(FuncXError):
    """Base class for task lifecycle errors."""


class TaskPending(TaskError):
    """Result requested before the task has completed."""

    def __init__(self, task_id: str, status: str):
        super().__init__(f"task {task_id} is still {status}")
        self.task_id = task_id
        self.status = status


class TaskExecutionFailed(TaskError):
    """The user function raised; carries the remote traceback text."""

    def __init__(self, remote_traceback: str):
        super().__init__(f"remote execution failed:\n{remote_traceback}")
        self.remote_traceback = remote_traceback


class TaskCancelled(TaskError):
    """The task was cancelled before completion."""


class MaxRetriesExceeded(TaskError):
    """A task failed more times than its retry budget permits."""

    def __init__(self, task_id: str, attempts: int):
        super().__init__(f"task {task_id} exhausted {attempts} attempts")
        self.task_id = task_id
        self.attempts = attempts


# --------------------------------------------------------------------------
# Transport / connectivity errors
# --------------------------------------------------------------------------
class TransportError(FuncXError):
    """Base class for channel-level failures."""


class ChannelClosed(TransportError):
    """Send or receive attempted on a closed channel."""


class Disconnected(TransportError):
    """The remote peer is unreachable (simulated network partition)."""


class HeartbeatMissed(TransportError):
    """A component exceeded its heartbeat grace period and is presumed lost."""

    def __init__(self, component: str, last_seen: float):
        super().__init__(f"{component} missed heartbeats (last seen t={last_seen:.3f})")
        self.component = component
        self.last_seen = last_seen


# --------------------------------------------------------------------------
# Provider / provisioning errors
# --------------------------------------------------------------------------
class ProviderError(FuncXError):
    """Base class for resource-provider failures."""


class AllocationExhausted(ProviderError):
    """The allocation (node-hours or instance cap) is depleted."""


class SubmitFailed(ProviderError):
    """The scheduler or cloud API rejected the pilot-job submission."""


class InvalidJobState(ProviderError):
    """A job transition was requested from an incompatible state."""


# --------------------------------------------------------------------------
# Endpoint errors
# --------------------------------------------------------------------------
class EndpointError(FuncXError):
    """Base class for endpoint-side failures."""


class NoSuitableManager(EndpointError):
    """No manager advertises capacity/containers compatible with the task."""


class WorkerLost(EndpointError):
    """A worker died while holding a task."""


class ManagerLost(EndpointError):
    """A manager missed its heartbeat window while holding tasks."""


# --------------------------------------------------------------------------
# Simulation errors
# --------------------------------------------------------------------------
class SimulationError(FuncXError):
    """Base class for discrete-event-simulation faults."""


class ClockMonotonicityViolation(SimulationError):
    """An event was scheduled in the past — a kernel invariant violation."""
