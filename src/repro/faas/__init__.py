"""Commercial FaaS comparators for the Table 1 latency study."""

from repro.faas.commercial import (
    PROVIDER_MODELS,
    CommercialFaaSModel,
    InvocationSample,
    LatencyModel,
)

__all__ = [
    "CommercialFaaSModel",
    "LatencyModel",
    "InvocationSample",
    "PROVIDER_MODELS",
]
