"""Closed-source FaaS platform models (paper §5.1, Table 1).

Amazon Lambda, Google Cloud Functions and Azure Functions cannot be
invoked from this offline reproduction; their rows of Table 1 are
reproduced by latency models calibrated to the paper's own measurements
(the funcX row, by contrast, is *measured* through our real stack).

Each model captures: warm overhead, cold overhead, function time, the
measured dispersion, and the provider's warm-cache lifetime (10, 5 and 5
minutes for Google, Amazon and Azure respectively, §5.1) so the
cold/warm state machine behaves like the real service under arbitrary
invocation schedules.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """A clipped-lognormal latency distribution (milliseconds).

    Parameterized directly by the mean/std the paper reports; lognormal
    matches the heavy right tail visible in the cold-start std devs.
    """

    mean: float
    std: float
    floor: float = 0.1

    def sample(self, rng: random.Random) -> float:
        if self.std <= 0:
            return max(self.floor, self.mean)
        # Convert mean/std of the target distribution to lognormal params.
        variance = self.std**2
        mu = math.log(self.mean**2 / math.sqrt(variance + self.mean**2))
        sigma = math.sqrt(math.log(1 + variance / self.mean**2))
        return max(self.floor, rng.lognormvariate(mu, sigma))


@dataclass(frozen=True)
class InvocationSample:
    """One simulated invocation's timing decomposition (ms)."""

    overhead: float
    function_time: float
    cold: bool

    @property
    def total(self) -> float:
        return self.overhead + self.function_time


class CommercialFaaSModel:
    """Stateful provider model: warm containers expire after the cache TTL.

    Parameters
    ----------
    name:
        Provider label.
    warm_overhead / cold_overhead:
        Latency models for the invocation overhead (Table 1 columns).
    warm_function / cold_function:
        Latency models for reported function execution time.
    cache_ttl:
        Seconds a function instance stays warm after an invocation.
    """

    def __init__(
        self,
        name: str,
        warm_overhead: LatencyModel,
        cold_overhead: LatencyModel,
        warm_function: LatencyModel,
        cold_function: LatencyModel,
        cache_ttl: float,
        seed: int | None = None,
    ):
        self.name = name
        self.warm_overhead = warm_overhead
        self.cold_overhead = cold_overhead
        self.warm_function = warm_function
        self.cold_function = cold_function
        self.cache_ttl = cache_ttl
        self._rng = random.Random(seed)
        self._warm_until: float | None = None

    # ------------------------------------------------------------------
    def is_warm(self, now: float) -> bool:
        return self._warm_until is not None and now <= self._warm_until

    def invoke(self, now: float) -> InvocationSample:
        """Invoke at wall/simulated time ``now`` (seconds)."""
        cold = not self.is_warm(now)
        if cold:
            overhead = self.cold_overhead.sample(self._rng)
            function_time = self.cold_function.sample(self._rng)
        else:
            overhead = self.warm_overhead.sample(self._rng)
            function_time = self.warm_function.sample(self._rng)
        self._warm_until = now + self.cache_ttl
        return InvocationSample(overhead=overhead, function_time=function_time, cold=cold)

    def sample_many(self, count: int, cold: bool) -> list[InvocationSample]:
        """Draw ``count`` invocations pinned to one temperature.

        The Table 1 methodology pins state explicitly: cold runs invoke
        every 15 minutes (past every provider's cache TTL); warm runs
        invoke back-to-back.
        """
        samples = []
        interval = self.cache_ttl + 300.0 if cold else 0.001
        now = 0.0
        self._warm_until = None
        for _ in range(count):
            sample = self.invoke(now)
            samples.append(sample)
            now += interval
        if not cold:
            # first sample was necessarily cold; replace it with a warm one
            samples[0] = self.invoke(now)
        return samples


def _models(seed: int | None = None) -> dict[str, CommercialFaaSModel]:
    """Provider models calibrated to Table 1 (all values in ms)."""
    return {
        "azure": CommercialFaaSModel(
            name="azure",
            warm_overhead=LatencyModel(118.0, 13.0),
            cold_overhead=LatencyModel(1327.7, 1200.0),
            warm_function=LatencyModel(12.0, 2.0),
            cold_function=LatencyModel(32.0, 8.0),
            cache_ttl=5 * 60.0,
            seed=seed,
        ),
        "google": CommercialFaaSModel(
            name="google",
            warm_overhead=LatencyModel(80.6, 11.0),
            cold_overhead=LatencyModel(203.8, 135.0),
            warm_function=LatencyModel(5.0, 1.5),
            cold_function=LatencyModel(19.0, 6.0),
            cache_ttl=10 * 60.0,
            seed=None if seed is None else seed + 1,
        ),
        "amazon": CommercialFaaSModel(
            name="amazon",
            warm_overhead=LatencyModel(100.0, 6.5),
            cold_overhead=LatencyModel(468.2, 70.0),
            warm_function=LatencyModel(0.3, 0.1),
            cold_function=LatencyModel(0.6, 0.2),
            cache_ttl=5 * 60.0,
            seed=None if seed is None else seed + 2,
        ),
    }


#: Default provider models with a fixed seed for reproducible tables.
PROVIDER_MODELS: dict[str, CommercialFaaSModel] = _models(seed=20200507)
