"""Live-fabric deployment helper.

Wires a complete funcX installation in one process: auth service, web
service, forwarders, and endpoints with real worker threads executing
real Python functions.  This is the entry point examples and integration
tests use:

.. code-block:: python

    with LocalDeployment() as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint("my-laptop", nodes=1)
        fid = client.register_function(my_function)
        future = client.submit(fid, ep, 1, 2)
        print(future.result(timeout=10))

Network latencies are injectable per deployment so the latency benchmarks
can model WAN placement (the paper submits from an ANL login node 18.2 ms
from the service, §5.1).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass

from repro.analysis.sanitizer import (
    AccessRecorder,
    LockOrderRecorder,
    ProtocolRecorder,
    sanitize_access,
    sanitize_ledger,
    sanitize_lock,
    sanitize_pubsub,
    sanitize_result_stream,
)
from repro.auth.service import AuthService, Identity
from repro.core.client import FuncXClient
from repro.core.forwarder import Forwarder
from repro.core.service import FuncXService, ServiceConfig
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.metrics.registry import MetricsRegistry
from repro.providers.base import ExecutionProvider
from repro.transport.channel import Network


@dataclass
class DeploymentTimings:
    """Injectable latency model for a deployment.

    Attributes
    ----------
    service_endpoint_latency:
        One-way service↔endpoint (forwarder↔agent) channel latency, s.
    service_endpoint_transfer_cost:
        Per-transfer serial occupancy of the service↔endpoint link, s —
        models per-message framing/syscall overhead.  Individual sends
        serialize on the link; a coalesced batch pays it once, which is
        what message batching amortizes.
    manager_latency:
        One-way agent↔manager latency, s.
    manager_transfer_cost:
        Per-transfer serial occupancy of agent↔manager links, s.
    service_overhead:
        Synchronous per-request web-service processing time, s (the ts
        component: auth + store round trips).
    """

    service_endpoint_latency: float = 0.0
    service_endpoint_transfer_cost: float = 0.0
    manager_latency: float = 0.0
    manager_transfer_cost: float = 0.0
    service_overhead: float = 0.0


@dataclass
class _EndpointHandle:
    endpoint: Endpoint
    forwarder: Forwarder


class LocalDeployment:
    """A complete in-process funcX deployment (context manager).

    Parameters
    ----------
    timings:
        Channel/service latency model (defaults to zero latency).
    service_config:
        Web-service tunables; ``request_overhead`` is overridden by
        ``timings.service_overhead`` when that is non-zero.
    sanitize_locks:
        Wrap the fabric's locks in :class:`repro.analysis.sanitizer.
        SanitizedLock` so lock-order edges, contention, and hold-time
        outliers are recorded at runtime (``self.lock_recorder``).
    """

    def __init__(
        self,
        timings: DeploymentTimings | None = None,
        service_config: ServiceConfig | None = None,
        seed: int | None = None,
        sanitize_locks: bool = False,
    ):
        self.timings = timings or DeploymentTimings()
        config = service_config or ServiceConfig()
        if self.timings.service_overhead > 0:
            config = dataclasses.replace(
                config, request_overhead=self.timings.service_overhead)
        self.auth = AuthService()
        # One registry shared by every component of the deployment — the
        # process-wide view the ``repro metrics`` CLI exports.
        self.metrics = MetricsRegistry()
        self.service = FuncXService(auth=self.auth, config=config,
                                    metrics=self.metrics)
        self.network = Network(seed=seed)
        self._seed = seed
        self._handles: dict[str, _EndpointHandle] = {}
        self._identities: dict[str, Identity] = {}
        self._lock = threading.RLock()
        self._closed = False
        # Runtime lock-order sanitizer (opt-in).  Tracing, metrics, and
        # invariant-registry locks stay unwrapped on purpose: they are
        # leaf locks acquired from inside every component, and wrapping
        # them would add runtime edges the static graph cannot model.
        self.lock_recorder: LockOrderRecorder | None = None
        self.protocol_recorder: ProtocolRecorder | None = None
        self.access_recorder: AccessRecorder | None = None
        if sanitize_locks:
            self.lock_recorder = LockOrderRecorder(metrics=self.metrics)
            # The service plane's state locks live on the shards now; the
            # facade itself is stateless.
            for shard in self.service.shards:
                sanitize_lock(shard, self.lock_recorder,
                              class_name="ServiceShard._lock")
            # Resource-protocol twin: record every credit / subscription /
            # stream event so chaos runs can assert the runtime trace is a
            # subset of the statically-declared protocol sites.
            self.protocol_recorder = ProtocolRecorder(metrics=self.metrics)
            sanitize_pubsub(self.service.pubsub, self.protocol_recorder)
            for shard in self.service.shards:
                sanitize_result_stream(shard.result_stream,
                                       self.protocol_recorder)
            # Thread-role twin: tag shared-attribute accesses with the
            # accessing thread's role so chaos runs can assert observed
            # cross-role attrs ⊆ the statically inferred shared-set.
            self.access_recorder = AccessRecorder(metrics=self.metrics)

    # ------------------------------------------------------------------
    # identities & clients
    # ------------------------------------------------------------------
    def register_user(self, username: str, provider: str = "institution") -> Identity:
        identity = self.auth.register_identity(username, provider=provider)
        self._identities[username] = identity
        return identity

    def client(self, username: str = "researcher") -> FuncXClient:
        """An SDK client for ``username`` (registered on first use)."""
        identity = self._identities.get(username) or self.register_user(username)
        return FuncXClient(self.service, identity)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def create_endpoint(
        self,
        name: str,
        nodes: int = 1,
        config: EndpointConfig | None = None,
        owner: str = "endpoint-admin",
        provider: ExecutionProvider | None = None,
        start: bool = True,
        public: bool = True,
    ) -> str:
        """Deploy an endpoint and its forwarder; returns the endpoint id."""
        with self._lock:
            if self._closed:
                raise RuntimeError("deployment is closed")
        # Endpoints are native auth clients (§4.8).
        ep_identity, ep_token = self.auth.endpoint_client_flow(name)
        endpoint_id = self.service.register_endpoint(
            ep_token.token, name=name, public=public,
            metadata={"nodes": nodes},
        )
        channel = self.network.create_channel(
            f"svc<->{name}", latency=self.timings.service_endpoint_latency,
            transfer_cost=self.timings.service_endpoint_transfer_cost,
        )
        config = config or EndpointConfig()
        forwarder = Forwarder(
            service=self.service,
            endpoint_id=endpoint_id,
            channel_end=channel.left,
            heartbeat_period=config.heartbeat_period,
            heartbeat_grace=config.heartbeat_grace,
            batching=config.message_batching,
            event_driven=config.event_driven,
            flow_control=config.flow_control,
            adaptive_batching=config.adaptive_batching,
        )
        endpoint = Endpoint(
            endpoint_id=endpoint_id,
            forwarder_channel=channel.right,
            config=config,
            network=self.network,
            nodes=nodes,
            provider=provider,
            manager_latency=self.timings.manager_latency,
            manager_transfer_cost=self.timings.manager_transfer_cost,
            metrics=self.metrics,
        )
        handle = _EndpointHandle(endpoint=endpoint, forwarder=forwarder)
        if self.lock_recorder is not None:
            # Wrap before any thread starts — the swap is not atomic.
            recorder = self.lock_recorder
            sanitize_lock(forwarder, recorder, class_name="Forwarder._lock")
            sanitize_lock(endpoint, recorder, class_name="Endpoint._lock")
            sanitize_lock(endpoint.agent, recorder,
                          class_name="FuncXAgent._lock")
            protocol_recorder = self.protocol_recorder
            for manager in endpoint.managers.values():
                sanitize_lock(manager, recorder, class_name="Manager._lock")
                if protocol_recorder is not None:
                    sanitize_ledger(manager, protocol_recorder)

            def _on_manager(m, _rec=recorder, _prec=protocol_recorder):
                sanitize_lock(m, _rec, class_name="Manager._lock")
                if _prec is not None:
                    sanitize_ledger(m, _prec)

            endpoint.on_manager_created = _on_manager
            sanitize_lock(self.service.task_queue(endpoint_id), recorder,
                          class_name="ReliableQueue._lock")
            sanitize_lock(self.service.result_queue(endpoint_id), recorder,
                          class_name="ReliableQueue._lock")
            access = self.access_recorder
            if access is not None:
                # Thread-role twin: track the attrs the static pass puts
                # in the cross-role shared-set (and the ones it waived —
                # a waiver a chaos run disproves should fail the gate).
                for end in (channel.left, channel.right):
                    sanitize_access(end, access,
                                    ("sent_count", "received_count"),
                                    class_name="ChannelEnd")
                sanitize_access(forwarder, access,
                                ("incarnation", "_registered_incarnation"),
                                class_name="Forwarder")
                sanitize_access(endpoint.agent, access,
                                ("_last_heartbeat", "_last_credit_sent"),
                                class_name="FuncXAgent")
                for manager in endpoint.managers.values():
                    sanitize_access(manager, access,
                                    ("_last_heartbeat", "_last_advertised"),
                                    class_name="Manager")
        with self._lock:
            self._handles[endpoint_id] = handle
        if start:
            forwarder.start()
            endpoint.start()
            endpoint.wait_ready()
            # Also wait for the agent's registration to reach the forwarder
            # so the endpoint is observably connected before we return.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if self.service.endpoints.get(endpoint_id).connected:
                    break
                time.sleep(0.005)
        return endpoint_id

    def endpoint(self, endpoint_id: str) -> Endpoint:
        return self._handles[endpoint_id].endpoint

    def forwarder(self, endpoint_id: str) -> Forwarder:
        return self._handles[endpoint_id].forwarder

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._handles)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, endpoint_id: str, timeout: float = 30.0) -> bool:
        """Wait until the endpoint has no outstanding tasks."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.service.outstanding_tasks(endpoint_id) == 0:
                return True
            time.sleep(0.005)
        return False

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
        for handle in handles:
            handle.endpoint.stop()
            handle.forwarder.stop()
        self.service.close()
        self.network.close_all()

    def __enter__(self) -> "LocalDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
