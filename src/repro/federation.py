"""Client-side federation: scheduling across many endpoints.

The paper positions funcX as "a foundational research platform" for
"multi-level function scheduling" (§1) and demonstrates a workload
"simultaneously using two funcX endpoints provisioning heterogeneous
resources" (§6, HEP).  This module provides that layer: a
:class:`FederatedExecutor` that spreads submissions over a set of
endpoints according to a pluggable selection policy, skipping endpoints
that are offline.
"""

from __future__ import annotations

import itertools
import random
import threading
from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence

from repro.core.client import FuncXClient
from repro.core.futures import FuncXFuture
from repro.errors import EndpointError


class EndpointSelectionPolicy(ABC):
    """Chooses which endpoint receives the next task."""

    name = "abstract"

    @abstractmethod
    def select(self, candidates: Sequence[str], client: FuncXClient) -> str:
        """Pick one endpoint id from the non-empty ``candidates``."""


class RoundRobinEndpoints(EndpointSelectionPolicy):
    """Cycle through endpoints — the §6 HEP pattern."""

    name = "round_robin"

    def __init__(self):
        self._counter = itertools.count()

    def select(self, candidates: Sequence[str], client: FuncXClient) -> str:
        return candidates[next(self._counter) % len(candidates)]


class RandomEndpoints(EndpointSelectionPolicy):
    """Uniform random choice."""

    name = "random"

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    def select(self, candidates: Sequence[str], client: FuncXClient) -> str:
        return self._rng.choice(list(candidates))


class LeastLoadedEndpoints(EndpointSelectionPolicy):
    """Send to the endpoint with the fewest outstanding tasks.

    Uses the service's monitoring view (queued + dispatched + running per
    endpoint) — the information a multi-level scheduler would consume.
    The lookup is an O(1) per-shard counter read (no task-table scan), so
    the policy stays cheap even with millions of open tasks.
    """

    name = "least_loaded"

    def select(self, candidates: Sequence[str], client: FuncXClient) -> str:
        return min(
            candidates, key=lambda ep: client.service.outstanding_tasks(ep)
        )


class FederatedExecutor:
    """Submit tasks across a federation of endpoints.

    Parameters
    ----------
    client:
        An authenticated SDK client.
    endpoints:
        The endpoint ids in the federation.
    policy:
        Selection policy; defaults to round robin.
    require_connected:
        Skip endpoints whose agents are not currently connected; raises
        :class:`EndpointError` if none are eligible.
    """

    def __init__(
        self,
        client: FuncXClient,
        endpoints: Iterable[str],
        policy: EndpointSelectionPolicy | None = None,
        require_connected: bool = True,
    ):
        self.client = client
        self._endpoints = list(dict.fromkeys(endpoints))
        if not self._endpoints:
            raise ValueError("federation requires at least one endpoint")
        self.policy = policy or RoundRobinEndpoints()
        self.require_connected = require_connected
        self._lock = threading.Lock()
        self.submissions: dict[str, int] = {ep: 0 for ep in self._endpoints}

    # ------------------------------------------------------------------
    def eligible_endpoints(self) -> list[str]:
        if not self.require_connected:
            return list(self._endpoints)
        eligible = [
            ep
            for ep in self._endpoints
            if self.client.service.endpoints.get(ep).connected
        ]
        return eligible

    def _choose(self) -> str:
        candidates = self.eligible_endpoints()
        if not candidates:
            raise EndpointError("no connected endpoint in the federation")
        chosen = self.policy.select(candidates, self.client)
        with self._lock:
            self.submissions[chosen] = self.submissions.get(chosen, 0) + 1
        return chosen

    # ------------------------------------------------------------------
    def submit(self, function_id: str, *args: Any, **kwargs: Any) -> FuncXFuture:
        """Submit one invocation to a policy-chosen endpoint."""
        endpoint_id = self._choose()
        future = self.client.submit(function_id, endpoint_id, *args, **kwargs)
        future.endpoint_id = endpoint_id  # type: ignore[attr-defined]
        return future

    def map(
        self,
        function_id: str,
        iterator: Iterable[Any],
        batch_size: int | None = None,
        batch_count: int | None = None,
    ) -> list[FuncXFuture]:
        """Partition an iterator into batches spread across endpoints.

        Unlike single-endpoint :meth:`FuncXClient.map`, each batch may
        land on a different endpoint; returns the batch futures.
        """
        from repro.core.batch import MAP_TAG, partition_iterator

        futures: list[FuncXFuture] = []
        for batch in partition_iterator(iterator, batch_size=batch_size,
                                        batch_count=batch_count):
            endpoint_id = self._choose()
            payload = self.client.serializer.serialize(batch, routing_tag=MAP_TAG)
            task_id = self.client.service.submit(
                self.client._token(), function_id, endpoint_id, payload
            )
            future = self.client._future_for(task_id)
            future.endpoint_id = endpoint_id  # type: ignore[attr-defined]
            futures.append(future)
        return futures

    # ------------------------------------------------------------------
    def add_endpoint(self, endpoint_id: str) -> None:
        with self._lock:
            if endpoint_id not in self._endpoints:
                self._endpoints.append(endpoint_id)
                self.submissions.setdefault(endpoint_id, 0)

    def remove_endpoint(self, endpoint_id: str) -> bool:
        with self._lock:
            if endpoint_id in self._endpoints:
                self._endpoints.remove(endpoint_id)
                return True
            return False

    @property
    def endpoints(self) -> tuple[str, ...]:
        return tuple(self._endpoints)
