"""Measurement utilities: latency statistics, stage timers, timelines."""

from repro.metrics.stats import LatencyRecorder, SummaryStats, summarize
from repro.metrics.timeline import Timeline
from repro.metrics.timers import StageTimer, Stopwatch

__all__ = [
    "SummaryStats",
    "summarize",
    "LatencyRecorder",
    "Timeline",
    "Stopwatch",
    "StageTimer",
]
