"""Measurement utilities: latency statistics, stage timers, timelines,
and the process-wide metrics registry."""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_records,
)
from repro.metrics.stats import LatencyRecorder, SummaryStats, summarize
from repro.metrics.timeline import Timeline
from repro.metrics.timers import StageTimer, Stopwatch

__all__ = [
    "SummaryStats",
    "summarize",
    "LatencyRecorder",
    "Timeline",
    "Stopwatch",
    "StageTimer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_records",
]
