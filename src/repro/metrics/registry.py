"""A process-wide metrics registry: counters, gauges, histograms.

Replaces the ad-hoc integer counters that used to live on the service,
forwarder, agent and manager.  One registry is shared by every component
of a deployment (see :class:`~repro.fabric.LocalDeployment`), metrics are
identified by name plus a small label set (``counter("forwarder.tasks_forwarded",
endpoint=...)``), and the whole registry exports as JSON-lines or an
aligned text summary for the ``repro metrics`` CLI.

The clock is injectable so tests and simulations can stamp snapshots
deterministically.  All instruments are thread-safe — the live fabric
increments from forwarder/agent/manager/worker threads concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets (seconds) — spans µs-scale span recording to
#: multi-second end-to-end task latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for count-valued histograms (batch sizes): powers of two up
#: to the forwarder's per-step dispatch bound.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

#: Bounded per-histogram sample reservoir used for percentile summaries.
RESERVOIR_SIZE = 4096


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down, or track a live callable."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge pull its value from ``fn`` at read time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return float("nan")

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution: bucketed counts plus a bounded sample reservoir.

    Buckets give cheap fixed-memory distribution export; the reservoir
    (most recent :data:`RESERVOIR_SIZE` observations) backs the
    mean/percentile summaries the CLI and benches print.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: deque[float] = deque(maxlen=RESERVOIR_SIZE)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._samples.append(value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> dict[str, float]:
        """Mean/median/p95/p99/min/max over the sample reservoir."""
        import numpy as np

        with self._lock:
            if not self._count:
                return {"count": 0}
            samples = np.asarray(self._samples, dtype=float)
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        return {
            "count": count,
            "mean": total / count,
            "min": minimum,
            "max": maximum,
            "median": float(np.median(samples)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            buckets = {str(b): c for b, c in zip(self.buckets, self._bucket_counts)}
            buckets["+inf"] = self._bucket_counts[-1]
            record = {
                "kind": self.kind, "name": self.name, "labels": dict(self.labels),
                "count": self._count, "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": buckets,
            }
        if record["count"]:
            record.update({k: v for k, v in self.summary().items()
                           if k not in record})
        return record


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments.

    Parameters
    ----------
    clock:
        Injectable time source used to stamp exported snapshots and by
        :meth:`timer`.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, LabelKey], Any] = {}

    # -- instrument factories ------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: dict[str, Any],
                       factory: Callable[[], Any]) -> Any:
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(
            "counter", name, labels, lambda: Counter(name, _label_key(labels)))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(
            "gauge", name, labels, lambda: Gauge(name, _label_key(labels)))

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels: Any) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels,
            lambda: Histogram(name, _label_key(labels), buckets=buckets))

    @contextmanager
    def timer(self, name: str, **labels: Any) -> Iterator[None]:
        """Time a block into the histogram ``name`` (seconds)."""
        histogram = self.histogram(name, **labels)
        start = self._clock()
        try:
            yield
        finally:
            histogram.observe(self._clock() - start)

    # -- export --------------------------------------------------------------
    def instruments(self) -> list[Any]:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> list[dict[str, Any]]:
        """One record per instrument, stamped with the registry clock."""
        now = self._clock()
        records = []
        for metric in self.instruments():
            record = metric.snapshot()
            record["at"] = now
            records.append(record)
        return records

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Read a counter/gauge value without creating it."""
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, _label_key(labels)))
            if metric is not None:
                return metric.value
        return default

    def render_text(self) -> str:
        """An aligned human-readable summary (the ``repro metrics`` view)."""
        return render_records(self.snapshot())

    def dump_jsonl(self, path: str) -> int:
        records = self.snapshot()
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    @staticmethod
    def load_jsonl(path: str) -> list[dict[str, Any]]:
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


def render_records(records: list[dict[str, Any]]) -> str:
    """Render exported metric records as an aligned text table."""
    lines = []
    for record in records:
        labels = record.get("labels") or {}
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        full = record["name"] + (f"{{{label_text}}}" if label_text else "")
        if record["kind"] == "histogram":
            if record.get("count"):
                lines.append(
                    f"{full:<52s} count={record['count']:<8d} "
                    f"mean={record.get('mean', 0.0) * 1e3:9.3f}ms "
                    f"p95={record.get('p95', 0.0) * 1e3:9.3f}ms "
                    f"max={(record.get('max') or 0.0) * 1e3:9.3f}ms"
                )
            else:
                lines.append(f"{full:<52s} count=0")
        else:
            value = record.get("value", 0.0)
            text = f"{value:.0f}" if float(value).is_integer() else f"{value:.4f}"
            lines.append(f"{full:<52s} {text}")
    return "\n".join(lines)
