"""Latency statistics (vectorized with NumPy).

Every evaluation table reports means and standard deviations of latency
samples; these helpers centralize that computation so benches, tests and
the harness agree on definitions (std is the sample standard deviation,
ddof=1, matching how the paper reports "Std. Dev.").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a latency sample (all values in the input's units)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float
    p99: float

    def scaled(self, factor: float) -> "SummaryStats":
        """Unit conversion (e.g. seconds → milliseconds)."""
        return SummaryStats(
            count=self.count,
            mean=self.mean * factor,
            std=self.std * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
            median=self.median * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
        )

    def row(self, label: str, unit: str = "ms") -> str:
        """One formatted table row (used by the bench harnesses)."""
        return (
            f"{label:<28s} mean={self.mean:10.2f}{unit} "
            f"std={self.std:9.2f}{unit} min={self.minimum:9.2f}{unit} "
            f"max={self.maximum:10.2f}{unit} n={self.count}"
        )


def summarize(samples: Iterable[float] | Sequence[float] | np.ndarray) -> SummaryStats:
    """Compute :class:`SummaryStats` over a sample of latencies."""
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples,
                     dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
    )


class LatencyRecorder:
    """Accumulates latency samples by label, then summarizes.

    Thread-safe: workers on the live fabric record concurrently.
    """

    def __init__(self):
        import threading

        self._lock = threading.Lock()
        self._samples: dict[str, list[float]] = {}

    def record(self, label: str, value: float) -> None:
        with self._lock:
            self._samples.setdefault(label, []).append(value)

    def record_many(self, label: str, values: Iterable[float]) -> None:
        with self._lock:
            self._samples.setdefault(label, []).extend(values)

    def labels(self) -> list[str]:
        with self._lock:
            return sorted(self._samples)

    def samples(self, label: str) -> np.ndarray:
        with self._lock:
            return np.asarray(self._samples.get(label, ()), dtype=float)

    def summary(self, label: str) -> SummaryStats:
        return summarize(self.samples(label))

    def count(self, label: str) -> int:
        with self._lock:
            return len(self._samples.get(label, ()))

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
