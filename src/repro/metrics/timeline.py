"""Time-series recording for the timeline figures (6, 7, 8).

A :class:`Timeline` stores ``(time, value)`` points per series and can
resample them onto a regular grid — which is exactly what the paper's
"pods over time" and "task latency over time" plots need.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable

import numpy as np


class Timeline:
    """Multi-series append-only time series store."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series: dict[str, tuple[list[float], list[float]]] = {}

    def record(self, series: str, time: float, value: float) -> None:
        with self._lock:
            times, values = self._series.setdefault(series, ([], []))
            if times and time < times[-1]:
                # keep sorted under out-of-order arrival (threads race)
                idx = bisect.bisect_right(times, time)
                times.insert(idx, time)
                values.insert(idx, value)
            else:
                times.append(time)
                values.append(value)

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """The raw (times, values) arrays for one series."""
        with self._lock:
            times, values = self._series.get(name, ([], []))
            return np.asarray(times, dtype=float), np.asarray(values, dtype=float)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(t) for t, _ in self._series.values())

    # -- derived views ------------------------------------------------------
    def step_resample(self, name: str, grid: Iterable[float]) -> np.ndarray:
        """Sample-and-hold resampling onto ``grid`` (for count series).

        The value at grid point g is the most recent recorded value at or
        before g (0 before the first record) — the natural view for "number
        of active pods" style series.
        """
        times, values = self.series(name)
        grid_arr = np.asarray(list(grid), dtype=float)
        if times.size == 0:
            return np.zeros_like(grid_arr)
        idx = np.searchsorted(times, grid_arr, side="right") - 1
        out = np.where(idx >= 0, values[np.clip(idx, 0, None)], 0.0)
        return out

    def bin_mean(self, name: str, bin_width: float) -> tuple[np.ndarray, np.ndarray]:
        """Mean value per time bin (for latency-over-time plots)."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        times, values = self.series(name)
        if times.size == 0:
            return np.array([]), np.array([])
        bins = np.floor(times / bin_width).astype(int)
        unique_bins = np.unique(bins)
        centers = (unique_bins + 0.5) * bin_width
        means = np.array([values[bins == b].mean() for b in unique_bins])
        return centers, means

    def max_over(self, name: str) -> float:
        _, values = self.series(name)
        if values.size == 0:
            raise ValueError(f"series {name!r} is empty")
        return float(values.max())

    def rate_of_events(self, name: str, window: float) -> float:
        """Events per second over the last ``window`` seconds of the series."""
        times, _ = self.series(name)
        if times.size == 0 or window <= 0:
            return 0.0
        horizon = times[-1] - window
        return float((times >= horizon).sum() / window)
