"""Stage timers for the latency-breakdown instrumentation (figure 4).

The paper instruments a warm invocation into four stages: web-service
time (ts), forwarder time (tf), endpoint time (te) and function execution
(tw).  :class:`StageTimer` accumulates named stage durations per task so
the breakdown benchmark can report the same decomposition.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


class Stopwatch:
    """Minimal start/stop timer against an injectable clock."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.perf_counter
        self._started_at: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = self._clock()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += self._clock() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self._started_at = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._started_at is not None


class StageTimer:
    """Accumulates named stage durations, e.g. ts/tf/te/tw per task.

    Thread-safe: stages of one task may be timed on different threads
    (service thread, forwarder thread, worker thread).
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        import threading

        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._stages: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - start)

    def add(self, name: str, duration: float) -> None:
        with self._lock:
            self._stages[name] = self._stages.get(name, 0.0) + duration
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        with self._lock:
            return self._stages.get(name, 0.0)

    def mean(self, name: str) -> float:
        with self._lock:
            count = self._counts.get(name, 0)
            return self._stages.get(name, 0.0) / count if count else 0.0

    def stages(self) -> dict[str, float]:
        with self._lock:
            return dict(self._stages)

    def breakdown(self, order: tuple[str, ...] = ("ts", "tf", "te", "tw")) -> dict[str, float]:
        """Mean duration per stage, in the given stage order."""
        return {name: self.mean(name) for name in order}

    def clear(self) -> None:
        with self._lock:
            self._stages.clear()
            self._counts.clear()
