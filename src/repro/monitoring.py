"""Monitoring: structured event history and live dashboards.

The paper's security model stores "execution request histories in the
funcX service and in logs on funcX endpoints" "to enable fine grained
tracking of execution" (§4.8), and the web UI exposes task monitoring.
:class:`TaskEventLog` provides that history — an append-only, queryable
stream of task state transitions — and :class:`Dashboard` derives the
operational views (state counts, per-endpoint load, completion rate)
that operators and the elasticity strategy consume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.service import FuncXService
from repro.core.tasks import TaskState


@dataclass(frozen=True)
class TaskEvent:
    """One recorded state transition."""

    timestamp: float
    task_id: str
    state: str
    endpoint_id: str = ""
    function_id: str = ""
    owner_id: str = ""


class TaskEventLog:
    """Append-only task-event history with bounded memory.

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are discarded first (the
        service-side history is bounded, full history lives in cold logs).
    """

    def __init__(self, capacity: int = 100_000,
                 clock: Callable[[], float] | None = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Lock()
        self._events: list[TaskEvent] = []
        self._dropped = 0
        self._service: FuncXService | None = None
        self._subscription: int | None = None

    # ------------------------------------------------------------------
    def attach(self, service: FuncXService) -> None:
        """Record every task state transition ``service`` publishes."""
        if self._service is not None:
            raise RuntimeError("event log already attached")
        self._service = service

        def on_event(topic: str, state: object) -> None:
            task_id = topic.split(".", 1)[1]
            try:
                task = service.task_by_id(task_id)
            except Exception:
                return
            self.record(
                TaskEvent(
                    timestamp=self._clock(),
                    task_id=task_id,
                    state=str(state),
                    endpoint_id=task.endpoint_id,
                    function_id=task.function_id,
                    owner_id=task.owner_id,
                )
            )

        self._subscription = service.pubsub.subscribe_prefix("task.", on_event)

    def detach(self) -> None:
        if self._service is not None and self._subscription is not None:
            self._service.pubsub.unsubscribe(self._subscription)
        self._service = None
        self._subscription = None

    # ------------------------------------------------------------------
    def record(self, event: TaskEvent) -> None:
        with self._lock:
            self._events.append(event)
            overflow = len(self._events) - self.capacity
            if overflow > 0:
                del self._events[:overflow]
                self._dropped += overflow

    def events(
        self,
        task_id: str | None = None,
        endpoint_id: str | None = None,
        state: str | None = None,
        since: float | None = None,
    ) -> list[TaskEvent]:
        """Query the history with optional filters."""
        with self._lock:
            snapshot = list(self._events)
        out = snapshot
        if task_id is not None:
            out = [e for e in out if e.task_id == task_id]
        if endpoint_id is not None:
            out = [e for e in out if e.endpoint_id == endpoint_id]
        if state is not None:
            out = [e for e in out if e.state == state]
        if since is not None:
            out = [e for e in out if e.timestamp >= since]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------------
    def completion_rate(self, window: float) -> float:
        """Successful completions per second over the trailing window."""
        now = self._clock()
        successes = self.events(state=TaskState.SUCCESS.value, since=now - window)
        return len(successes) / window if window > 0 else 0.0


class Dashboard:
    """Point-in-time operational views over a service + event log."""

    def __init__(self, service: FuncXService, event_log: TaskEventLog | None = None):
        self.service = service
        self.event_log = event_log

    # ------------------------------------------------------------------
    def state_counts(self) -> dict[str, int]:
        """How many tasks are currently in each lifecycle state."""
        counts: dict[str, int] = {state.value: 0 for state in TaskState}
        for task in self.service.iter_tasks():
            counts[task.state.value] += 1
        return counts

    def endpoint_load(self) -> dict[str, dict[str, int | bool]]:
        """Per-endpoint queue depth and connectivity."""
        out: dict[str, dict[str, int | bool]] = {}
        for record in self.service.endpoints.all():
            out[record.endpoint_id] = {
                "name": record.name,
                "connected": record.connected,
                "queued": len(self.service.task_queue(record.endpoint_id)),
                "outstanding": self.service.outstanding_tasks(record.endpoint_id),
            }
        return out

    def memoizer_stats(self) -> dict[str, float]:
        memo = self.service.memoizer
        return {
            "entries": float(len(memo)),
            "hits": float(memo.hits),
            "misses": float(memo.misses),
            "hit_rate": memo.hit_rate,
        }

    def render(self) -> str:
        """A terminal-friendly snapshot."""
        lines = ["funcX dashboard", "=" * 60]
        lines.append("task states: " + ", ".join(
            f"{state}={count}" for state, count in self.state_counts().items()
            if count
        ))
        for _ep_id, info in sorted(self.endpoint_load().items()):
            status = "up" if info["connected"] else "DOWN"
            lines.append(
                f"  endpoint {info['name']:<16s} [{status:>4s}] "
                f"queued={info['queued']} outstanding={info['outstanding']}"
            )
        memo = self.memoizer_stats()
        lines.append(f"memoizer: {memo['entries']:.0f} entries, "
                     f"hit rate {memo['hit_rate']:.0%}")
        if self.event_log is not None:
            lines.append(f"events recorded: {len(self.event_log)} "
                         f"(dropped {self.event_log.dropped})")
        return "\n".join(lines)
