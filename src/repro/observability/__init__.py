"""End-to-end observability: trace contexts, spans, and the trace store.

The tracing half of the observability fabric lives here; the metrics
half is :class:`repro.metrics.MetricsRegistry`.  See
``docs/OBSERVABILITY.md`` for the span model and its mapping onto the
paper's figure-4 latency decomposition.
"""

from repro.metrics.registry import MetricsRegistry
from repro.observability.trace import (
    STAGES,
    Span,
    TraceContext,
    TraceStore,
    aggregate_breakdowns,
)

__all__ = [
    "STAGES",
    "Span",
    "TraceContext",
    "TraceStore",
    "MetricsRegistry",
    "aggregate_breakdowns",
]
