"""End-to-end trace contexts for the task lifecycle (figure 4).

The paper's evaluation decomposes per-task latency into the time spent in
each stage of the pipeline: web service (``t_s``), forwarder dispatch,
agent scheduling, manager queueing, worker execution (``t_w``) and the
result's return trip.  :class:`TraceContext` is the carrier that makes
that decomposition observable on the live fabric: the service opens one
context per task, the forwarder attaches it to the outbound
:class:`~repro.transport.messages.TaskMessage`, every downstream stage
records a :class:`Span` into it, and the worker's
:class:`~repro.transport.messages.ResultMessage` carries it back so the
service can finalize and aggregate it.

Stage names are fixed (:data:`STAGES`) so benches, the CLI and the
metrics registry agree on the decomposition:

========================  =====================================================
stage                     interval
========================  =====================================================
``service``               request received → task enqueued (``t_s``)
``forwarder.dispatch``    enqueued → sent to the agent (queue wait + dispatch)
``agent``                 arrived at the agent → routed to a manager
``manager``               arrived at the manager → handed to a worker
``worker``                deserialization + execution + serialization (``t_w``)
``result_return``         worker completion → result back at the forwarder
========================  =====================================================

Contexts are wire-model friendly: :meth:`TraceContext.to_record` /
:meth:`TraceContext.from_record` round-trip through plain dicts, which is
what a cross-process deployment would serialize into message headers.
"""

from __future__ import annotations

import json
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

#: Canonical stage order of the figure-4 latency decomposition.
STAGES: tuple[str, ...] = (
    "service",
    "forwarder.dispatch",
    "agent",
    "manager",
    "worker",
    "result_return",
)


@dataclass
class Span:
    """One timed stage of a task's journey through the fabric."""

    name: str
    component: str
    start: float
    end: float | None = None
    attempt: int = 0
    annotations: dict[str, Any] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "end": self.end,
            "attempt": self.attempt,
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            component=record.get("component", ""),
            start=record["start"],
            end=record.get("end"),
            attempt=record.get("attempt", 0),
            annotations=dict(record.get("annotations", {})),
        )


class TraceContext:
    """The per-task trace: a trace id plus the spans recorded so far.

    Thread-safe: stages on different threads (forwarder, agent, manager,
    worker) record into the same context as the task hops between them.
    A finalized context (see :meth:`close`) silently ignores further
    recording — late spans can only come from duplicate deliveries of an
    already-completed task and must not perturb the finished trace.
    """

    def __init__(self, task_id: str, trace_id: str | None = None,
                 opened_at: float = 0.0):
        self.task_id = task_id
        self.trace_id = trace_id or uuid.uuid4().hex
        self.opened_at = opened_at
        self.closed_at: float | None = None
        self.spans: list[Span] = []
        self._open: list[Span] = []
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self.closed_at is not None

    def begin(self, name: str, component: str, at: float, attempt: int = 0,
              **annotations: Any) -> Span | None:
        """Open a span; it joins :attr:`spans` once :meth:`end` closes it."""
        with self._lock:
            if self.closed:
                return None
            span = Span(name=name, component=component, start=at,
                        attempt=attempt, annotations=dict(annotations))
            self._open.append(span)
            return span

    def end(self, name: str, at: float, **annotations: Any) -> Span | None:
        """Close the most recently opened span named ``name`` (no-op if none)."""
        with self._lock:
            if self.closed:
                return None
            for span in reversed(self._open):
                if span.name == name:
                    self._open.remove(span)
                    span.end = at
                    span.annotations.update(annotations)
                    self.spans.append(span)
                    return span
            return None

    def record(self, name: str, component: str, start: float, end: float,
               attempt: int = 0, **annotations: Any) -> Span | None:
        """Record an already-completed span in one shot."""
        with self._lock:
            if self.closed:
                return None
            span = Span(name=name, component=component, start=start, end=end,
                        attempt=attempt, annotations=dict(annotations))
            self.spans.append(span)
            return span

    def record_late(self, name: str, component: str, start: float, end: float,
                    attempt: int = 0, **annotations: Any) -> Span:
        """Record a span that legitimately happens *after* finalization.

        The trace closes at the task's terminal transition, but the
        result-stream tail (service→client push delivery) runs after
        that.  Unlike :meth:`record`, a closed trace accepts the span —
        it shows up in :attr:`spans` without reopening the trace or
        shifting :meth:`total`.
        """
        with self._lock:
            span = Span(name=name, component=component, start=start, end=end,
                        attempt=attempt, annotations=dict(annotations))
            self.spans.append(span)
            return span

    def close(self, at: float) -> None:
        """Finalize the trace; subsequent recording becomes a no-op."""
        with self._lock:
            if self.closed:
                return
            self.closed_at = at

    # -- reading -------------------------------------------------------------
    def completed_spans(self) -> list[Span]:
        with self._lock:
            return list(self.spans)

    def breakdown(self) -> dict[str, float]:
        """Stage → duration for the figure-4 decomposition.

        Uses the *last* completed span per stage so a re-executed task
        (at-least-once delivery) reports the attempt that actually
        produced the result.
        """
        out: dict[str, float] = {}
        for span in self.completed_spans():
            if span.end is not None:
                out[span.name] = span.end - span.start
        return out

    def total(self) -> float | None:
        """Observed end-to-end latency (open → close)."""
        if self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    # -- wire format ---------------------------------------------------------
    def to_record(self) -> dict[str, Any]:
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "task_id": self.task_id,
                "opened_at": self.opened_at,
                "closed_at": self.closed_at,
                "spans": [s.to_record() for s in self.spans],
            }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "TraceContext":
        ctx = cls(
            task_id=record["task_id"],
            trace_id=record.get("trace_id"),
            opened_at=record.get("opened_at", 0.0),
        )
        ctx.closed_at = record.get("closed_at")
        ctx.spans = [Span.from_record(s) for s in record.get("spans", [])]
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (f"TraceContext({self.trace_id[:8]}, task={self.task_id[:8]}, "
                f"{len(self.spans)} spans, {state})")


class TraceStore:
    """The service-side collection of task traces.

    Parameters
    ----------
    clock:
        Injectable time source (shared with the owning service).
    enabled:
        When ``False`` every method degrades to a no-op returning ``None``
        so the whole fabric runs trace-free (the overhead-bench baseline).
    capacity:
        Retention bound: once exceeded, the oldest *finalized* traces are
        evicted first (live traces are never dropped).
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True, capacity: int = 100_000):
        import time as _time

        self._clock = clock or _time.monotonic  # clock-domain: monotonic
        self.enabled = enabled
        self.capacity = capacity
        self._traces: "OrderedDict[str, TraceContext]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    # -- lifecycle -----------------------------------------------------------
    def open(self, task_id: str, at: float | None = None) -> TraceContext | None:
        """Open (or return the existing) trace for ``task_id``."""
        if not self.enabled:
            return None
        at = at if at is not None else self._clock()
        with self._lock:
            ctx = self._traces.get(task_id)
            if ctx is None:
                ctx = TraceContext(task_id=task_id, opened_at=at)
                self._traces[task_id] = ctx
                self._evict_locked()
            return ctx

    def context_for(self, task_id: str) -> TraceContext | None:
        """The live context for ``task_id`` (``None`` if disabled/unknown)."""
        with self._lock:
            return self._traces.get(task_id)

    def finalize(self, task_id: str, at: float | None = None) -> TraceContext | None:
        ctx = self.context_for(task_id)
        if ctx is not None:
            ctx.close(at if at is not None else self._clock())
        return ctx

    def trace_id_for(self, task_id: str) -> str | None:
        ctx = self.context_for(task_id)
        return ctx.trace_id if ctx is not None else None

    def _evict_locked(self) -> None:
        if len(self._traces) <= self.capacity:
            return
        excess = len(self._traces) - self.capacity
        for task_id in [t for t, c in self._traces.items() if c.closed][:excess]:
            del self._traces[task_id]

    # -- export --------------------------------------------------------------
    def all_contexts(self) -> list[TraceContext]:
        with self._lock:
            return list(self._traces.values())

    def dump_jsonl(self, path: str) -> int:
        """Write one JSON record per trace; returns the number written."""
        contexts = self.all_contexts()
        with open(path, "w", encoding="utf-8") as fh:
            for ctx in contexts:
                fh.write(json.dumps(ctx.to_record(), sort_keys=True) + "\n")
        return len(contexts)

    @staticmethod
    def load_jsonl(path: str) -> list[TraceContext]:
        """Load a dump produced by :meth:`dump_jsonl`."""
        contexts: list[TraceContext] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    contexts.append(TraceContext.from_record(json.loads(line)))
        return contexts


def aggregate_breakdowns(contexts: Iterable[TraceContext]) -> dict[str, list[float]]:
    """Pool stage durations across many traces (bench/CLI aggregation)."""
    pooled: dict[str, list[float]] = {}
    for ctx in contexts:
        for stage, duration in ctx.breakdown().items():
            pooled.setdefault(stage, []).append(duration)
    return pooled
