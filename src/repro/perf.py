"""End-to-end performance measurement for the dispatch fabric.

Drives a full :class:`~repro.fabric.LocalDeployment` (service → forwarder
→ agent → manager → worker) under an injected channel-latency model and
measures throughput (tasks/s over a submission wave) and round-trip
latency percentiles for sequential single tasks.

Two modes are compared:

* **batched** — the default fabric: ``message_batching=True`` coalesces
  task/result waves into batch envelopes with function-buffer dedup, and
  ``event_driven=True`` makes every loop block on a wakeup instead of
  sleep-polling.
* **per-message** — the pre-batching behavior: one transfer per message
  and fixed-interval polling loops.

The interesting knob is ``transfer_cost``: each transfer occupies the
receiving link serially, so N individual sends pay N × cost while one
coalesced batch pays it once.  Used by
``benchmarks/bench_e2e_throughput.py`` (which gates the ≥2x speedup) and
the ``repro bench`` CLI subcommand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.endpoint.config import EndpointConfig
from repro.errors import TaskPending
from repro.fabric import DeploymentTimings, LocalDeployment

#: The legacy fixed poll interval (s) of the forwarder/agent/manager
#: loops.  Round-trip latency in per-message mode is quantized by this;
#: the event-driven fabric must not be.
LEGACY_POLL_INTERVAL = 0.002


def _identity(x):
    return x


def _sleep_for(seconds):
    import time as _time

    _time.sleep(seconds)
    return seconds


def _mode_name(batched: bool) -> str:
    return "batched" if batched else "per-message"


def _config(batched: bool, workers: int) -> EndpointConfig:
    return EndpointConfig(
        workers_per_node=workers,
        heartbeat_period=0.2,
        message_batching=batched,
        event_driven=batched,
    )


def _timings(latency: float, transfer_cost: float) -> DeploymentTimings:
    return DeploymentTimings(
        service_endpoint_latency=latency,
        service_endpoint_transfer_cost=transfer_cost,
    )


@dataclass
class ThroughputSample:
    """One throughput run: a wave of trivial tasks, submit → all results."""

    mode: str
    tasks: int
    seconds: float

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.seconds if self.seconds > 0 else float("inf")


@dataclass
class LatencySample:
    """Sequential single-task round trips through a live deployment."""

    mode: str
    samples: int
    p50: float
    p99: float
    mean: float


def _percentile(sorted_values: list[float], q: float) -> float:
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def measure_throughput(
    batched: bool,
    *,
    tasks: int = 128,
    latency: float = 0.001,
    transfer_cost: float = 0.0005,
    workers: int = 4,
) -> ThroughputSample:
    """Tasks/s for one wave of ``tasks`` trivial calls."""
    with LocalDeployment(timings=_timings(latency, transfer_cost)) as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint(
            "perf", nodes=1, config=_config(batched, workers))
        fid = client.register_function(_identity, public=True)
        # Warm-up: ships the function body and spins up the worker pool
        # so the measured wave sees a steady-state fabric.
        client.submit(fid, ep, -1).result(timeout=30)
        start = time.perf_counter()
        futures = [client.submit(fid, ep, i) for i in range(tasks)]
        for future in futures:
            future.result(timeout=120)
        elapsed = time.perf_counter() - start
    return ThroughputSample(mode=_mode_name(batched), tasks=tasks, seconds=elapsed)


def measure_latency(
    batched: bool,
    *,
    samples: int = 30,
    latency: float = 0.001,
    transfer_cost: float = 0.0,
    workers: int = 2,
) -> LatencySample:
    """Round-trip percentiles for sequential single-task submissions."""
    with LocalDeployment(timings=_timings(latency, transfer_cost)) as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint(
            "perf", nodes=1, config=_config(batched, workers))
        fid = client.register_function(_identity, public=True)
        client.submit(fid, ep, -1).result(timeout=30)  # warm-up
        durations: list[float] = []
        for i in range(samples):
            start = time.perf_counter()
            client.submit(fid, ep, i).result(timeout=30)
            durations.append(time.perf_counter() - start)
    durations.sort()
    return LatencySample(
        mode=_mode_name(batched),
        samples=samples,
        p50=_percentile(durations, 0.50),
        p99=_percentile(durations, 0.99),
        mean=sum(durations) / len(durations),
    )


def measure_backpressure(
    *,
    tasks: int = 120,
    workers: int = 2,
    prefetch: int = 2,
    task_duration: float = 0.02,
    latency: float = 0.0,
    transfer_cost: float = 0.0,
    sample_interval: float = 0.002,
) -> dict:
    """Sustained overload against a credited endpoint; returns a dict.

    Submits a burst of ``tasks`` sleeper calls against a single node
    whose credit window is ``workers + prefetch`` for the manager plus
    the agent's two-node-window pipeline buffer — with the defaults, a
    120-task burst against a window of 12, a 10:1 offered/consumable
    mismatch.  While the burst drains, the forwarder's open-lease
    population is sampled every ``sample_interval`` seconds.

    The returned dict carries everything the no-unbounded-memory gate
    needs: the credit window, the sampled in-flight peak (bounded by the
    window), per-half peaks (the plateau check — in-flight must not grow
    between the first and second half of the run), the service queue's
    high watermark (where the mismatch went instead), the zero-credit
    stall count, and sustained tasks/s.
    """
    # Manager window plus the agent's pipeline buffer of
    # ``pipeline_depth`` (default 2) further node windows.
    window = 3 * (workers + prefetch)
    config = EndpointConfig(
        workers_per_node=workers,
        prefetch_capacity=prefetch,
        heartbeat_period=0.05,
    )
    with LocalDeployment(timings=_timings(latency, transfer_cost)) as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint("overload", nodes=1, config=config)
        forwarder = deployment.forwarder(ep)
        queue = deployment.service.task_queue(ep)
        fid = client.register_function(_sleep_for, public=True)
        client.submit(fid, ep, 0.0).result(timeout=30)  # warm-up
        deadline = time.monotonic() + 10.0
        while forwarder.credit_window != window:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"credit window never reached {window} "
                    f"(at {forwarder.credit_window})")
            time.sleep(0.002)

        start = time.perf_counter()
        futures = [client.submit(fid, ep, task_duration) for _ in range(tasks)]
        in_flight: list[int] = []
        while not all(f.done() for f in futures):
            in_flight.append(forwarder.outstanding)
            time.sleep(sample_interval)
        for future in futures:
            future.result(timeout=60)
        elapsed = time.perf_counter() - start

        half = max(1, len(in_flight) // 2)
        first_half, second_half = in_flight[:half], in_flight[half:]
        return {
            "params": {
                "tasks": tasks,
                "workers": workers,
                "prefetch": prefetch,
                "task_duration_s": task_duration,
                "channel_latency_s": latency,
                "transfer_cost_s": transfer_cost,
                "sample_interval_s": sample_interval,
            },
            "window": window,
            "mismatch": tasks / window,
            "seconds": elapsed,
            "tasks_per_second": tasks / elapsed if elapsed > 0 else 0.0,
            "ideal_tasks_per_second": workers / task_duration,
            "in_flight_samples": len(in_flight),
            "peak_in_flight": max(in_flight, default=0),
            "first_half_peak": max(first_half, default=0),
            "second_half_peak": max(second_half, default=0),
            "mean_in_flight": (sum(in_flight) / len(in_flight)
                               if in_flight else 0.0),
            "queue_high_watermark": queue.high_watermark,
            "credit_stalls": forwarder.credit_stalls,
        }


def measure_result_stream(
    *,
    tasks: int = 64,
    samples: int = 30,
    latency: float = 0.001,
    poll_interval: float = 0.01,
    workers: int = 4,
) -> dict:
    """Push-based result delivery vs the polling client, as a dict.

    Two result paths over the same 1 ms-latency fabric:

    * **push** — a :class:`~repro.core.executor.FuncXExecutor`:
      submissions coalesce into ``submit_batch`` waves and futures
      resolve from the service's result subscription stream the moment
      a batch is pushed.
    * **poll** — the paper-era REST client: submit, then loop
      ``get_result(timeout=0)`` / ``sleep(poll_interval)``.  Observed
      latency is quantized up to the next poll tick, so its floor is
      the poll interval itself.

    The latency comparison is sequential single tasks (p50/p99);
    throughput is one ``tasks``-wave through the executor, with the
    stream's delivery-batch stats reported alongside.
    """
    with LocalDeployment(timings=_timings(latency, 0.0)) as deployment:
        client = deployment.client()
        ep = deployment.create_endpoint(
            "stream", nodes=1, config=_config(True, workers))
        fid = client.register_function(_identity, public=True)

        # --- push mode: executor + subscription stream -----------------
        with client.executor(ep, batch_interval=0.0) as executor:
            executor.submit(fid, -1).result(timeout=30)  # warm-up
            push_durations: list[float] = []
            for i in range(samples):
                start = time.perf_counter()
                executor.submit(fid, i).result(timeout=30)
                push_durations.append(time.perf_counter() - start)
            wave_start = time.perf_counter()
            futures = [executor.submit(fid, i) for i in range(tasks)]
            for future in futures:
                future.result(timeout=120)
            wave_elapsed = time.perf_counter() - wave_start

        # --- poll mode: the paper-era polling client -------------------
        poll_durations: list[float] = []
        for i in range(samples):
            start = time.perf_counter()
            task_id = client.run(fid, ep, i)
            while True:
                try:
                    client.get_result(task_id, timeout=0.0)
                    break
                except TaskPending:
                    time.sleep(poll_interval)
            poll_durations.append(time.perf_counter() - start)

        batch_stats = deployment.metrics.histogram(
            "stream.batch_size").summary()
        delivered = deployment.metrics.counter(
            "stream.results_delivered").value
        batches = deployment.metrics.counter(
            "stream.batches_delivered").value

    push_durations.sort()
    poll_durations.sort()
    return {
        "params": {
            "tasks": tasks,
            "samples": samples,
            "channel_latency_s": latency,
            "poll_interval_s": poll_interval,
            "workers": workers,
        },
        "push": {
            "p50_s": _percentile(push_durations, 0.50),
            "p99_s": _percentile(push_durations, 0.99),
            "mean_s": sum(push_durations) / len(push_durations),
        },
        "poll": {
            "p50_s": _percentile(poll_durations, 0.50),
            "p99_s": _percentile(poll_durations, 0.99),
            "mean_s": sum(poll_durations) / len(poll_durations),
        },
        "throughput": {
            "tasks": tasks,
            "seconds": wave_elapsed,
            "tasks_per_second": tasks / wave_elapsed if wave_elapsed > 0 else 0.0,
        },
        "stream": {
            "results_delivered": int(delivered),
            "batches_delivered": int(batches),
            "mean_batch_size": batch_stats.get("mean", 0.0),
            "max_batch_size": batch_stats.get("max", 0.0),
        },
        "p50_speedup": (
            _percentile(poll_durations, 0.50) /
            max(_percentile(push_durations, 0.50), 1e-9)),
    }


def _register_bench_endpoint(service, name: str) -> str:
    _identity, token = service.auth.endpoint_client_flow(name)
    return service.register_endpoint(token.token, name=name)


def _cover_shards(service, token) -> list[str]:
    """Register endpoints until every shard owns one; returns one per shard.

    Endpoint ids are random UUIDs, so consistent-hash placement cannot be
    chosen — we roll until the ring has covered every shard (64 vnodes
    per shard make the expected roll count small).
    """
    n = len(service.shards)
    chosen: dict[int, str] = {}
    attempt = 0
    while len(chosen) < n:
        attempt += 1
        if attempt > 128 * n:
            raise RuntimeError(f"could not cover {n} shards with endpoints")
        ep = _register_bench_endpoint(service, f"shard-ep-{attempt}")
        chosen.setdefault(service.shard_map.shard_for_endpoint(ep), ep)
    return [chosen[i] for i in range(n)]


def _drive_shard(service, token, function_id, endpoint_id, count, wave) -> None:
    """One shard's synthetic lifecycle driver: submit → lease → complete.

    Plays both the tenant and the shard's forwarder: each wave is
    submitted through the authenticated facade, leased back off the
    endpoint's queue, marked dispatched, completed, and acked.  Every
    store write charges the owning shard's pacer *in this thread*, so N
    drivers against N shards overlap their modeled store occupancy —
    the parallelism the benchmark measures.
    """
    queue = service.task_queue(endpoint_id)
    done = 0
    while done < count:
        n = min(wave, count - done)
        service.submit_batch(
            token, [(function_id, endpoint_id, b"p")] * n)
        drained = 0
        while drained < n:
            for lease in queue.lease_many(n - drained):
                service.mark_dispatched(lease.item)
                service.complete_task(lease.item, success=True,
                                      result_buffer=b"r")
                queue.ack(lease.lease_id)
                drained += 1
        done += n


def measure_shard_scale(
    *,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    tasks: int = 384,
    op_cost: float = 0.001,
    wave: int = 32,
    fairness_rounds: int = 60,
    fairness_mix: int = 10,
    fairness_window: int = 12,
) -> dict:
    """Aggregate tasks/s of the sharded service plane, 1 → N shards.

    **Scaling half.**  For each shard count a fresh service is built with
    ``shard_op_cost=op_cost`` — every task pays two modeled store writes
    (insert + completion) on its shard's serial pacer, the per-partition
    backing-store occupancy that bounds a real service plane.  One driver
    thread per shard runs the full task lifecycle against an endpoint on
    that shard; the *same fixed total* of ``tasks`` is split across the
    drivers, so aggregate tasks/s rises with the shard count only if the
    partitions genuinely proceed in parallel (pacer sleeps release the
    GIL; shard locks are disjoint).

    **Fairness half.**  A single-shard service with two tenants on one
    endpoint: *aggressive* submits ``fairness_mix`` tasks for every one
    *polite* submits.  The queue's DRR dequeue is then drained serially
    and the lane of each dequeue recorded; over windows of
    ``fairness_window`` dequeues (taken while both lanes stay
    backlogged) the normalized inter-tenant throughput gap
    ``|agg − polite| / window`` must stay bounded — equal-weight DRR
    alternates lanes, so a 10:1 offered-load mismatch must not become a
    10:1 service share.
    """
    import threading

    from repro.auth import AuthService
    from repro.core.service import FuncXService, ServiceConfig

    def _build(shards: int, cost: float) -> tuple:
        service = FuncXService(
            auth=AuthService(),
            config=ServiceConfig(shards=shards, shard_op_cost=cost,
                                 tracing=False),
        )
        identity = service.auth.register_identity("bench-tenant")
        token = service.auth.native_client_flow(identity).token
        fid = service.register_function(token, "noop", b"\x00bench-noop",
                                        public=True)
        return service, token, fid

    # --- scaling half ---------------------------------------------------
    runs: list[dict] = []
    for shards in shard_counts:
        service, token, fid = _build(shards, op_cost)
        endpoints = _cover_shards(service, token)
        share, extra = divmod(tasks, shards)
        counts = [share + (1 if i < extra else 0) for i in range(shards)]
        start_gate = threading.Event()

        def _run(ep: str, count: int) -> None:
            start_gate.wait()
            _drive_shard(service, token, fid, ep, count, wave)

        threads = [
            threading.Thread(target=_run, args=(ep, count),
                             name=f"shard-driver-{i}", daemon=True)
            for i, (ep, count) in enumerate(zip(endpoints, counts))
        ]
        for thread in threads:
            thread.start()
        begin = time.perf_counter()
        start_gate.set()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        service.close()
        runs.append({
            "shards": shards,
            "tasks": tasks,
            "seconds": elapsed,
            "tasks_per_second": tasks / elapsed if elapsed > 0 else 0.0,
        })

    base = runs[0]["tasks_per_second"]
    top = runs[-1]["tasks_per_second"]

    # --- fairness half --------------------------------------------------
    service, _token, fid = _build(1, 0.0)
    agg = service.auth.register_identity("aggressive")
    pol = service.auth.register_identity("polite")
    agg_token = service.auth.native_client_flow(agg).token
    pol_token = service.auth.native_client_flow(pol).token
    ep = _register_bench_endpoint(service, "shared-ep")
    for round_ in range(fairness_rounds):
        service.submit_batch(agg_token, [(fid, ep, b"p")] * fairness_mix)
        service.submit_batch(pol_token, [(fid, ep, b"p")])
    queue = service.task_queue(ep)
    # Equal-weight DRR serves the polite lane one slot in two, so both
    # lanes stay backlogged for ~2x the polite backlog; sample inside
    # that region only (beyond it the gap measures queue *emptiness*,
    # not unfairness).
    drain = (2 * fairness_rounds // fairness_window) * fairness_window
    lanes: list[str] = []
    while len(lanes) < drain:
        for lease in queue.lease_many(drain - len(lanes)):
            lanes.append(lease.lane)
            service.mark_dispatched(lease.item)
            service.complete_task(lease.item, success=True, result_buffer=b"r")
            queue.ack(lease.lease_id)
    service.close()
    gaps: list[float] = []
    for i in range(0, drain, fairness_window):
        window = lanes[i:i + fairness_window]
        polite_n = sum(1 for lane in window if lane == pol.identity_id)
        gaps.append(abs(len(window) - 2 * polite_n) / len(window))
    gaps.sort()
    polite_total = sum(1 for lane in lanes if lane == pol.identity_id)
    arrival_gap = abs(fairness_mix - 1) / (fairness_mix + 1)

    return {
        "params": {
            "shard_counts": list(shard_counts),
            "tasks": tasks,
            "op_cost_s": op_cost,
            "wave": wave,
            "fairness_rounds": fairness_rounds,
            "fairness_mix": fairness_mix,
            "fairness_window": fairness_window,
        },
        "scaling": {
            "runs": runs,
            "speedup": top / base if base > 0 else 0.0,
        },
        "fairness": {
            "dequeues_sampled": drain,
            "windows": len(gaps),
            "p99_gap": _percentile(gaps, 0.99),
            "mean_gap": sum(gaps) / len(gaps) if gaps else 0.0,
            "polite_share": polite_total / drain if drain else 0.0,
            "arrival_gap": arrival_gap,
        },
    }


def compare_modes(
    *,
    tasks: int = 128,
    samples: int = 30,
    latency: float = 0.001,
    transfer_cost: float = 0.0005,
    workers: int = 4,
    pairs: int = 3,
) -> dict:
    """Interleaved A/B comparison of per-message vs batched dispatch.

    Throughput runs are interleaved ``pairs`` times (best-of per mode so
    a GC pause or scheduler hiccup in one run cannot decide the verdict);
    latency percentiles come from one sequential-sample run per mode.
    Returns a plain dict ready for JSON serialization.
    """
    best: dict[str, ThroughputSample] = {}
    for _ in range(pairs):
        for batched in (False, True):
            sample = measure_throughput(
                batched, tasks=tasks, latency=latency,
                transfer_cost=transfer_cost, workers=workers)
            prior = best.get(sample.mode)
            if prior is None or sample.seconds < prior.seconds:
                best[sample.mode] = sample
    lat = {
        _mode_name(batched): measure_latency(
            batched, samples=samples, latency=latency, workers=workers)
        for batched in (False, True)
    }
    unbatched, batched_ = best["per-message"], best["batched"]
    return {
        "params": {
            "tasks": tasks,
            "samples": samples,
            "channel_latency_s": latency,
            "transfer_cost_s": transfer_cost,
            "workers": workers,
            "pairs": pairs,
            "legacy_poll_interval_s": LEGACY_POLL_INTERVAL,
        },
        "throughput": {
            sample.mode: {
                "tasks": sample.tasks,
                "seconds": sample.seconds,
                "tasks_per_second": sample.tasks_per_second,
            }
            for sample in best.values()
        },
        "latency": {
            sample.mode: {
                "samples": sample.samples,
                "p50_s": sample.p50,
                "p99_s": sample.p99,
                "mean_s": sample.mean,
            }
            for sample in lat.values()
        },
        "speedup": batched_.tasks_per_second / unbatched.tasks_per_second,
        "p50_improvement_s": lat["per-message"].p50 - lat["batched"].p50,
    }
