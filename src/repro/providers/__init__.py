"""Resource providers (Parsl provider-interface substitute, paper §4.4).

funcX provisions compute through Parsl's provider interface, supporting
batch schedulers (Slurm, Torque/PBS, Cobalt, SGE, Condor), the major
clouds, and Kubernetes, using a pilot-job model.  This package implements
that interface against *simulated* resource managers: each provider owns a
model of its scheduler (queue delays, allocation accounting, node limits,
downtime) and exposes uniform submit/status/cancel plus autoscaling hooks.
"""

from repro.providers.base import (
    ExecutionProvider,
    Job,
    JobState,
    ProviderLimits,
)
from repro.providers.batchsim import BatchScheduler, QueueModel
from repro.providers.local import LocalProvider
from repro.providers.batch import (
    CobaltProvider,
    CondorProvider,
    GridEngineProvider,
    PBSProvider,
    SlurmProvider,
)
from repro.providers.kubernetes import KubernetesProvider, Pod
from repro.providers.cloud import AWSProvider, AzureProvider, CloudProvider, GCPProvider
from repro.providers.strategy import ScalingDecision, SimpleScalingStrategy

__all__ = [
    "ExecutionProvider",
    "Job",
    "JobState",
    "ProviderLimits",
    "BatchScheduler",
    "QueueModel",
    "LocalProvider",
    "SlurmProvider",
    "PBSProvider",
    "CobaltProvider",
    "CondorProvider",
    "GridEngineProvider",
    "KubernetesProvider",
    "Pod",
    "CloudProvider",
    "AWSProvider",
    "AzureProvider",
    "GCPProvider",
    "SimpleScalingStrategy",
    "ScalingDecision",
]
