"""Provider interface: uniform pilot-job provisioning across resources.

The funcX agent "uses a pilot job model to provision and communicate with
resources in a uniform manner, irrespective of the resource type (cloud or
cluster) or local resource manager" (paper section 4.3).  Every provider
submits *blocks* — pilot jobs of ``nodes_per_block`` nodes — and reports
their lifecycle states.

Providers are time-agnostic: state transitions happen in :meth:`poll`,
which takes the current time, so the same provider code runs under both
the wall clock and the discrete-event simulator.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class JobState(Enum):
    """Lifecycle of a pilot job."""

    PENDING = "pending"      # queued at the resource manager
    RUNNING = "running"      # nodes are up and managers may start
    COMPLETED = "completed"  # ran to its walltime / finished cleanly
    CANCELLED = "cancelled"  # cancelled by the agent (scale-in)
    FAILED = "failed"        # rejected or killed by the resource manager

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED)


@dataclass
class Job:
    """One pilot job (block) and its observable state."""

    job_id: str
    nodes: int
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    walltime: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def queue_delay(self) -> float | None:
        """Seconds spent pending, once running."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


@dataclass(frozen=True)
class ProviderLimits:
    """Scaling bounds used by the elasticity strategy (paper §4.4).

    Attributes
    ----------
    min_blocks:
        Blocks kept alive even when idle.
    max_blocks:
        Hard cap on simultaneously active (pending+running) blocks.
    init_blocks:
        Blocks submitted when the endpoint starts.
    parallelism:
        Scaling aggressiveness in (0, 1]: the target is
        ``outstanding_tasks * parallelism`` task slots.
    """

    min_blocks: int = 0
    max_blocks: int = 10
    init_blocks: int = 1
    parallelism: float = 1.0

    def __post_init__(self) -> None:
        if self.min_blocks < 0 or self.max_blocks < self.min_blocks:
            raise ValueError("require 0 <= min_blocks <= max_blocks")
        if not 0.0 < self.parallelism <= 1.0:
            raise ValueError("parallelism must be in (0, 1]")
        if not self.min_blocks <= self.init_blocks <= self.max_blocks:
            raise ValueError("init_blocks must lie within [min_blocks, max_blocks]")


class ExecutionProvider(ABC):
    """Abstract provider: submit/cancel pilot jobs, poll their states.

    Parameters
    ----------
    nodes_per_block:
        Nodes in each pilot job.
    limits:
        Scaling bounds.
    label:
        Human-readable provider name ("slurm", "aws", ...).
    """

    def __init__(
        self,
        nodes_per_block: int = 1,
        limits: ProviderLimits | None = None,
        label: str = "provider",
    ):
        if nodes_per_block < 1:
            raise ValueError("nodes_per_block must be positive")
        self.nodes_per_block = nodes_per_block
        self.limits = limits or ProviderLimits()
        self.label = label
        self._jobs: dict[str, Job] = {}
        self._job_seq = itertools.count(1)

    # -- abstract core ------------------------------------------------------
    @abstractmethod
    def _do_submit(self, job: Job, now: float) -> None:
        """Provider-specific admission (may set FAILED immediately)."""

    @abstractmethod
    def _do_poll(self, job: Job, now: float) -> None:
        """Advance a single non-terminal job's state to time ``now``."""

    @abstractmethod
    def _do_cancel(self, job: Job, now: float) -> None:
        """Provider-specific cancellation."""

    # -- uniform interface ---------------------------------------------------
    def submit(self, now: float, walltime: float | None = None) -> Job:
        """Submit one block; returns the pending (or failed) job."""
        job = Job(
            job_id=f"{self.label}-{next(self._job_seq)}",
            nodes=self.nodes_per_block,
            submitted_at=now,
            walltime=walltime,
        )
        self._jobs[job.job_id] = job
        self._do_submit(job, now)
        return job

    def poll(self, now: float) -> list[Job]:
        """Advance all jobs to ``now``; returns jobs that changed state."""
        changed = []
        for job in self._jobs.values():
            if job.state.terminal:
                continue
            before = job.state
            self._do_poll(job, now)
            if job.state is not before:
                changed.append(job)
        return changed

    def cancel(self, job_id: str, now: float) -> bool:
        job = self._jobs.get(job_id)
        if job is None or job.state.terminal:
            return False
        self._do_cancel(job, now)
        job.state = JobState.CANCELLED
        job.finished_at = now
        return True

    def cancel_all(self, now: float) -> int:
        return sum(self.cancel(job_id, now) for job_id in list(self._jobs))

    # -- introspection -----------------------------------------------------------
    def job(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs_in_state(self, *states: JobState) -> list[Job]:
        wanted = set(states)
        return [j for j in self._jobs.values() if j.state in wanted]

    @property
    def active_blocks(self) -> int:
        """Pending + running blocks — what max_blocks bounds."""
        return len(self.jobs_in_state(JobState.PENDING, JobState.RUNNING))

    @property
    def running_nodes(self) -> int:
        return sum(j.nodes for j in self.jobs_in_state(JobState.RUNNING))

    def can_scale_out(self) -> bool:
        return self.active_blocks < self.limits.max_blocks

    def can_scale_in(self) -> bool:
        return self.active_blocks > self.limits.min_blocks
