"""Batch-scheduler providers: Slurm, PBS/Torque, Cobalt, Condor, SGE.

Each provider wraps a :class:`~repro.providers.batchsim.BatchScheduler`
with scheduler-specific defaults (queue-delay character, directives
rendered into the pilot-job script) — the differences that matter to the
funcX agent are uniform behind :class:`ExecutionProvider`.
"""

from __future__ import annotations

from repro.errors import AllocationExhausted, SubmitFailed
from repro.providers.base import ExecutionProvider, Job, JobState, ProviderLimits
from repro.providers.batchsim import BatchScheduler, QueueModel


class BatchProviderBase(ExecutionProvider):
    """Common machinery for all batch-scheduler providers."""

    #: Subclasses override: directive prefix written into job scripts.
    directive_prefix = "#JOB"
    #: Subclasses override: scheduler-characteristic queue model.
    default_queue_model = QueueModel()

    def __init__(
        self,
        scheduler: BatchScheduler | None = None,
        nodes_per_block: int = 1,
        limits: ProviderLimits | None = None,
        queue: str = "default",
        account: str | None = None,
        walltime: float = 3600.0,
        label: str | None = None,
        seed: int | None = None,
    ):
        super().__init__(
            nodes_per_block=nodes_per_block,
            limits=limits,
            label=label or type(self).__name__.replace("Provider", "").lower(),
        )
        self.scheduler = scheduler or BatchScheduler(
            queue_model=self.default_queue_model, seed=seed
        )
        self.queue = queue
        self.account = account
        self.default_walltime = walltime

    # -- ExecutionProvider hooks ------------------------------------------
    def _do_submit(self, job: Job, now: float) -> None:
        job.walltime = job.walltime or self.default_walltime
        job.metadata["script"] = self.render_submit_script(job)
        try:
            self.scheduler.enqueue(job, now)
        except AllocationExhausted as exc:
            raise SubmitFailed(str(exc)) from exc

    def _do_poll(self, job: Job, now: float) -> None:
        # One scheduler cycle advances every job; per-job state is then read.
        self.scheduler.cycle(now)

    def _do_cancel(self, job: Job, now: float) -> None:
        if job.state is JobState.PENDING:
            self.scheduler.dequeue(job.job_id)
        elif job.state is JobState.RUNNING:
            self.scheduler.release(job.job_id, now)

    # -- script rendering (diagnostic fidelity) ------------------------------
    def render_submit_script(self, job: Job) -> str:
        """The pilot-job script this provider would submit."""
        lines = ["#!/bin/bash"]
        lines.extend(self.render_directives(job))
        lines.append("")
        lines.append("funcx-manager --register-with ${FUNCX_AGENT_ADDRESS}")
        return "\n".join(lines)

    def render_directives(self, job: Job) -> list[str]:
        walltime = int(job.walltime or self.default_walltime)
        hh, rem = divmod(walltime, 3600)
        mm, ss = divmod(rem, 60)
        directives = [
            f"{self.directive_prefix} --nodes={job.nodes}",
            f"{self.directive_prefix} --time={hh:02d}:{mm:02d}:{ss:02d}",
            f"{self.directive_prefix} --queue={self.queue}",
        ]
        if self.account:
            directives.append(f"{self.directive_prefix} --account={self.account}")
        return directives


class SlurmProvider(BatchProviderBase):
    """Slurm: moderate cycle delay, backfill on by default."""

    directive_prefix = "#SBATCH"
    default_queue_model = QueueModel(base_delay=5.0, mean_extra=30.0, max_delay=1800.0)


class PBSProvider(BatchProviderBase):
    """PBS/Torque: slower scheduling cycles than Slurm."""

    directive_prefix = "#PBS"
    default_queue_model = QueueModel(base_delay=15.0, mean_extra=60.0, max_delay=3600.0)


class CobaltProvider(BatchProviderBase):
    """Cobalt (ALCF/Theta): long queues typical of leadership systems."""

    directive_prefix = "#COBALT"
    default_queue_model = QueueModel(base_delay=30.0, mean_extra=300.0, max_delay=7200.0)


class CondorProvider(BatchProviderBase):
    """HTCondor: opportunistic/backfill cycles start small jobs fast."""

    directive_prefix = "#CONDOR"
    default_queue_model = QueueModel(base_delay=2.0, mean_extra=10.0, max_delay=600.0)


class GridEngineProvider(BatchProviderBase):
    """SGE/Grid Engine."""

    directive_prefix = "#$"
    default_queue_model = QueueModel(base_delay=10.0, mean_extra=45.0, max_delay=1800.0)
