"""A simulated batch resource manager.

Research CI "expose batch scheduling interfaces ... and have unpredictable
scheduling delays for provisioning resources" with "long delays, periodic
downtimes" (paper sections 1, 2).  :class:`BatchScheduler` models exactly
those properties for the cluster providers:

* a finite node pool with FIFO-plus-backfill admission;
* sampled queue delay (scheduler cycle time) even when nodes are free;
* allocation accounting in node-seconds (research "billing" requirement);
* scheduled downtime windows during which nothing starts;
* walltime enforcement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AllocationExhausted
from repro.providers.base import Job, JobState


@dataclass(frozen=True)
class QueueModel:
    """Distribution of scheduler-induced queue delay.

    Queue delay is sampled per job as ``base + Expo(mean_extra)``, capped
    at ``max_delay``.  This delay applies *in addition to* waiting for free
    nodes, modelling scheduler cycles and priority churn.
    """

    base_delay: float = 10.0
    mean_extra: float = 60.0
    max_delay: float = 3600.0

    def sample(self, rng: random.Random) -> float:
        extra = rng.expovariate(1.0 / self.mean_extra) if self.mean_extra > 0 else 0.0
        return min(self.base_delay + extra, self.max_delay)


@dataclass
class _QueuedJob:
    job: Job
    eligible_at: float  # earliest start permitted by the queue model


@dataclass
class DowntimeWindow:
    start: float
    end: float

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass
class BatchScheduler:
    """Finite-capacity FIFO/backfill scheduler with allocation accounting.

    Parameters
    ----------
    total_nodes:
        Size of the machine partition available to this user.
    queue_model:
        Sampled per-job scheduler delay.
    allocation_node_seconds:
        Allocation budget; ``None`` disables accounting.  Jobs whose
        requested ``nodes × walltime`` exceeds the remaining budget are
        rejected (the paper's "allocation-based usage models").
    backfill:
        Whether smaller jobs may start ahead of a blocked queue head.
    default_walltime:
        Applied when a job is submitted without one.
    """

    total_nodes: int = 128
    queue_model: QueueModel = field(default_factory=QueueModel)
    allocation_node_seconds: float | None = None
    backfill: bool = True
    default_walltime: float = 3600.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValueError("total_nodes must be positive")
        self._rng = random.Random(self.seed)
        self._queue: list[_QueuedJob] = []
        self._running: list[Job] = []
        self._downtimes: list[DowntimeWindow] = []
        self.allocation_used = 0.0

    # -- admission ----------------------------------------------------------
    def enqueue(self, job: Job, now: float) -> None:
        """Admit a job to the queue (may raise :class:`AllocationExhausted`)."""
        if job.nodes > self.total_nodes:
            job.state = JobState.FAILED
            job.finished_at = now
            job.metadata["failure"] = (
                f"requested {job.nodes} nodes exceeds partition of {self.total_nodes}"
            )
            return
        walltime = job.walltime or self.default_walltime
        job.walltime = walltime
        if self.allocation_node_seconds is not None:
            cost = job.nodes * walltime
            if self.allocation_used + cost > self.allocation_node_seconds:
                job.state = JobState.FAILED
                job.finished_at = now
                job.metadata["failure"] = "allocation exhausted"
                raise AllocationExhausted(
                    f"job needs {cost:.0f} node-seconds; "
                    f"{self.allocation_node_seconds - self.allocation_used:.0f} remain"
                )
            self.allocation_used += cost
        eligible = now + self.queue_model.sample(self._rng)
        self._queue.append(_QueuedJob(job=job, eligible_at=eligible))

    def dequeue(self, job_id: str) -> bool:
        """Remove a pending job (cancellation while queued)."""
        for i, entry in enumerate(self._queue):
            if entry.job.job_id == job_id:
                del self._queue[i]
                return True
        return False

    def release(self, job_id: str, now: float) -> bool:
        """Stop a running job (cancellation or agent shut-down)."""
        for i, job in enumerate(self._running):
            if job.job_id == job_id:
                del self._running[i]
                self._refund_unused(job, now)
                return True
        return False

    # -- downtime -------------------------------------------------------------
    def schedule_downtime(self, start: float, end: float) -> None:
        if end <= start:
            raise ValueError("downtime window must have positive length")
        self._downtimes.append(DowntimeWindow(start, end))

    def in_downtime(self, now: float) -> bool:
        return any(w.covers(now) for w in self._downtimes)

    # -- the scheduling cycle ------------------------------------------------------
    def cycle(self, now: float) -> list[Job]:
        """Run one scheduling cycle at time ``now``.

        Completes jobs past their walltime, then starts eligible queued
        jobs (FIFO head first; backfill fills leftover nodes).  Returns
        jobs whose state changed.
        """
        changed: list[Job] = []

        # 1. walltime completions
        still_running: list[Job] = []
        for job in self._running:
            assert job.started_at is not None and job.walltime is not None
            if now >= job.started_at + job.walltime:
                job.state = JobState.COMPLETED
                job.finished_at = job.started_at + job.walltime
                changed.append(job)
            else:
                still_running.append(job)
        self._running = still_running

        if self.in_downtime(now):
            return changed

        # 2. starts — FIFO with optional backfill
        free = self.free_nodes
        remaining_queue: list[_QueuedJob] = []
        head_blocked = False
        for entry in self._queue:
            job = entry.job
            startable = entry.eligible_at <= now and job.nodes <= free
            if startable and (not head_blocked or self.backfill):
                job.state = JobState.RUNNING
                job.started_at = now
                self._running.append(job)
                free -= job.nodes
                changed.append(job)
            else:
                if not head_blocked:
                    head_blocked = True
                remaining_queue.append(entry)
        self._queue = remaining_queue
        return changed

    # -- introspection ------------------------------------------------------------
    @property
    def free_nodes(self) -> int:
        return self.total_nodes - sum(j.nodes for j in self._running)

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    @property
    def running_jobs(self) -> int:
        return len(self._running)

    def allocation_remaining(self) -> float | None:
        if self.allocation_node_seconds is None:
            return None
        return self.allocation_node_seconds - self.allocation_used

    # -- internals ---------------------------------------------------------------
    def _refund_unused(self, job: Job, now: float) -> None:
        """Credit back unused walltime when a job is released early."""
        if self.allocation_node_seconds is None or job.started_at is None:
            return
        assert job.walltime is not None
        used = max(0.0, now - job.started_at)
        unused = max(0.0, job.walltime - used)
        self.allocation_used = max(0.0, self.allocation_used - job.nodes * unused)
