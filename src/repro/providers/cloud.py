"""Cloud providers: AWS, Azure, GCP instance models.

Cloud instances differ from batch jobs in the ways that matter to funcX:
no queue, but a boot delay of tens of seconds; per-second billing rather
than allocations; instance-count quotas; and (for spot-style capacity)
occasional preemption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.providers.base import ExecutionProvider, Job, JobState, ProviderLimits


@dataclass(frozen=True)
class InstanceType:
    """A purchasable VM shape."""

    name: str
    vcpus: int
    memory_gb: float
    hourly_price: float
    gpu: bool = False


#: A small catalog matching the instance types the paper uses.
INSTANCE_CATALOG: dict[str, InstanceType] = {
    "m5.large": InstanceType("m5.large", 2, 8.0, 0.096),
    "c5n.9xlarge": InstanceType("c5n.9xlarge", 36, 96.0, 1.944),
    "p3.2xlarge": InstanceType("p3.2xlarge", 8, 61.0, 3.06, gpu=True),
    "t3.medium": InstanceType("t3.medium", 2, 4.0, 0.0416),
}


class CloudProvider(ExecutionProvider):
    """Generic IaaS provider with boot delay, quota, billing and preemption.

    Parameters
    ----------
    instance_type:
        Catalog name; determines vCPUs (worker slots) and billing rate.
    boot_mean, boot_jitter:
        Instance boot-time model, seconds.
    quota:
        Maximum simultaneous instances.
    preemption_rate:
        Probability per poll-hour that a running (spot) instance is
        reclaimed; 0 for on-demand.
    """

    cloud_name = "cloud"

    def __init__(
        self,
        instance_type: str = "m5.large",
        limits: ProviderLimits | None = None,
        boot_mean: float = 45.0,
        boot_jitter: float = 10.0,
        quota: int = 20,
        preemption_rate: float = 0.0,
        seed: int | None = None,
    ):
        super().__init__(nodes_per_block=1, limits=limits, label=self.cloud_name)
        if instance_type not in INSTANCE_CATALOG:
            raise ValueError(
                f"unknown instance type {instance_type!r}; "
                f"known: {sorted(INSTANCE_CATALOG)}"
            )
        self.instance_type = INSTANCE_CATALOG[instance_type]
        self.boot_mean = boot_mean
        self.boot_jitter = boot_jitter
        self.quota = quota
        self.preemption_rate = preemption_rate
        self._rng = random.Random(seed)

    # -- billing ------------------------------------------------------------
    def accrued_cost(self, now: float) -> float:
        """Total spend in dollars (per-second billing) up to ``now``."""
        rate = self.instance_type.hourly_price / 3600.0
        total = 0.0
        for job in self._jobs.values():
            if job.started_at is None:
                continue
            end = job.finished_at if job.finished_at is not None else now
            total += max(0.0, end - job.started_at) * rate
        return total

    # -- ExecutionProvider hooks ------------------------------------------------
    def _do_submit(self, job: Job, now: float) -> None:
        if self.active_blocks > self.quota:
            job.state = JobState.FAILED
            job.finished_at = now
            job.metadata["failure"] = f"instance quota of {self.quota} reached"
            return
        boot = max(1.0, self._rng.gauss(self.boot_mean, self.boot_jitter))
        job.metadata["boot_at"] = now + boot
        job.metadata["vcpus"] = self.instance_type.vcpus

    def _do_poll(self, job: Job, now: float) -> None:
        if job.state is JobState.PENDING and now >= job.metadata.get("boot_at", 0.0):
            job.state = JobState.RUNNING
            job.started_at = job.metadata["boot_at"]
        if job.state is JobState.RUNNING:
            if self._maybe_preempt(job, now):
                job.state = JobState.FAILED
                job.finished_at = now
                job.metadata["failure"] = "spot instance preempted"
                return
            if (
                job.walltime is not None
                and job.started_at is not None
                and now >= job.started_at + job.walltime
            ):
                job.state = JobState.COMPLETED
                job.finished_at = job.started_at + job.walltime

    def _do_cancel(self, job: Job, now: float) -> None:
        return  # terminate API call; nothing further to model

    def _maybe_preempt(self, job: Job, now: float) -> bool:
        if self.preemption_rate <= 0.0:
            return False
        last = job.metadata.get("preempt_checked_at")
        job.metadata["preempt_checked_at"] = now
        if last is None:
            return False
        elapsed_hours = max(0.0, (now - last) / 3600.0)
        return self._rng.random() < self.preemption_rate * elapsed_hours


class AWSProvider(CloudProvider):
    cloud_name = "aws"


class AzureProvider(CloudProvider):
    cloud_name = "azure"

    def __init__(self, **kwargs):
        kwargs.setdefault("boot_mean", 60.0)
        super().__init__(**kwargs)


class GCPProvider(CloudProvider):
    cloud_name = "gcp"

    def __init__(self, **kwargs):
        kwargs.setdefault("boot_mean", 35.0)
        super().__init__(**kwargs)
