"""Kubernetes provider: pods as the provisioning unit.

The elasticity experiment (paper §5.3, figure 6) deploys a funcX endpoint
on a Kubernetes cluster and scales *pods* per function container between
0 and 10.  On Kubernetes "both the manager and the worker are deployed
within a pod and thus the manager cannot change worker containers"
(section 4.5) — so pods are typed by container image and the agent routes
tasks to matching pods rather than redeploying containers.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.providers.base import ExecutionProvider, Job, JobState, ProviderLimits


@dataclass
class Pod:
    """A Kubernetes pod running one manager + one worker in one image."""

    pod_id: str
    image: str
    created_at: float
    ready_at: float
    terminated_at: float | None = None

    def is_ready(self, now: float) -> bool:
        return self.terminated_at is None and now >= self.ready_at

    @property
    def active(self) -> bool:
        return self.terminated_at is None


class KubernetesProvider(ExecutionProvider):
    """Pod-granular provider with per-image caps.

    Parameters
    ----------
    max_pods_per_image:
        The paper's experiment limits "each function to use between 0 to
        10 pods"; that cap lives here.
    startup_mean, startup_jitter:
        Pod scheduling + image-pull + container-start time model.  Pods
        come up in seconds, unlike batch jobs.
    cluster_capacity:
        Total pods the cluster can host across all images.
    """

    def __init__(
        self,
        limits: ProviderLimits | None = None,
        max_pods_per_image: int = 10,
        startup_mean: float = 2.0,
        startup_jitter: float = 0.5,
        cluster_capacity: int = 100,
        seed: int | None = None,
    ):
        super().__init__(nodes_per_block=1, limits=limits, label="kubernetes")
        if max_pods_per_image < 1:
            raise ValueError("max_pods_per_image must be positive")
        self.max_pods_per_image = max_pods_per_image
        self.startup_mean = startup_mean
        self.startup_jitter = startup_jitter
        self.cluster_capacity = cluster_capacity
        self._rng = random.Random(seed)
        self._pods: dict[str, Pod] = {}
        self._pod_seq = itertools.count(1)
        self.pod_events: list[tuple[float, str, str]] = []  # (time, event, pod_id)

    # -- pod-level API (used by the elasticity strategy) ---------------------
    def create_pod(self, image: str, now: float) -> Pod | None:
        """Request a pod for ``image``; ``None`` if a cap blocks it."""
        if self.pods_for_image(image, include_pending=True) >= self.max_pods_per_image:
            return None
        if self.active_pod_count(include_pending=True) >= self.cluster_capacity:
            return None
        startup = max(
            0.1, self._rng.gauss(self.startup_mean, self.startup_jitter)
        )
        pod = Pod(
            pod_id=f"pod-{next(self._pod_seq)}",
            image=image,
            created_at=now,
            ready_at=now + startup,
        )
        self._pods[pod.pod_id] = pod
        self.pod_events.append((now, "created", pod.pod_id))
        return pod

    def delete_pod(self, pod_id: str, now: float) -> bool:
        pod = self._pods.get(pod_id)
        if pod is None or pod.terminated_at is not None:
            return False
        pod.terminated_at = now
        self.pod_events.append((now, "deleted", pod.pod_id))
        return True

    def ready_pods(self, image: str, now: float) -> list[Pod]:
        return [
            p for p in self._pods.values() if p.image == image and p.is_ready(now)
        ]

    def pods_for_image(self, image: str, include_pending: bool = True) -> int:
        """Active pods for ``image`` (starting pods count toward caps)."""
        del include_pending  # starting pods always count toward caps
        return sum(1 for p in self._pods.values() if p.image == image and p.active)

    def active_pod_count(self, include_pending: bool = True) -> int:
        del include_pending
        return sum(1 for p in self._pods.values() if p.active)

    def pods(self) -> list[Pod]:
        return list(self._pods.values())

    # -- ExecutionProvider interface (block == one untyped pod) ----------------
    def _do_submit(self, job: Job, now: float) -> None:
        image = job.metadata.get("image", "funcx/worker:latest")
        pod = self.create_pod(image, now)
        if pod is None:
            job.state = JobState.FAILED
            job.finished_at = now
            job.metadata["failure"] = "pod cap reached"
            return
        job.metadata["pod_id"] = pod.pod_id

    def _do_poll(self, job: Job, now: float) -> None:
        pod = self._pods.get(job.metadata.get("pod_id", ""))
        if pod is None:
            return
        if job.state is JobState.PENDING and pod.is_ready(now):
            job.state = JobState.RUNNING
            job.started_at = pod.ready_at
        if pod.terminated_at is not None and job.state is JobState.RUNNING:
            job.state = JobState.COMPLETED
            job.finished_at = pod.terminated_at

    def _do_cancel(self, job: Job, now: float) -> None:
        pod_id = job.metadata.get("pod_id")
        if pod_id:
            self.delete_pod(pod_id, now)
