"""Local provider: the laptop/login-node case.

Turning "any existing resource (e.g., laptop, ...)" into a FaaS endpoint
(paper section 1) needs a provider with no scheduler at all: blocks start
immediately, bounded only by a configurable node (process-slot) cap.
This is also the provider the live fabric uses in tests and examples.
"""

from __future__ import annotations

from repro.providers.base import ExecutionProvider, Job, JobState, ProviderLimits


class LocalProvider(ExecutionProvider):
    """Pilot jobs start instantly on the local machine.

    Parameters
    ----------
    max_nodes:
        Total simultaneous "nodes" (process groups) allowed.
    startup_delay:
        Seconds between submit and RUNNING (process fork + import cost).
    """

    def __init__(
        self,
        nodes_per_block: int = 1,
        limits: ProviderLimits | None = None,
        max_nodes: int = 8,
        startup_delay: float = 0.0,
    ):
        super().__init__(nodes_per_block=nodes_per_block, limits=limits, label="local")
        if max_nodes < 1:
            raise ValueError("max_nodes must be positive")
        self.max_nodes = max_nodes
        self.startup_delay = startup_delay

    def _do_submit(self, job: Job, now: float) -> None:
        # job is already registered as PENDING; exclude it from the count.
        used = self.running_nodes + self._pending_nodes() - job.nodes
        if used + job.nodes > self.max_nodes:
            job.state = JobState.FAILED
            job.finished_at = now
            job.metadata["failure"] = f"local node cap of {self.max_nodes} reached"
            return
        job.metadata["start_at"] = now + self.startup_delay

    def _do_poll(self, job: Job, now: float) -> None:
        if job.state is JobState.PENDING and now >= job.metadata.get("start_at", 0.0):
            job.state = JobState.RUNNING
            job.started_at = job.metadata.get("start_at", now)
        if (
            job.state is JobState.RUNNING
            and job.walltime is not None
            and job.started_at is not None
            and now >= job.started_at + job.walltime
        ):
            job.state = JobState.COMPLETED
            job.finished_at = job.started_at + job.walltime

    def _do_cancel(self, job: Job, now: float) -> None:
        # Nothing external to tear down; base class marks CANCELLED.
        return

    def _pending_nodes(self) -> int:
        return sum(j.nodes for j in self.jobs_in_state(JobState.PENDING))
