"""Elastic scaling strategy (paper sections 4.4, 5.3).

funcX endpoints "dynamically scale and provision compute resources in
response to function load": the provider interface lets users "define
rules for automatic scaling (i.e., limits and scaling aggressiveness)".

:class:`SimpleScalingStrategy` is the shared, time-agnostic policy: given
the current load (outstanding tasks per container type) and the current
supply (pods/blocks per type), it returns scale-out/scale-in decisions.
It reproduces the behaviour in figure 6: pods rise with arriving task
batches (capped at the per-image max) and idle pods are reclaimed after a
short grace period.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScalingDecision:
    """One action for the agent to apply to its provider."""

    action: str           # "scale_out" | "scale_in"
    image: str            # container image / block type
    count: int            # how many pods/blocks
    reason: str = ""


@dataclass
class _IdleRecord:
    idle_since: float | None = None


@dataclass
class SimpleScalingStrategy:
    """Demand-tracking autoscaler.

    Parameters
    ----------
    max_units_per_image:
        Cap on pods/blocks per container image (figure 6 uses 10).
    min_units_per_image:
        Floor kept even when idle (figure 6 uses 0).
    tasks_per_unit:
        Worker slots one unit provides; the target unit count is
        ``ceil(outstanding * parallelism / tasks_per_unit)``.
    parallelism:
        Scaling aggressiveness in (0, 1]; 1 requests a slot per task.
    idle_grace:
        Seconds a unit must be idle (no outstanding or running tasks of
        its type) before scale-in reclaims it.
    """

    max_units_per_image: int = 10
    min_units_per_image: int = 0
    tasks_per_unit: int = 1
    parallelism: float = 1.0
    idle_grace: float = 5.0
    _idle: dict[str, _IdleRecord] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.parallelism <= 1.0:
            raise ValueError("parallelism must be in (0, 1]")
        if self.tasks_per_unit < 1:
            raise ValueError("tasks_per_unit must be positive")
        if self.min_units_per_image > self.max_units_per_image:
            raise ValueError("min_units_per_image exceeds max_units_per_image")

    # ------------------------------------------------------------------
    def target_units(self, outstanding: int) -> int:
        """Units demanded by ``outstanding`` tasks (before caps)."""
        import math

        if outstanding <= 0:
            return 0
        return math.ceil(outstanding * self.parallelism / self.tasks_per_unit)

    def decide(
        self,
        load: dict[str, int],
        supply: dict[str, int],
        now: float,
    ) -> list[ScalingDecision]:
        """Compute scaling actions.

        Parameters
        ----------
        load:
            Outstanding (queued + executing) task count per image key.
        supply:
            Active units per image key.
        now:
            Current time (drives the idle-grace clock).
        """
        decisions: list[ScalingDecision] = []
        images = set(load) | set(supply) | set(self._idle)
        for image in sorted(images):
            outstanding = load.get(image, 0)
            current = supply.get(image, 0)
            target = min(
                self.max_units_per_image,
                max(self.min_units_per_image, self.target_units(outstanding)),
            )
            record = self._idle.setdefault(image, _IdleRecord())

            if outstanding > 0:
                record.idle_since = None
            elif current > self.min_units_per_image and record.idle_since is None:
                record.idle_since = now

            if target > current:
                decisions.append(
                    ScalingDecision(
                        action="scale_out",
                        image=image,
                        count=target - current,
                        reason=f"{outstanding} outstanding tasks need {target} units",
                    )
                )
            elif target < current:
                # Scale in only after the idle grace period (avoids thrash
                # on bursty arrivals); partial scale-downs when still loaded
                # happen immediately.
                if outstanding > 0:
                    decisions.append(
                        ScalingDecision(
                            action="scale_in",
                            image=image,
                            count=current - target,
                            reason="supply exceeds demand",
                        )
                    )
                elif (
                    record.idle_since is not None
                    and (now - record.idle_since) >= self.idle_grace
                ):
                    decisions.append(
                        ScalingDecision(
                            action="scale_in",
                            image=image,
                            count=current - max(target, self.min_units_per_image),
                            reason=f"idle for {now - record.idle_since:.1f}s",
                        )
                    )
        return decisions

    def reset(self) -> None:
        self._idle.clear()
