"""Serialization facade (paper section 4.6).

funcX serializes arbitrary Python functions and data by trying an ordered
list of serialization methods until one succeeds, then packing the payload
into a tagged buffer whose header records the method used so that only the
buffer needs to be inspected at the destination.

The public surface is :class:`FuncXSerializer` plus the buffer pack/unpack
helpers.
"""

from repro.serialize.buffers import pack_buffer, unpack_buffer, BufferHeader
from repro.serialize.facade import FuncXSerializer
from repro.serialize.methods import (
    SerializationMethod,
    JsonMethod,
    NumpyMethod,
    PickleMethod,
    SourceCodeMethod,
    CodePickleMethod,
    TracebackMethod,
)
from repro.serialize.traceback import RemoteExceptionWrapper, SerializableTraceback

__all__ = [
    "FuncXSerializer",
    "pack_buffer",
    "unpack_buffer",
    "BufferHeader",
    "SerializationMethod",
    "JsonMethod",
    "NumpyMethod",
    "PickleMethod",
    "SourceCodeMethod",
    "CodePickleMethod",
    "TracebackMethod",
    "RemoteExceptionWrapper",
    "SerializableTraceback",
]
