"""Tagged payload buffers.

The paper packs serialized objects "into buffers with headers that include
routing tags and the serialization method, such that only the buffers need
be unpacked and deserialized at the destination" (section 4.6).

Wire format (all ASCII header, binary payload)::

    <method:2><\x1f><routing-tag><\x1f><payload-length:decimal><\n><payload>

The routing tag is free-form (task id, endpoint id, "result", ...) and is
readable without deserializing the payload, which is what lets forwarders
route buffers they cannot (and should not) decode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeserializationError

_SEP = b"\x1f"
_END = b"\n"
_MAX_HEADER = 4096


@dataclass(frozen=True)
class BufferHeader:
    """Decoded buffer header."""

    method: str
    routing_tag: str
    payload_length: int


def pack_buffer(method: str, routing_tag: str, payload: bytes) -> bytes:
    """Pack ``payload`` into a routed buffer.

    Parameters
    ----------
    method:
        Two-character serialization-method identifier.
    routing_tag:
        Free-form routing string; must not contain the separator byte.
    payload:
        The serialized object bytes.
    """
    if len(method) != 2:
        raise ValueError(f"method identifier must be 2 chars, got {method!r}")
    tag_bytes = routing_tag.encode("utf-8")
    if _SEP in tag_bytes or _END in tag_bytes:
        raise ValueError("routing tag contains reserved separator bytes")
    header = method.encode("ascii") + _SEP + tag_bytes + _SEP + str(len(payload)).encode("ascii") + _END
    return header + payload


def peek_header(buffer: bytes) -> BufferHeader:
    """Decode only the header of a packed buffer (no payload copy)."""
    end = buffer.find(_END, 0, _MAX_HEADER)
    if end < 0:
        raise DeserializationError("buffer header terminator not found")
    header = buffer[:end]
    parts = header.split(_SEP)
    if len(parts) != 3:
        raise DeserializationError(f"malformed buffer header: {header!r}")
    method_b, tag_b, length_b = parts
    try:
        method = method_b.decode("ascii")
        tag = tag_b.decode("utf-8")
        length = int(length_b)
    except (UnicodeDecodeError, ValueError) as exc:
        raise DeserializationError(f"corrupt buffer header: {exc}") from exc
    if len(method) != 2 or length < 0:
        raise DeserializationError(f"invalid buffer header fields: {header!r}")
    return BufferHeader(method=method, routing_tag=tag, payload_length=length)


def unpack_buffer(buffer: bytes) -> tuple[BufferHeader, bytes]:
    """Split a packed buffer into its header and payload bytes.

    Raises
    ------
    DeserializationError
        If the header is malformed or the payload is truncated.
    """
    header = peek_header(buffer)
    start = buffer.find(_END) + 1
    payload = buffer[start : start + header.payload_length]
    if len(payload) != header.payload_length:
        raise DeserializationError(
            f"truncated payload: expected {header.payload_length} bytes, "
            f"got {len(payload)}"
        )
    return header, payload
