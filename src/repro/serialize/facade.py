"""The ordered-fallback serialization facade (paper section 4.6)."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import DeserializationError, SerializationError
from repro.serialize.buffers import pack_buffer, unpack_buffer
from repro.serialize.methods import (
    DEFAULT_CODE_METHODS,
    DEFAULT_DATA_METHODS,
    SerializationMethod,
    TracebackMethod,
)
from repro.serialize.traceback import RemoteExceptionWrapper


class FuncXSerializer:
    """Serialize arbitrary objects by trying methods in speed order.

    The facade keeps two ordered method lists: one for data payloads and one
    for code (callables).  ``serialize`` walks the appropriate list until a
    method succeeds and returns a routed buffer; ``deserialize`` reads the
    buffer header to select the exact decoding method.

    Parameters
    ----------
    data_methods, code_methods:
        Override the default method orderings (useful for the serializer
        ablation benchmark).
    """

    def __init__(
        self,
        data_methods: Sequence[SerializationMethod] | None = None,
        code_methods: Sequence[SerializationMethod] | None = None,
    ):
        self._data_methods = tuple(data_methods or DEFAULT_DATA_METHODS)
        self._code_methods = tuple(code_methods or DEFAULT_CODE_METHODS)
        self._by_id: dict[str, SerializationMethod] = {}
        for method in (*self._data_methods, *self._code_methods):
            existing = self._by_id.get(method.identifier)
            if existing is not None and type(existing) is not type(method):
                raise ValueError(
                    f"conflicting methods registered for id {method.identifier!r}"
                )
            self._by_id[method.identifier] = method
        # The traceback decoder must always be available: any worker may
        # return a wrapped exception regardless of configured orderings.
        self._by_id.setdefault(TracebackMethod.identifier, TracebackMethod())

    # ------------------------------------------------------------------
    def serialize(self, obj: Any, routing_tag: str = "") -> bytes:
        """Serialize ``obj`` into a routed buffer.

        Callables go through the code-method chain; exception wrappers go
        straight to the traceback method; everything else uses the data
        chain.
        """
        if isinstance(obj, RemoteExceptionWrapper):
            method = self._by_id[TracebackMethod.identifier]
            return pack_buffer(method.identifier, routing_tag, method.serialize(obj))

        methods = self._code_methods if callable(obj) else self._data_methods
        errors: list[str] = []
        for method in methods:
            try:
                payload = method.serialize(obj)
            except SerializationError as exc:
                errors.append(f"{type(method).__name__}: {exc}")
                continue
            return pack_buffer(method.identifier, routing_tag, payload)
        raise SerializationError(
            "no serialization method accepted object "
            f"{type(obj).__name__}; tried: {'; '.join(errors)}"
        )

    def deserialize(self, buffer: bytes) -> Any:
        """Decode a routed buffer back into the original object."""
        header, payload = unpack_buffer(buffer)
        method = self._by_id.get(header.method)
        if method is None:
            raise DeserializationError(f"unknown serialization method {header.method!r}")
        return method.deserialize(payload)

    def routing_tag(self, buffer: bytes) -> str:
        """Read the routing tag without deserializing the payload."""
        from repro.serialize.buffers import peek_header

        return peek_header(buffer).routing_tag

    # ------------------------------------------------------------------
    def serialize_function(self, func: Callable[..., Any], routing_tag: str = "") -> bytes:
        """Explicitly serialize a callable via the code-method chain."""
        if not callable(func):
            raise SerializationError(f"expected callable, got {type(func).__name__}")
        return self.serialize(func, routing_tag=routing_tag)

    def check_roundtrip(self, obj: Any) -> bool:
        """Whether ``obj`` survives serialize→deserialize (by equality)."""
        try:
            return self.deserialize(self.serialize(obj)) == obj
        except (SerializationError, DeserializationError):
            return False
