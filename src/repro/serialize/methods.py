"""Individual serialization methods used by the facade.

The paper's serializer "sorts the serialization libraries by speed and
applies them in order successively until the object is serialized",
leveraging cpickle, dill, tblib and JSON.  We implement equivalents from
scratch on the standard library:

* :class:`JsonMethod` — fastest, handles plain data (dict/list/str/num).
* :class:`PickleMethod` — cpickle equivalent; handles most Python objects.
* :class:`SourceCodeMethod` — serializes a *function* as its source text,
  reconstructed with ``exec`` at the destination.  This is how funcX ships
  interactively defined functions whose modules do not exist remotely.
* :class:`CodePickleMethod` — dill equivalent built on ``marshal``: encodes
  the code object, defaults and (best-effort) closure of a function so that
  lambdas and nested functions — which plain pickle rejects — round-trip.
* :class:`TracebackMethod` — tblib equivalent for exception + traceback
  transport (see :mod:`repro.serialize.traceback`).

Each method owns a two-character identifier used in buffer headers.
"""

from __future__ import annotations

import json
import marshal
import pickle
import types
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import DeserializationError, SerializationError
from repro.serialize.traceback import RemoteExceptionWrapper


class SerializationMethod(ABC):
    """A single strategy for converting objects to and from bytes.

    Attributes
    ----------
    identifier:
        Two-character code stored in buffer headers (e.g. ``"01"``).
    for_code:
        Whether this method is intended for callables (function bodies)
        rather than data payloads.  The facade tries code methods only when
        serializing callables.
    """

    identifier: str = "??"
    for_code: bool = False

    @abstractmethod
    def serialize(self, obj: Any) -> bytes:
        """Encode ``obj``; raise :class:`SerializationError` if unsupported."""

    @abstractmethod
    def deserialize(self, payload: bytes) -> Any:
        """Decode ``payload``; raise :class:`DeserializationError` on corrupt data."""


class JsonMethod(SerializationMethod):
    """JSON for plain data — the fastest path for simple payloads."""

    identifier = "00"
    for_code = False

    def serialize(self, obj: Any) -> bytes:
        try:
            text = json.dumps(obj, separators=(",", ":"), allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"not JSON-serializable: {exc}") from exc
        # JSON must round-trip *exactly*: tuples decay to lists and non-str
        # dict keys to strings, which would corrupt payloads silently.
        if json.loads(text) != obj:
            raise SerializationError("object does not survive JSON round-trip")
        return text.encode("utf-8")

    def deserialize(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DeserializationError(f"corrupt JSON payload: {exc}") from exc


class PickleMethod(SerializationMethod):
    """Binary pickle for general Python objects (cpickle equivalent)."""

    identifier = "01"
    for_code = False

    def serialize(self, obj: Any) -> bytes:
        try:
            return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # pickle raises many types
            raise SerializationError(f"not picklable: {exc}") from exc

    def deserialize(self, payload: bytes) -> Any:
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise DeserializationError(f"corrupt pickle payload: {exc}") from exc


class SourceCodeMethod(SerializationMethod):
    """Ship a function as its source text.

    The paper requires that "the function body must specify all imported
    modules" (section 3) precisely so that source-shipping works: the
    destination ``exec``s the source in a fresh namespace and pulls the
    function out by name.
    """

    identifier = "02"
    for_code = True

    def serialize(self, obj: Any) -> bytes:
        import inspect
        import textwrap

        if not isinstance(obj, types.FunctionType):
            raise SerializationError("source method only serializes plain functions")
        if obj.__closure__:
            # A closure's captured cells are invisible to exec'd source;
            # the code-pickle method handles those.
            raise SerializationError("function captures a closure; source unsafe")
        try:
            source = inspect.getsource(obj)
        except (OSError, TypeError) as exc:
            raise SerializationError(f"source unavailable: {exc}") from exc
        source = textwrap.dedent(source)
        # Decorated or indented definitions would exec incorrectly.
        if not source.lstrip().startswith("def "):
            raise SerializationError("source does not start with a def statement")
        record = {"name": obj.__name__, "source": source}
        return json.dumps(record).encode("utf-8")

    def deserialize(self, payload: bytes) -> Any:
        try:
            record = json.loads(payload.decode("utf-8"))
            namespace: dict[str, Any] = {}
            exec(record["source"], namespace)  # noqa: S102 - core mechanism
            return namespace[record["name"]]
        except DeserializationError:
            raise
        except Exception as exc:
            raise DeserializationError(f"cannot reconstruct function: {exc}") from exc


class CodePickleMethod(SerializationMethod):
    """Encode a function through its code object (dill equivalent).

    Handles lambdas and closures that plain pickle rejects.  The code object
    is marshalled; defaults and closure cells are pickled.  Functions whose
    closures capture unpicklable state fail over to the next method.
    """

    identifier = "03"
    for_code = True

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, types.FunctionType):
            raise SerializationError("code-pickle only serializes plain functions")
        try:
            code_bytes = marshal.dumps(obj.__code__)
            closure_values = (
                tuple(cell.cell_contents for cell in obj.__closure__)
                if obj.__closure__
                else None
            )
            record = (
                obj.__name__,
                code_bytes,
                pickle.dumps(obj.__defaults__, protocol=pickle.HIGHEST_PROTOCOL),
                pickle.dumps(closure_values, protocol=pickle.HIGHEST_PROTOCOL),
            )
            return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(f"code-pickle failed: {exc}") from exc

    def deserialize(self, payload: bytes) -> Any:
        try:
            name, code_bytes, defaults_b, closure_b = pickle.loads(payload)
            code = marshal.loads(code_bytes)
            defaults = pickle.loads(defaults_b)
            closure_values = pickle.loads(closure_b)
            closure = (
                tuple(types.CellType(v) for v in closure_values)
                if closure_values is not None
                else None
            )
            # Builtins must be present for the reconstructed function to run.
            globals_ns: dict[str, Any] = {"__builtins__": __builtins__}
            func = types.FunctionType(code, globals_ns, name, defaults, closure)
            return func
        except Exception as exc:
            raise DeserializationError(f"cannot rebuild code object: {exc}") from exc


class NumpyMethod(SerializationMethod):
    """Zero-copy-ish transport for contiguous NumPy arrays.

    Science payloads (detector frames, spectra) are overwhelmingly numeric
    arrays; pickling them costs an extra buffer copy and pickle-opcode
    overhead.  This method writes ``dtype\\x00shape\\x00raw-bytes`` directly
    from the array's buffer (the mpi4py guide's buffer-provider idiom) and
    reconstructs with ``np.frombuffer``.

    Only C-contiguous, non-object arrays qualify; anything else falls
    through to pickle.
    """

    identifier = "05"
    for_code = False

    _SEP = b"\x00"

    def serialize(self, obj: Any) -> bytes:
        import numpy as np

        if not isinstance(obj, np.ndarray):
            raise SerializationError("not a numpy array")
        if obj.dtype.hasobject:
            raise SerializationError("object arrays are not buffer-safe")
        if not obj.flags["C_CONTIGUOUS"]:
            raise SerializationError("array is not C-contiguous")
        dtype = obj.dtype.str.encode("ascii")
        shape = ",".join(str(d) for d in obj.shape).encode("ascii")
        return dtype + self._SEP + shape + self._SEP + obj.tobytes()

    def deserialize(self, payload: bytes) -> Any:
        import numpy as np

        try:
            dtype_b, rest = payload.split(self._SEP, 1)
            shape_b, raw = rest.split(self._SEP, 1)
            dtype = np.dtype(dtype_b.decode("ascii"))
            shape = tuple(int(d) for d in shape_b.decode("ascii").split(",") if d)
            array = np.frombuffer(raw, dtype=dtype).reshape(shape)
            return array.copy()  # writable, owns its memory
        except Exception as exc:
            raise DeserializationError(f"corrupt array payload: {exc}") from exc


class TracebackMethod(SerializationMethod):
    """Transport exceptions with their traceback text (tblib equivalent)."""

    identifier = "04"
    for_code = False

    def serialize(self, obj: Any) -> bytes:
        if not isinstance(obj, RemoteExceptionWrapper):
            raise SerializationError("traceback method only serializes wrappers")
        try:
            return pickle.dumps(obj.to_record(), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SerializationError(f"traceback not picklable: {exc}") from exc

    def deserialize(self, payload: bytes) -> Any:
        try:
            return RemoteExceptionWrapper.from_record(pickle.loads(payload))
        except Exception as exc:
            raise DeserializationError(f"corrupt traceback payload: {exc}") from exc


#: Methods in the order the facade tries them for *data* payloads.
#: JSON first — not for raw speed (pickle is faster once JSON pays its
#: exact round-trip check; see bench_ablation_serializer) but because a
#: JSON buffer is wire-interoperable and deserializing it cannot execute
#: code; then the NumPy buffer fast path; then general pickle.
DEFAULT_DATA_METHODS: tuple[SerializationMethod, ...] = (
    JsonMethod(),
    NumpyMethod(),
    PickleMethod(),
    TracebackMethod(),
)

#: Methods in the order the facade tries them for *code* (callables).
#: Source text first: ~30x slower to produce than code-pickle, but paid
#: once per registration, and — unlike marshal'd code objects — portable
#: across Python versions between client and worker.
DEFAULT_CODE_METHODS: tuple[SerializationMethod, ...] = (
    SourceCodeMethod(),
    CodePickleMethod(),
    PickleMethod(),
)
