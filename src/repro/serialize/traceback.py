"""Serializable exception/traceback transport (tblib equivalent).

Python tracebacks reference frames and cannot be pickled.  Workers that
catch a user-function exception wrap it in :class:`RemoteExceptionWrapper`,
which captures the formatted traceback and enough structure to re-raise a
faithful error on the submitting client.
"""

from __future__ import annotations

import traceback as _tb
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TaskExecutionFailed


@dataclass(frozen=True)
class FrameSummary:
    """One stack frame of a remote traceback."""

    filename: str
    lineno: int
    name: str
    line: str

    def format(self) -> str:
        return f'  File "{self.filename}", line {self.lineno}, in {self.name}\n    {self.line}\n'


@dataclass(frozen=True)
class SerializableTraceback:
    """A picklable snapshot of a traceback."""

    frames: tuple[FrameSummary, ...] = field(default_factory=tuple)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "SerializableTraceback":
        frames = tuple(
            FrameSummary(f.filename, f.lineno or 0, f.name, f.line or "")
            for f in _tb.extract_tb(exc.__traceback__)
        )
        return cls(frames=frames)

    def format(self) -> str:
        out = "Traceback (most recent call last):\n"
        out += "".join(f.format() for f in self.frames)
        return out


class RemoteExceptionWrapper:
    """Carries a remote exception across the wire and re-raises it locally.

    Parameters
    ----------
    exc:
        The exception caught on the worker.

    Notes
    -----
    If the original exception type itself pickles, we keep it so ``reraise``
    restores the exact type; otherwise only the formatted representation
    survives and ``reraise`` raises :class:`TaskExecutionFailed`.
    """

    def __init__(self, exc: BaseException):
        import pickle

        self.exc_type_name = type(exc).__name__
        self.exc_str = str(exc)
        self.traceback = SerializableTraceback.from_exception(exc)
        try:
            self._exc_pickle: bytes | None = pickle.dumps(exc)
        except Exception:
            self._exc_pickle = None

    # -- record form used by the serialization method -----------------------
    def to_record(self) -> dict[str, Any]:
        return {
            "type": self.exc_type_name,
            "str": self.exc_str,
            "traceback": self.traceback,
            "pickle": self._exc_pickle,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "RemoteExceptionWrapper":
        obj = cls.__new__(cls)
        obj.exc_type_name = record["type"]
        obj.exc_str = record["str"]
        obj.traceback = record["traceback"]
        obj._exc_pickle = record["pickle"]
        return obj

    # -----------------------------------------------------------------------
    def format(self) -> str:
        """The formatted remote traceback, ending with the exception line."""
        return f"{self.traceback.format()}{self.exc_type_name}: {self.exc_str}\n"

    def reraise(self) -> None:
        """Re-raise the remote exception on the caller's stack."""
        import pickle

        if self._exc_pickle is not None:
            try:
                exc = pickle.loads(self._exc_pickle)
            except Exception:
                exc = None
            if isinstance(exc, BaseException):
                exc.__cause__ = TaskExecutionFailed(self.format())
                raise exc
        raise TaskExecutionFailed(self.format())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteExceptionWrapper({self.exc_type_name}: {self.exc_str!r})"
