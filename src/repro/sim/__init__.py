"""Discrete-event simulation fabric.

The paper's scale experiments run on Theta (4392 KNL nodes) and Cori
(9688 KNL nodes) with up to 131,072 concurrent containers — hardware this
reproduction does not have.  Per the substitution rule, this package
drives the *same protocol logic* (hierarchical queueing, advertisements,
prefetching, internal batching, heartbeats, failure recovery,
memoization) under a discrete-event kernel with platform models
calibrated to the paper's measured ceilings, so every scaling, elasticity
and fault-tolerance figure can be regenerated at full scale in simulated
time.
"""

from repro.sim.kernel import Event, EventLoop
from repro.sim.platform import PLATFORMS, SimPlatform
from repro.sim.fabric import FailureSchedule, SimFabric, SimReport, SimTask
from repro.sim.elasticity import ElasticitySimulation, PodTimelines

__all__ = [
    "EventLoop",
    "Event",
    "SimPlatform",
    "PLATFORMS",
    "SimFabric",
    "SimTask",
    "SimReport",
    "FailureSchedule",
    "ElasticitySimulation",
    "PodTimelines",
]
