"""Kubernetes elasticity simulation (paper §5.3, figure 6).

"We deployed three sleep functions (running for 1s, 10s, and 20s), each
in its own container.  We limit each function to use between 0 to 10
pods.  Every 120 seconds, we submitted one 1s, five 10s, and twenty 20s
functions to the endpoint."

The simulation drives the *real* :class:`KubernetesProvider` and
:class:`SimpleScalingStrategy` policy objects under the event loop: the
strategy is evaluated periodically against per-image outstanding load,
pods start after a modelled startup delay, execute queued tasks serially
(one worker per pod, §4.5), and idle pods are reclaimed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.metrics.timeline import Timeline
from repro.providers.kubernetes import KubernetesProvider, Pod
from repro.providers.strategy import SimpleScalingStrategy
from repro.sim.kernel import EventLoop
from repro.workloads.generators import ArrivalEvent


@dataclass
class _ImageState:
    queue: deque = field(default_factory=deque)      # waiting _SimPodTask
    executing: int = 0
    idle_pods: list[str] = field(default_factory=list)   # ready pod ids
    busy_pods: set[str] = field(default_factory=set)


@dataclass
class PodTimelines:
    """The two panels of figure 6."""

    outstanding: Timeline      # series per image: pending+executing functions
    active_pods: Timeline      # series per image: active pod count
    completed: int = 0

    def peak_pods(self, image: str) -> float:
        return self.active_pods.max_over(image)


class _SimPodTask:
    __slots__ = ("duration", "submitted")

    def __init__(self, duration: float, submitted: float):
        self.duration = duration
        self.submitted = submitted


class ElasticitySimulation:
    """Autoscaling pods against a bursty workload.

    Parameters
    ----------
    provider:
        The Kubernetes provider model (pod caps, startup time).
    strategy:
        The scaling policy (max 10 pods per image in the paper's run).
    evaluation_period:
        How often the endpoint evaluates the strategy, seconds.
    sample_period:
        Timeline sampling interval, seconds.
    """

    def __init__(
        self,
        provider: KubernetesProvider | None = None,
        strategy: SimpleScalingStrategy | None = None,
        evaluation_period: float = 1.0,
        sample_period: float = 2.0,
    ):
        self.loop = EventLoop()
        self.provider = provider or KubernetesProvider(
            max_pods_per_image=10, startup_mean=2.0, startup_jitter=0.3, seed=7
        )
        self.strategy = strategy or SimpleScalingStrategy(
            max_units_per_image=10, min_units_per_image=0, idle_grace=5.0
        )
        self.evaluation_period = evaluation_period
        self.sample_period = sample_period
        self._images: dict[str, _ImageState] = {}
        self._pod_image: dict[str, str] = {}
        self.timelines = PodTimelines(outstanding=Timeline(), active_pods=Timeline())
        self._horizon = 0.0

    # ------------------------------------------------------------------
    def submit(self, arrivals: list[ArrivalEvent]) -> None:
        """Schedule the workload; ``workload`` labels name the images."""
        for event in arrivals:
            self._images.setdefault(event.workload, _ImageState())
            self.loop.at(event.time, self._arrive, event.workload,
                         _SimPodTask(event.duration, event.time))
            self._horizon = max(self._horizon, event.time + event.duration)

    def _arrive(self, image: str, task: _SimPodTask) -> None:
        state = self._images[image]
        state.queue.append(task)
        self._feed_pods(image)

    # ------------------------------------------------------------------
    # pod lifecycle
    # ------------------------------------------------------------------
    def _feed_pods(self, image: str) -> None:
        state = self._images[image]
        while state.queue and state.idle_pods:
            pod_id = state.idle_pods.pop()
            task = state.queue.popleft()
            state.busy_pods.add(pod_id)
            state.executing += 1
            self.loop.schedule(task.duration, self._finish, image, pod_id)

    def _finish(self, image: str, pod_id: str) -> None:
        state = self._images[image]
        state.executing -= 1
        state.busy_pods.discard(pod_id)
        self.timelines.completed += 1
        if self._pod_alive(pod_id):
            state.idle_pods.append(pod_id)
            self._feed_pods(image)

    def _pod_ready(self, image: str, pod: Pod) -> None:
        if pod.terminated_at is not None:
            return
        state = self._images[image]
        state.idle_pods.append(pod.pod_id)
        self._feed_pods(image)

    def _pod_alive(self, pod_id: str) -> bool:
        for pod in self.provider.pods():
            if pod.pod_id == pod_id:
                return pod.active
        return False

    # ------------------------------------------------------------------
    # the scaling loop
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        now = self.loop.now
        load = {
            image: len(state.queue) + state.executing
            for image, state in self._images.items()
        }
        supply = {
            image: self.provider.pods_for_image(image) for image in self._images
        }
        for decision in self.strategy.decide(load, supply, now):
            state = self._images.get(decision.image)
            if state is None:
                continue
            if decision.action == "scale_out":
                for _ in range(decision.count):
                    pod = self.provider.create_pod(decision.image, now)
                    if pod is None:
                        break
                    self._pod_image[pod.pod_id] = decision.image
                    self.loop.at(pod.ready_at, self._pod_ready, decision.image, pod)
            elif decision.action == "scale_in":
                # Reclaim idle pods only; busy pods finish their task.
                for _ in range(decision.count):
                    if not state.idle_pods:
                        break
                    pod_id = state.idle_pods.pop()
                    self.provider.delete_pod(pod_id, now)
        self.loop.schedule(self.evaluation_period, self._evaluate)

    def _sample(self) -> None:
        now = self.loop.now
        for image, state in self._images.items():
            self.timelines.outstanding.record(image, now, len(state.queue) + state.executing)
            self.timelines.active_pods.record(
                image, now, self.provider.pods_for_image(image)
            )
        self.loop.schedule(self.sample_period, self._sample)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> PodTimelines:
        """Run the scenario; returns the figure-6 timelines."""
        horizon = until if until is not None else self._horizon + 60.0
        self.loop.schedule(0.0, self._evaluate)
        self.loop.schedule(0.0, self._sample)
        self.loop.run(until=horizon)
        return self.timelines
