"""The simulated funcX fabric: service → agent → managers → workers.

Reproduces the agent-level behaviour the paper evaluates at scale:

* the serialized agent dispatch pipeline whose inverse overhead is the
  measured throughput ceiling (§5.2.3);
* manager advertisement round trips, internal batching (§5.5.2) and
  opportunistic prefetching (§5.5.5);
* service-side memoization with a serialized service pipeline (§5.5.6);
* heartbeat-based failure detection with task re-execution for manager
  and endpoint failures (§5.4).

The simulation tracks each task individually (a 1.3M-task weak-scaling
run processes a few million events) but dispatches in bounded chunks so
the event count stays linear in tasks, not tasks × managers.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.sim.kernel import EventLoop
from repro.sim.platform import SimPlatform
from repro.workloads.generators import ArrivalEvent


class SimTask:
    """One simulated task and its timestamps."""

    __slots__ = (
        "task_id",
        "duration",
        "container_key",
        "memo_key",
        "created",
        "service_done",
        "dispatched",
        "started",
        "completed",
        "delivered",
        "attempts",
        "memo_hit",
    )

    def __init__(self, task_id: int, duration: float, container_key: str = "RAW",
                 memo_key: int | None = None, created: float = 0.0):
        self.task_id = task_id
        self.duration = duration
        self.container_key = container_key
        self.memo_key = memo_key
        self.created = created
        self.service_done = -1.0
        self.dispatched = -1.0
        self.started = -1.0
        self.completed = -1.0
        self.delivered = -1.0
        self.attempts = 0
        self.memo_hit = False

    @property
    def latency(self) -> float:
        return self.completed - self.created

    @property
    def delivery_latency(self) -> float:
        """Client-observed latency (result-delivery runs only)."""
        return self.delivered - self.created


@dataclass(frozen=True)
class FailureSchedule:
    """When components fail and recover (simulated seconds).

    ``manager_failures`` entries are ``(fail_at, recover_at, manager_index)``;
    ``endpoint_failures`` entries are ``(fail_at, recover_at)``.
    """

    manager_failures: tuple[tuple[float, float, int], ...] = ()
    endpoint_failures: tuple[tuple[float, float], ...] = ()


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    completion_time: float
    tasks_completed: int
    throughput: float
    latencies: np.ndarray
    completion_times: np.ndarray
    events_processed: int
    memo_hits: int = 0
    reexecutions: int = 0
    #: Client-observed latencies (``delivered - created``); ``None``
    #: unless the fabric models result delivery (push or poll).
    delivery_latencies: np.ndarray | None = None
    results_delivered: int = 0

    def latency_timeline(self, bin_width: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Mean task latency per completion-time bin (figures 7 and 8)."""
        if self.completion_times.size == 0:
            return np.array([]), np.array([])
        bins = np.floor(self.completion_times / bin_width).astype(int)
        unique = np.unique(bins)
        centers = (unique + 0.5) * bin_width
        means = np.array([self.latencies[bins == b].mean() for b in unique])
        return centers, means


class _SimManager:
    """Per-node state: workers, local queue, dispatch credit."""

    __slots__ = (
        "index",
        "workers",
        "idle",
        "queue",
        "credit",
        "alive",
        "running",
        "deployed",
    )

    def __init__(self, index: int, workers: int, credit: int):
        self.index = index
        self.workers = workers
        self.idle = workers
        self.queue: deque[SimTask] = deque()
        self.credit = credit           # tasks the agent may still send
        self.alive = True
        self.running: set[SimTask] = set()
        self.deployed: set[str] = {"RAW"}


class SimFabric:
    """One endpoint (agent + managers) under simulated time.

    Parameters
    ----------
    platform:
        Timing model (Theta/Cori/EC2/K8S).
    managers:
        Number of compute nodes (one manager each).
    workers_per_manager:
        Containers per node; defaults to the platform's value.
    prefetch:
        Tasks each manager may hold queued beyond its workers (§5.5.5).
    internal_batching:
        When False, each manager fetches one task per
        ``platform.single_task_cycle`` round trip (§5.5.2 baseline).
    advertise_idle:
        When True (default) managers request tasks for every idle worker
        plus the prefetch allowance (§5.5.2's batching-enabled mode).
        When False the advertisement requests exactly ``prefetch`` tasks
        per cycle — the §5.5.5 experiment, whose x-axis is the per-node
        prefetch count itself.
    adaptive_batching:
        Nagle-style wave hold-down, the same policy the live forwarder
        runs: when the pending backlog is below the fill target
        (dispatch chunk ∧ aggregate manager credit) the agent defers the
        wave by ``hold_scale × agent_dispatch_overhead`` so trickling
        arrivals coalesce into fuller, fewer dispatch events.  Off by
        default so the published figure experiments replay unchanged.
    hold_scale:
        The hold budget as a multiple of the per-task dispatch overhead.
    memoize:
        Enable the service-side memoization cache.
    memo_prewarmed:
        Treat every repeated ``memo_key`` as a hit even before its first
        completion — matching the paper's Table 3 setup, where repeats of
        a deterministic 1 s function always hit.
    heartbeat_period, heartbeat_grace:
        Failure-detection parameters (§5.4).
    result_delivery:
        ``None`` (default) stops the clock when the result lands at the
        agent, matching the published figure experiments.  ``"push"``
        mirrors the live result stream: the client sees the result one
        ``result_latency`` after it reaches the service.  ``"poll"``
        quantizes visibility to the client's next poll tick — the result
        becomes observable at the first multiple of ``poll_interval``
        at or after its arrival, adding ``poll_interval/2`` expected
        delay on top of the link latency.
    result_latency:
        One-way service → client link latency (seconds).
    poll_interval:
        The polling client's period (seconds; ``"poll"`` mode only).
    """

    #: Max tasks dispatched per agent event (bounds event count; the
    #: chunk is serialized at ``agent_dispatch_overhead`` per task).
    DISPATCH_CHUNK = 64

    def __init__(
        self,
        platform: SimPlatform,
        managers: int,
        workers_per_manager: int | None = None,
        prefetch: int = 0,
        internal_batching: bool = True,
        advertise_idle: bool = True,
        adaptive_batching: bool = False,
        hold_scale: float = 4.0,
        memoize: bool = False,
        memo_prewarmed: bool = True,
        heartbeat_period: float = 1.0,
        heartbeat_grace: int = 3,
        seed: int | None = None,
        result_delivery: str | None = None,
        result_latency: float = 0.001,
        poll_interval: float = 0.01,
        service_shards: int = 1,
    ):
        if managers < 1:
            raise ValueError("need at least one manager")
        if service_shards < 1:
            raise ValueError("need at least one service shard")
        if result_delivery not in (None, "push", "poll"):
            raise ValueError("result_delivery must be None, 'push' or 'poll'")
        if result_delivery == "poll" and poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.platform = platform
        self.loop = EventLoop()
        self.prefetch = prefetch
        self.internal_batching = internal_batching
        self.advertise_idle = advertise_idle
        self.adaptive_batching = adaptive_batching
        self.hold_scale = hold_scale
        self._flush_at: float | None = None
        self.waves_dispatched = 0
        self.waves_held = 0
        self.memoize = memoize
        self.memo_prewarmed = memo_prewarmed
        self.heartbeat_period = heartbeat_period
        self.heartbeat_grace = heartbeat_grace
        self._rng = random.Random(seed)
        workers = workers_per_manager or platform.containers_per_node
        credit = self._initial_credit(workers)
        self.managers = [_SimManager(i, workers, credit) for i in range(managers)]
        self._ready: deque[_SimManager] = deque(m for m in self.managers)
        self.pending: deque[SimTask] = deque()
        self.endpoint_alive = True
        self._service_held: deque[SimTask] = deque()
        self._agent_busy = False
        # Sharded service plane mirror: each shard is an independent
        # serialized pipeline, so N shards give N-way admission
        # parallelism (the live fabric's ``ServiceConfig.shards``).
        # Arrivals round-robin across shards — the analytic analogue of
        # hashing task ids over the consistent-hash ring.
        self.service_shards = service_shards
        self._service_available_at = [0.0] * service_shards
        self._next_shard = 0
        self._memo_cache: set[int] = set()
        self._memo_seen: set[int] = set()
        # results
        self.completed: list[SimTask] = []
        self._outstanding: dict[SimTask, _SimManager] = {}
        self.memo_hits = 0
        self.reexecutions = 0
        self._first_submit: float | None = None
        self.result_delivery = result_delivery
        self.result_latency = result_latency
        self.poll_interval = poll_interval
        self.results_delivered = 0

    # ------------------------------------------------------------------
    # configuration helpers
    # ------------------------------------------------------------------
    def _initial_credit(self, workers: int) -> int:
        if not self.internal_batching:
            return 1
        if not self.advertise_idle:
            return max(1, self.prefetch)
        return workers + self.prefetch

    @property
    def total_workers(self) -> int:
        return sum(m.workers for m in self.managers)

    @property
    def detection_delay(self) -> float:
        return self.heartbeat_period * self.heartbeat_grace

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        count: int,
        duration: float = 0.0,
        at: float = 0.0,
        container_key: str = "RAW",
        memo_keys: Iterable[int] | None = None,
        through_service: bool = False,
    ) -> list[SimTask]:
        """Submit ``count`` identical tasks at time ``at``.

        With ``through_service`` each task pays the serialized service
        overhead before reaching the agent (needed for the memoization
        experiment); otherwise tasks materialize directly in the agent's
        pending queue, matching the paper's agent-focused scaling runs.
        """
        keys = list(memo_keys) if memo_keys is not None else [None] * count
        if len(keys) != count:
            raise ValueError("memo_keys length must equal count")
        tasks = [
            SimTask(i, duration, container_key=container_key, memo_key=keys[i], created=at)
            for i in range(count)
        ]
        self.loop.at(at, self._arrive_many, tasks, through_service)
        return tasks

    def submit_stream(
        self,
        arrivals: Iterable[ArrivalEvent],
        through_service: bool = False,
    ) -> list[SimTask]:
        """Submit tasks per an arrival schedule (fault-tolerance runs)."""
        tasks = []
        for event in arrivals:
            task = SimTask(event.index, event.duration, created=event.time)
            tasks.append(task)
            self.loop.at(event.time, self._arrive_many, [task], through_service)
        return tasks

    def _arrive_many(self, tasks: list[SimTask], through_service: bool) -> None:
        now = self.loop.now
        if self._first_submit is None:
            self._first_submit = now
        if not through_service:
            for task in tasks:
                task.service_done = now
                self.pending.append(task)
            self._try_dispatch()
            return
        # Serialized service pipeline(s): each request costs
        # service_overhead on its shard; shards proceed independently.
        overhead = self.platform.service_overhead
        for task in tasks:
            shard = self._next_shard
            self._next_shard = (shard + 1) % self.service_shards
            t = max(now, self._service_available_at[shard]) + overhead
            self._service_available_at[shard] = t
            if self.memoize and task.memo_key is not None and self._memo_lookup(task):
                task.memo_hit = True
                self.memo_hits += 1
                self.loop.at(t, self._complete_at_service, task)
            else:
                self.loop.at(t, self._enter_pending, task)

    def _memo_lookup(self, task: SimTask) -> bool:
        assert task.memo_key is not None
        if task.memo_key in self._memo_cache:
            return True
        if self.memo_prewarmed:
            # Repeats hit even before first completion (Table 3 setup).
            if task.memo_key in self._memo_seen:
                return True
            self._memo_seen.add(task.memo_key)
        return False

    def _complete_at_service(self, task: SimTask) -> None:
        task.service_done = self.loop.now
        task.completed = self.loop.now
        self.completed.append(task)
        self._schedule_delivery(task)

    def _enter_pending(self, task: SimTask) -> None:
        task.service_done = self.loop.now
        if self.endpoint_alive:
            self.pending.append(task)
            self._try_dispatch()
        else:
            self._service_held.append(task)

    # ------------------------------------------------------------------
    # agent dispatch pipeline
    # ------------------------------------------------------------------
    def _aggregate_credit(self) -> int:
        """Endpoint-wide credit: the in-flight budget across live nodes."""
        return sum(m.credit for m in self.managers if m.alive)

    def _try_dispatch(self) -> None:
        if self._agent_busy or not self.endpoint_alive or not self.pending:
            return
        if self.adaptive_batching:
            if self._flush_at is not None:
                return  # a held wave is already scheduled to flush
            hold = self.hold_scale * self.platform.agent_dispatch_overhead
            fill = min(self.DISPATCH_CHUNK, max(1, self._aggregate_credit()))
            if hold > 0 and len(self.pending) < fill:
                # Underfilled wave: hold it (bounded) so trickling
                # arrivals coalesce into one dispatch event.
                self._flush_at = self.loop.now + hold
                self.waves_held += 1
                self.loop.schedule(hold, self._flush_wave)
                return
        self._dispatch_wave()

    def _flush_wave(self) -> None:
        """A hold expired: dispatch whatever filled in, no re-holding."""
        self._flush_at = None
        if self._agent_busy or not self.endpoint_alive or not self.pending:
            return
        self._dispatch_wave()

    def _dispatch_wave(self) -> None:
        assignments: list[tuple[SimTask, _SimManager]] = []
        ready = self._ready
        while self.pending and len(assignments) < self.DISPATCH_CHUNK and ready:
            manager = ready[0]
            if not manager.alive or manager.credit <= 0:
                ready.popleft()
                continue
            task = self.pending.popleft()
            manager.credit -= 1
            assignments.append((task, manager))
            if manager.credit <= 0:
                ready.popleft()
            else:
                ready.rotate(-1)  # spread load across managers
        if not assignments:
            return
        self._agent_busy = True
        self.waves_dispatched += 1
        cost = len(assignments) * self.platform.agent_dispatch_overhead
        self.loop.schedule(cost, self._finish_dispatch, assignments)

    def _finish_dispatch(self, assignments: list[tuple[SimTask, _SimManager]]) -> None:
        self._agent_busy = False
        now = self.loop.now
        travel = self.platform.dispatch_latency
        for task, manager in assignments:
            task.dispatched = now
            task.attempts += 1
            self._outstanding[task] = manager
            self.loop.schedule(travel, self._arrive_at_manager, task, manager, task.attempts)
        self._try_dispatch()

    # ------------------------------------------------------------------
    # manager / worker behaviour
    # ------------------------------------------------------------------
    def _arrive_at_manager(self, task: SimTask, manager: _SimManager, attempt: int) -> None:
        if task.attempts != attempt or task.completed >= 0:
            return  # stale delivery from a pre-failure dispatch
        if not manager.alive or not self.endpoint_alive:
            # Delivered into a component that already failed: the failure
            # sweep has run, so the watchdog reclaims it on its next pass.
            self._outstanding.pop(task, None)
            self.loop.schedule(self.detection_delay, self._reexecute,
                               [(task, task.attempts)])
            return
        cold = 0.0
        if task.container_key not in manager.deployed:
            manager.deployed.add(task.container_key)
            cold = self.platform.container_cold_start
        if manager.idle > 0:
            manager.idle -= 1
            self._start_task(task, manager, cold)
        else:
            manager.queue.append(task)

    def _start_task(self, task: SimTask, manager: _SimManager, cold: float = 0.0) -> None:
        task.started = self.loop.now
        manager.running.add(task)
        runtime = cold + task.duration + self.platform.worker_overhead
        self.loop.schedule(runtime, self._finish_task, task, manager, task.attempts)

    def _finish_task(self, task: SimTask, manager: _SimManager, attempt: int) -> None:
        if task not in manager.running:
            return  # lost with a failed component; the slot was reset
        # The worker genuinely ran this attempt, so the slot is always
        # freed; the *result* is sent even for superseded attempts (a real
        # worker cannot know it was re-dispatched) and deduplicated at the
        # agent — first completion wins (at-least-once semantics).
        manager.running.discard(task)
        self.loop.schedule(
            self.platform.dispatch_latency + self.platform.agent_result_overhead,
            self._result_at_agent,
            task,
        )
        # The freed slot's capacity becomes visible to the agent after an
        # advertisement round trip; a queued (prefetched) task starts now.
        if manager.queue:
            next_task = manager.queue.popleft()
            self._start_task(next_task, manager)
        else:
            manager.idle += 1
        refill = (
            self.platform.manager_cycle
            if self.internal_batching
            else self.platform.single_task_cycle
        )
        self.loop.schedule(refill, self._return_credit, manager)

    def _return_credit(self, manager: _SimManager) -> None:
        if not manager.alive:
            return
        cap = self._initial_credit(manager.workers)
        before = manager.credit
        manager.credit = min(cap, manager.credit + 1)
        if before == 0 and manager.credit > 0:
            self._ready.append(manager)
        self._try_dispatch()

    def _result_at_agent(self, task: SimTask) -> None:
        self._outstanding.pop(task, None)
        if task.completed >= 0:
            return  # duplicate result from a superseded attempt
        if self.memoize and task.memo_key is not None:
            self._memo_cache.add(task.memo_key)
        task.completed = self.loop.now
        self.completed.append(task)
        self._schedule_delivery(task)

    # ------------------------------------------------------------------
    # result delivery to the client (push stream vs poll loop)
    # ------------------------------------------------------------------
    def _schedule_delivery(self, task: SimTask) -> None:
        if self.result_delivery is None:
            return
        visible = self.loop.now + self.result_latency
        if self.result_delivery == "poll":
            # The client only looks at poll ticks: visibility rounds up
            # to the next multiple of the poll interval.
            ticks = math.ceil(visible / self.poll_interval - 1e-12)
            visible = max(visible, ticks * self.poll_interval)
        self.loop.at(visible, self._deliver_result, task)

    def _deliver_result(self, task: SimTask) -> None:
        if task.delivered >= 0:
            return  # duplicate delivery from a superseded attempt
        task.delivered = self.loop.now
        self.results_delivered += 1

    # ------------------------------------------------------------------
    # failure injection (§5.4)
    # ------------------------------------------------------------------
    def apply_failures(self, schedule: FailureSchedule) -> None:
        for fail_at, recover_at, index in schedule.manager_failures:
            if not 0 <= index < len(self.managers):
                raise IndexError(f"no manager {index}")
            if recover_at <= fail_at:
                raise ValueError("recover_at must follow fail_at")
            self.loop.at(fail_at, self._fail_manager, index)
            self.loop.at(recover_at, self._recover_manager, index)
        for fail_at, recover_at in schedule.endpoint_failures:
            if recover_at <= fail_at:
                raise ValueError("recover_at must follow fail_at")
            self.loop.at(fail_at, self._fail_endpoint)
            self.loop.at(recover_at, self._recover_endpoint)

    def _fail_manager(self, index: int) -> None:
        manager = self.managers[index]
        manager.alive = False
        lost = [(t, t.attempts) for t, m in self._outstanding.items() if m is manager]
        for task, _attempt in lost:
            del self._outstanding[task]
        manager.running.clear()
        manager.queue.clear()
        manager.idle = 0
        manager.credit = 0
        # The watchdog notices after the heartbeat grace period and
        # re-executes the tracked tasks (§4.3).
        self.loop.schedule(self.detection_delay, self._reexecute, lost)

    def _reexecute(self, tasks: list[tuple[SimTask, int]]) -> None:
        for task, attempt_at_loss in tasks:
            if task.completed >= 0:
                continue
            if task.attempts != attempt_at_loss:
                continue  # another recovery path already re-dispatched it
            self.reexecutions += 1
            self.pending.appendleft(task)
        self._try_dispatch()

    def _recover_manager(self, index: int) -> None:
        manager = self.managers[index]
        manager.alive = True
        manager.idle = manager.workers
        manager.credit = self._initial_credit(manager.workers)
        self._ready.append(manager)
        self._try_dispatch()

    def _fail_endpoint(self) -> None:
        self.endpoint_alive = False
        lost = [(t, t.attempts) for t in self._outstanding]
        self._outstanding.clear()
        for manager in self.managers:
            manager.running.clear()
            manager.queue.clear()
            manager.idle = 0
            manager.credit = 0
        lost.extend((t, t.attempts) for t in self.pending)
        self.pending.clear()
        # The forwarder requeues outstanding tasks after missing
        # heartbeats (§4.1); they re-enter once the endpoint returns.
        self.loop.schedule(self.detection_delay, self._hold_at_service, lost)

    def _hold_at_service(self, tasks: list[tuple[SimTask, int]]) -> None:
        # The forwarder's requeue sweep may land after the endpoint has
        # already recovered — route straight back to dispatch in that case.
        for task, attempt_at_loss in tasks:
            if task.completed >= 0:
                continue
            if task.attempts != attempt_at_loss:
                continue  # already re-dispatched by another recovery path
            if self.endpoint_alive:
                self.pending.append(task)
                self.reexecutions += 1
            else:
                self._service_held.append(task)
        if self.endpoint_alive:
            self._try_dispatch()

    def _recover_endpoint(self) -> None:
        self.endpoint_alive = True
        for manager in self.managers:
            manager.alive = True
            manager.idle = manager.workers
            manager.credit = self._initial_credit(manager.workers)
        self._ready = deque(self.managers)
        while self._service_held:
            task = self._service_held.popleft()
            if task.completed < 0:
                self.pending.append(task)
                self.reexecutions += 1
        self._try_dispatch()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> SimReport:
        """Run the simulation to completion (or a horizon) and report."""
        self.loop.run(until=until, max_events=max_events)
        completions = np.array([t.completed for t in self.completed], dtype=float)
        latencies = np.array([t.latency for t in self.completed], dtype=float)
        start = self._first_submit or 0.0
        end = float(completions.max()) if completions.size else start
        span = max(end - start, 1e-12)
        delivery = None
        if self.result_delivery is not None:
            delivery = np.array(
                [t.delivery_latency for t in self.completed if t.delivered >= 0],
                dtype=float,
            )
        return SimReport(
            completion_time=end - start,
            tasks_completed=len(self.completed),
            throughput=len(self.completed) / span,
            latencies=latencies,
            completion_times=completions,
            events_processed=self.loop.events_processed,
            memo_hits=self.memo_hits,
            reexecutions=self.reexecutions,
            delivery_latencies=delivery,
            results_delivered=self.results_delivered,
        )
