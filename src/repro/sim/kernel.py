"""The discrete-event kernel: a time-ordered callback scheduler.

Design notes (guided by the profiling-first idiom of the HPC guides):
simulations here execute millions of events — a 131,072-container weak
scaling run processes ~4M — so the hot path is deliberately small:
``__slots__`` events, a plain ``heapq``, and no per-event allocation
beyond the event object itself.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import ClockMonotonicityViolation


class Event:
    """A scheduled callback.  Cancel by calling :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventLoop:
    """A minimal, fast discrete-event loop.

    The loop's :attr:`now` is the simulation clock; pass ``loop.clock`` to
    any time-agnostic component (queues, heartbeat trackers, warm pools)
    to run it in simulated time.
    """

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Injectable time source (bound method, cheap to call)."""
        return self.now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ClockMonotonicityViolation(
                f"cannot schedule {delay:.6f}s in the past at t={self.now:.6f}"
            )
        event = Event(self.now + delay, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False when the heap is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            self.events_processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain events (optionally bounded by time/horizon or count).

        Returns the number of events processed by this call.  With
        ``until``, the clock is advanced to exactly ``until`` even if the
        heap empties earlier.
        """
        processed = 0
        heap = self._heap
        while heap:
            if max_events is not None and processed >= max_events:
                break
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            self.now = event.time
            event.fn(*event.args)
            self.events_processed += 1
            processed += 1
        if until is not None and self.now < until:
            self.now = until
        return processed

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def next_event_time(self) -> float | None:
        """Time of the next live event (cancelled heads are pruned)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
