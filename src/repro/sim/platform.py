"""Platform models for the simulated fabric.

Each :class:`SimPlatform` captures the handful of timing parameters that
determine funcX-agent behaviour at scale.  The two supercomputer models
are calibrated to the paper's own measured ceilings:

* **Theta** — 64 Singularity containers per KNL node; the agent sustains
  a maximum of 1694 tasks/s (§5.2.3), i.e. ≈0.59 ms of serialized agent
  work per task.
* **Cori** — 256 Shifter containers per node (4 hardware threads/core);
  1466 tasks/s ceiling ⇒ ≈0.68 ms/task; slightly slower per-task worker
  overhead on the busier nodes.
* **EC2** — the c5n.9xlarge single-machine setup of figure 9.
* **K8S** — the Kubernetes cluster of the elasticity experiment.

``manager_cycle`` is the advertise→dispatch→deliver round trip a manager
pays to refill idle workers when nothing is prefetched; the §5.5.2
executor-batching baseline (one task per request) additionally pays
``single_task_cycle`` per task.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimPlatform:
    """Timing model of one execution platform.

    Attributes
    ----------
    name:
        Platform key (also selects Table 2 container models).
    containers_per_node:
        Workers one manager deploys.
    agent_dispatch_overhead:
        Serialized agent work per task dispatch, seconds.  Its inverse is
        the agent throughput ceiling the paper measures in §5.2.3.
    agent_result_overhead:
        Serialized agent work per returned result, seconds.
    manager_cycle:
        Advertisement round trip (manager↔agent) refilling idle workers,
        seconds — the poll cadence, not the wire latency.
    dispatch_latency:
        One-way wire latency for task delivery / result return between
        agent and manager, seconds.
    single_task_cycle:
        Per-task request round trip when internal batching is disabled
        (§5.5.2): the manager asks for exactly one task per cycle.
    worker_overhead:
        Worker-side deserialize/execute/serialize cost added to every
        task, seconds.
    service_overhead:
        Cloud-service processing per request (auth + Redis), seconds.
    wan_latency:
        One-way client↔service↔endpoint network latency, seconds.
    container_cold_start:
        Mean cold instantiation time (Table 2), seconds — used when a
        simulated task needs an undeployed container.
    """

    name: str
    containers_per_node: int
    agent_dispatch_overhead: float
    agent_result_overhead: float = 0.0
    manager_cycle: float = 0.1
    dispatch_latency: float = 0.005
    single_task_cycle: float = 0.042
    worker_overhead: float = 0.0005
    service_overhead: float = 0.0006
    wan_latency: float = 0.0182
    container_cold_start: float = 10.4

    def __post_init__(self) -> None:
        if self.containers_per_node < 1:
            raise ValueError("containers_per_node must be positive")
        if self.agent_dispatch_overhead <= 0:
            raise ValueError("agent_dispatch_overhead must be positive")

    @property
    def agent_throughput_ceiling(self) -> float:
        """Maximum tasks/s one agent can dispatch (paper §5.2.3)."""
        return 1.0 / self.agent_dispatch_overhead

    def nodes_for(self, containers: int) -> int:
        """Managers needed to host ``containers`` workers."""
        return -(-containers // self.containers_per_node)  # ceil


THETA = SimPlatform(
    name="theta",
    containers_per_node=64,
    agent_dispatch_overhead=1.0 / 1694.0,
    manager_cycle=0.1,
    worker_overhead=0.0008,       # KNL cores are slow (§4.7)
    container_cold_start=10.40,   # Table 2: Theta/Singularity mean
)

CORI = SimPlatform(
    name="cori",
    containers_per_node=256,
    agent_dispatch_overhead=1.0 / 1466.0,
    manager_cycle=0.1,
    worker_overhead=0.0010,       # 4 hardware threads share each core
    container_cold_start=8.49,    # Table 2: Cori/Shifter mean
)

EC2 = SimPlatform(
    name="ec2",
    containers_per_node=36,       # c5n.9xlarge vCPUs (figure 9)
    agent_dispatch_overhead=0.0002,
    manager_cycle=0.005,
    worker_overhead=0.0001,
    wan_latency=0.0005,           # client and endpoint share the instance
    container_cold_start=1.79,    # Table 2: EC2/Docker mean
)

K8S = SimPlatform(
    name="k8s",
    containers_per_node=1,        # one worker per pod (§4.5)
    agent_dispatch_overhead=0.001,
    manager_cycle=0.02,
    worker_overhead=0.0005,
    container_cold_start=2.0,
)

PLATFORMS: dict[str, SimPlatform] = {
    "theta": THETA,
    "cori": CORI,
    "ec2": EC2,
    "k8s": K8S,
}
