"""Out-of-band data staging (Globus substitute, paper §4.6).

"While the serializer can act on arbitrary Python objects ... for
performance and cost reasons we limit the size of data that can be
passed through the funcX service.  Instead, we rely on out-of-band data
transfer mechanisms, such as Globus, when passing large datasets to/from
funcX functions.  Data can be staged prior to the invocation of a
function ... and a reference to the data's location can be passed to/from
the function as input/output arguments."
"""

from repro.staging.transfer import (
    DataRef,
    DataStore,
    TransferRecord,
    TransferService,
    fetch_ref,
    register_store,
    resolve_store,
)

__all__ = [
    "DataStore",
    "DataRef",
    "TransferService",
    "TransferRecord",
    "register_store",
    "resolve_store",
    "fetch_ref",
]
