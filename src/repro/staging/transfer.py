"""Named data stores and a bandwidth-modelled transfer service.

The substitution for Globus: each *store* is a named location holding
byte objects; the *transfer service* copies objects between stores with
a latency + bandwidth cost model and returns :class:`DataRef` handles
that functions accept in place of in-band payloads.  The live fabric
applies the modelled transfer time as a real delay so end-to-end
experiments see realistic staging costs.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable

from repro.errors import NotFoundError


@dataclass(frozen=True)
class DataRef:
    """A location-qualified reference to a staged object.

    This is what gets passed *through* the funcX service instead of the
    data itself — it is a few hundred bytes regardless of object size.
    """

    store: str
    key: str
    size: int
    checksum: int

    def as_argument(self) -> dict:
        """Plain-dict form safe for any serializer."""
        return {
            "__dataref__": True,
            "store": self.store,
            "key": self.key,
            "size": self.size,
            "checksum": self.checksum,
        }

    @classmethod
    def from_argument(cls, record: dict) -> "DataRef":
        if not record.get("__dataref__"):
            raise ValueError("not a DataRef record")
        return cls(
            store=record["store"],
            key=record["key"],
            size=record["size"],
            checksum=record["checksum"],
        )


class DataStore:
    """A named storage location (filesystem / repository stand-in)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.RLock()
        self._objects: dict[str, bytes] = {}

    def put(self, data: bytes, key: str | None = None) -> DataRef:
        key = key or str(uuid.uuid4())
        with self._lock:
            self._objects[key] = bytes(data)
        return DataRef(
            store=self.name,
            key=key,
            size=len(data),
            checksum=_checksum(data),
        )

    def get(self, ref: DataRef) -> bytes:
        if ref.store != self.name:
            raise NotFoundError("object", f"{ref.key} (wrong store {ref.store})")
        with self._lock:
            data = self._objects.get(ref.key)
        if data is None:
            raise NotFoundError("object", ref.key)
        if _checksum(data) != ref.checksum:
            raise ValueError(f"checksum mismatch for {ref.key}")
        return data

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._objects.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)


def _checksum(data: bytes) -> int:
    import zlib

    return zlib.crc32(data)


# ---------------------------------------------------------------------------
# Process-level store registry.
#
# Functions execute on workers with only their arguments; passing a
# DataRef works because the *site* (here: the process) can resolve the
# store by name — exactly how a Globus endpoint id resolves to a real
# filesystem at the site.  The registry is that resolution table.
# ---------------------------------------------------------------------------
_REGISTRY_LOCK = threading.RLock()
_STORE_REGISTRY: dict[str, "DataStore"] = {}


def register_store(store: "DataStore") -> "DataStore":
    """Make a store resolvable by name from worker functions."""
    with _REGISTRY_LOCK:
        _STORE_REGISTRY[store.name] = store
    return store


def resolve_store(name: str) -> "DataStore":
    """Look up a registered store (raises :class:`NotFoundError`)."""
    with _REGISTRY_LOCK:
        store = _STORE_REGISTRY.get(name)
    if store is None:
        raise NotFoundError("store", name)
    return store


def fetch_ref(record: dict) -> bytes:
    """Worker-side helper: resolve a DataRef record and read its bytes.

    Designed for use *inside* function bodies (imports locally)::

        def process(data_ref):
            from repro.staging.transfer import fetch_ref
            raw = fetch_ref(data_ref)
            ...
    """
    ref = DataRef.from_argument(record)
    return resolve_store(ref.store).get(ref)


def unregister_store(name: str) -> bool:
    """Remove a store from the resolution table (stream-spill teardown).

    Returns ``True`` when the name was registered.  Lets short-lived
    stores (a service's result-spill area) leave the process-level
    registry when their owner shuts down instead of accreting forever.
    """
    with _REGISTRY_LOCK:
        return _STORE_REGISTRY.pop(name, None) is not None


def clear_registry() -> None:
    """Testing hook: forget every registered store."""
    with _REGISTRY_LOCK:
        _STORE_REGISTRY.clear()


@dataclass(frozen=True)
class TransferRecord:
    """Audit record for one completed transfer."""

    transfer_id: str
    source: str
    destination: str
    size: int
    duration: float
    started_at: float


@dataclass
class _Link:
    latency: float        # seconds
    bandwidth: float      # bytes/second


class TransferService:
    """Copies objects between stores with a latency/bandwidth cost model.

    Parameters
    ----------
    default_latency:
        Per-transfer setup latency, seconds.
    default_bandwidth:
        Link bandwidth, bytes/second (1 GbE ≈ 1.25e8).
    apply_delay:
        Whether to physically sleep the modelled transfer time (live
        fabric realism); disable for unit tests.
    """

    def __init__(
        self,
        default_latency: float = 0.05,
        default_bandwidth: float = 1.25e8,
        apply_delay: bool = False,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ):
        self._stores: dict[str, DataStore] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self._default = _Link(default_latency, default_bandwidth)
        self._apply_delay = apply_delay
        self._clock = clock or time.monotonic
        self._sleep = sleeper or time.sleep
        self._lock = threading.RLock()
        self.records: list[TransferRecord] = []

    # -- topology ----------------------------------------------------------
    def register_store(self, store: DataStore) -> DataStore:
        with self._lock:
            self._stores[store.name] = store
        return store

    def create_store(self, name: str) -> DataStore:
        return self.register_store(DataStore(name))

    def store(self, name: str) -> DataStore:
        store = self._stores.get(name)
        if store is None:
            raise NotFoundError("store", name)
        return store

    def set_link(self, source: str, destination: str, latency: float, bandwidth: float) -> None:
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >=0 and bandwidth positive")
        self._links[(source, destination)] = _Link(latency, bandwidth)

    def link(self, source: str, destination: str) -> _Link:
        return self._links.get((source, destination), self._default)

    # -- transfers --------------------------------------------------------------
    def estimate(self, source: str, destination: str, size: int) -> float:
        """Modelled transfer time in seconds."""
        link = self.link(source, destination)
        return link.latency + size / link.bandwidth

    def transfer(self, ref: DataRef, destination: str) -> DataRef:
        """Stage an object to ``destination``; returns the new reference."""
        src_store = self.store(ref.store)
        dst_store = self.store(destination)
        data = src_store.get(ref)
        duration = self.estimate(ref.store, destination, ref.size)
        started = self._clock()
        if self._apply_delay and duration > 0:
            self._sleep(duration)
        new_ref = dst_store.put(data, key=ref.key)
        with self._lock:
            self.records.append(
                TransferRecord(
                    transfer_id=str(uuid.uuid4()),
                    source=ref.store,
                    destination=destination,
                    size=ref.size,
                    duration=duration,
                    started_at=started,
                )
            )
        return new_ref

    def total_bytes_moved(self) -> int:
        with self._lock:
            return sum(r.size for r in self.records)
