"""In-memory data store (AWS ElastiCache Redis / RDS substitute).

The funcX service keeps serialized functions and task records in a Redis
hashset and one task queue + one result queue per endpoint (paper section
4.1).  This package provides thread-safe equivalents:

* :class:`KVStore` — hashsets, plain keys, TTL expiry and purge.
* :class:`ReliableQueue` — FIFO queue with lease/ack semantics giving the
  at-least-once delivery the hierarchical queueing architecture requires.
* :class:`PubSub` — lightweight topic fan-out used for monitoring streams.
"""

from repro.store.kvstore import KVStore
from repro.store.queues import Lease, ReliableQueue
from repro.store.pubsub import PubSub

__all__ = ["KVStore", "ReliableQueue", "Lease", "PubSub"]
