"""Thread-safe key-value store with hashsets and TTL (Redis substitute).

Time is injectable: every mutating/reading operation takes its timestamp
from a ``clock`` callable so the same store runs under both the wall clock
(live fabric) and the simulation clock (DES fabric).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator


class KVStore:
    """A minimal Redis-like store: string keys, hashsets, TTL, purge.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Defaults to :func:`time.monotonic`.

    Notes
    -----
    The funcX service "periodically purge[s] results from the Redis store
    once they have been retrieved" (section 4.1); :meth:`purge_expired`
    implements that sweep and is also invoked lazily on reads.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.RLock()
        self._data: dict[str, Any] = {}
        self._hashes: dict[str, dict[str, Any]] = {}
        self._expiry: dict[str, float] = {}

    # -- plain keys --------------------------------------------------------
    def set(self, key: str, value: Any, ttl: float | None = None) -> None:
        """Store ``value`` under ``key``, optionally expiring after ``ttl`` s."""
        with self._lock:
            self._data[key] = value
            if ttl is not None:
                self._expiry[key] = self._clock() + ttl
            else:
                self._expiry.pop(key, None)

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
                return default
            return self._data.get(key, default)

    def delete(self, key: str) -> bool:
        """Remove ``key`` (plain or hash); return whether anything was removed."""
        with self._lock:
            existed = key in self._data or key in self._hashes
            self._evict(key)
            return existed

    def exists(self, key: str) -> bool:
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
                return False
            return key in self._data or key in self._hashes

    def keys(self, prefix: str = "") -> list[str]:
        """All live keys starting with ``prefix`` (plain and hash keys)."""
        with self._lock:
            self.purge_expired()
            found = [k for k in self._data if k.startswith(prefix)]
            found.extend(k for k in self._hashes if k.startswith(prefix))
            return sorted(set(found))

    def incr(self, key: str, amount: int = 1) -> int:
        """Atomically increment an integer counter, creating it at zero."""
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
            value = int(self._data.get(key, 0)) + amount
            self._data[key] = value
            return value

    # -- hashsets ------------------------------------------------------------
    def hset(self, key: str, field: str, value: Any) -> None:
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
            self._hashes.setdefault(key, {})[field] = value

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
                return default
            return self._hashes.get(key, {}).get(field, default)

    def hgetall(self, key: str) -> dict[str, Any]:
        with self._lock:
            if self._is_expired(key):
                self._evict(key)
                return {}
            return dict(self._hashes.get(key, {}))

    def hdel(self, key: str, field: str) -> bool:
        with self._lock:
            table = self._hashes.get(key)
            if table is None or field not in table:
                return False
            del table[field]
            if not table:
                del self._hashes[key]
            return True

    def hlen(self, key: str) -> int:
        with self._lock:
            return len(self._hashes.get(key, {}))

    # -- expiry ---------------------------------------------------------------
    def expire(self, key: str, ttl: float) -> None:
        """Set/replace the TTL on an existing key."""
        with self._lock:
            if key in self._data or key in self._hashes:
                self._expiry[key] = self._clock() + ttl

    def ttl(self, key: str) -> float | None:
        """Remaining lifetime in seconds, or ``None`` if no TTL is set."""
        with self._lock:
            deadline = self._expiry.get(key)
            if deadline is None:
                return None
            return max(0.0, deadline - self._clock())

    def purge_expired(self) -> int:
        """Evict every expired key; returns the number evicted."""
        with self._lock:
            now = self._clock()
            dead = [k for k, deadline in self._expiry.items() if deadline <= now]
            for key in dead:
                self._evict(key)
            return len(dead)

    # -- internals -------------------------------------------------------------
    def _is_expired(self, key: str) -> bool:
        deadline = self._expiry.get(key)
        return deadline is not None and deadline <= self._clock()

    def _evict(self, key: str) -> None:
        self._data.pop(key, None)
        self._hashes.pop(key, None)
        self._expiry.pop(key, None)

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            self.purge_expired()
            return len(set(self._data) | set(self._hashes))

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def memory_footprint(self) -> int:
        """Rough payload byte count (used by the service's cost accounting)."""
        import sys

        with self._lock:
            total = 0
            for value in self._data.values():
                total += len(value) if isinstance(value, (bytes, str)) else sys.getsizeof(value)
            for table in self._hashes.values():
                for value in table.values():
                    total += len(value) if isinstance(value, (bytes, str)) else sys.getsizeof(value)
            return total
