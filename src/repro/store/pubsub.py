"""Topic-based publish/subscribe for monitoring streams.

The funcX service exposes task-state monitoring; internally we fan state
transitions out on topics (``task.<id>``, ``endpoint.<id>``) so that
clients, the elasticity strategy, and test instrumentation can observe the
system without polling the store.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable

Subscriber = Callable[[str, Any], None]


class PubSub:
    """Synchronous topic fan-out with prefix subscriptions.

    Subscribers are invoked on the publisher's thread; they must be cheap
    and must not raise (exceptions are collected per-subscriber rather than
    propagated, so one bad monitor cannot take down dispatch).
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._exact: dict[str, list[tuple[int, Subscriber]]] = defaultdict(list)
        self._prefix: dict[str, list[tuple[int, Subscriber]]] = defaultdict(list)
        self._next_token = 1
        self.delivery_errors: list[tuple[str, Exception]] = []

    def subscribe(self, topic: str, callback: Subscriber) -> int:
        """Subscribe to an exact topic; returns an unsubscribe token."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._exact[topic].append((token, callback))
            return token

    def subscribe_prefix(self, prefix: str, callback: Subscriber) -> int:
        """Subscribe to every topic starting with ``prefix``."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._prefix[prefix].append((token, callback))
            return token

    def unsubscribe(self, token: int) -> bool:
        with self._lock:
            for table in (self._exact, self._prefix):
                for topic, subs in list(table.items()):
                    remaining = [(t, cb) for (t, cb) in subs if t != token]
                    if len(remaining) != len(subs):
                        if remaining:
                            table[topic] = remaining
                        else:
                            del table[topic]
                        return True
            return False

    def publish(self, topic: str, message: Any) -> int:
        """Deliver ``message`` to all matching subscribers; returns count."""
        with self._lock:
            targets = list(self._exact.get(topic, ()))
            for prefix, subs in self._prefix.items():
                if topic.startswith(prefix):
                    targets.extend(subs)
        delivered = 0
        for _token, callback in targets:
            try:
                callback(topic, message)
                delivered += 1
            except Exception as exc:  # isolate bad monitors
                self.delivery_errors.append((topic, exc))
        return delivered

    def live_subscriptions(self) -> int:
        """Total live subscription tokens across all topics.

        Leak regression checks compare this before/after an operation
        that should be subscription-neutral (e.g. memo-hit submits).
        """
        with self._lock:
            return sum(len(subs) for subs in self._exact.values()) + sum(
                len(subs) for subs in self._prefix.values()
            )

    def subscriber_count(self, topic: str) -> int:
        with self._lock:
            count = len(self._exact.get(topic, ()))
            count += sum(
                len(subs) for prefix, subs in self._prefix.items() if topic.startswith(prefix)
            )
            return count
